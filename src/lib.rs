//! # λ² — example-guided synthesis of data structure transformations
//!
//! This is the façade crate for a Rust reproduction of
//! *"Synthesizing data structure transformations from input-output
//! examples"* (Feser, Chaudhuri, Dillig — PLDI 2015). It re-exports the
//! three workspace crates that make up the system:
//!
//! * [`lang`] — the object language: values, ASTs, types, an evaluator with
//!   native higher-order combinators, and an s-expression front end.
//! * [`synth`] — the synthesizer: hypotheses, deduction rules, best-first
//!   search, bottom-up enumeration, and the baseline/ablation engines.
//! * [`suite`] — the benchmark suite from the paper's evaluation plus
//!   workload generators.
//!
//! # Quickstart
//!
//! ```
//! use lambda2::synth::{Problem, Synthesizer};
//! use lambda2::lang::parser::parse_value;
//!
//! // Synthesize `length` from three examples.
//! let problem = Problem::builder("length")
//!     .param("l", "[int]")
//!     .returns("int")
//!     .example(&["[]"], "0")
//!     .example(&["[7]"], "1")
//!     .example(&["[2 9]"], "2")
//!     .example(&["[4 5 6]"], "3")
//!     .build()
//!     .expect("well-formed problem");
//!
//! let result = Synthesizer::default().synthesize(&problem).expect("solved");
//! let out = result
//!     .program
//!     .apply(&[parse_value("[1 2 3 4 5]").unwrap()])
//!     .unwrap();
//! assert_eq!(out, parse_value("5").unwrap());
//! ```

pub use lambda2_bench_suite as suite;
pub use lambda2_lang as lang;
pub use lambda2_synth as synth;
