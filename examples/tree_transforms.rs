//! Synthesis over variadic ("rose") trees: `mapt` and `foldt` programs
//! discovered from subtree-closed example sets.
//!
//! ```text
//! cargo run --release --example tree_transforms
//! ```

use std::time::Duration;

use lambda2::lang::parser::parse_value;
use lambda2::suite::by_name;
use lambda2::synth::Synthesizer;

fn main() {
    // 1. incrt — a pointwise tree map. The mapt rule checks the output
    //    tree has exactly the input's shape, then reads the function's
    //    examples off the node values.
    run("incrt", "{10 {20} {30 {40}}}", "{11 {21} {31 {41}}}");

    // 2. sumt — a tree fold with a list fold inside: the foldt rule
    //    deduces step examples from subtree-closed inputs, and the inner
    //    fold's initial value is discovered to be the node's own value.
    run("sumt", "{1 {2 {3} {4}} {5}}", "15");

    // 3. flatten — preorder traversal; the synthesized program seeds the
    //    inner concatenation with `(cons v [])`.
    run("flatten", "{1 {2 {3}} {4}}", "[1 2 3 4]");
}

fn run(name: &str, held_out_input: &str, expected: &str) {
    let bench = by_name(name).expect("benchmark exists");
    println!(
        "{name}: {}",
        bench.problem.description().unwrap_or_default()
    );
    let options = bench.tune(lambda2::synth::SearchOptions::default());
    let result = Synthesizer::with_options(options)
        .timeout(Duration::from_secs(120))
        .synthesize(&bench.problem)
        .unwrap_or_else(|e| panic!("{name} failed: {e}"));
    println!("  {}", result.program);
    println!(
        "  cost {}, {:.1} s",
        result.cost,
        result.elapsed.as_secs_f64()
    );
    let input = parse_value(held_out_input).unwrap();
    let out = result
        .program
        .apply(std::slice::from_ref(&input))
        .expect("evaluates");
    assert_eq!(out, parse_value(expected).unwrap(), "{name} generalizes");
    println!("  {input}  =>  {out}  ✓\n");
}
