//! Quickstart: synthesize classic list functions from a handful of
//! input-output examples.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::time::Duration;

use lambda2::lang::parser::parse_value;
use lambda2::synth::{Problem, Synthesizer};

fn main() {
    let synthesizer = Synthesizer::new().timeout(Duration::from_secs(30));

    // 1. `length` — a left fold discovered from four examples. The chain
    //    [] , [7], [7 4], [7 4 9] is what the paper's deduction rules feed
    //    on: each consecutive pair yields an example for the fold's step
    //    function.
    let length = Problem::builder("length")
        .param("l", "[int]")
        .returns("int")
        .example(&["[]"], "0")
        .example(&["[7]"], "1")
        .example(&["[7 4]"], "2")
        .example(&["[7 4 9]"], "3")
        .build()
        .expect("well-formed problem");
    let result = synthesizer
        .synthesize(&length)
        .expect("length is synthesizable");
    println!("length  = {}", result.program);
    println!(
        "          cost {}, {:.1} ms",
        result.cost,
        result.elapsed.as_secs_f64() * 1e3
    );

    // Run the synthesized program on an input it has never seen.
    let out = result
        .program
        .apply(&[parse_value("[1 1 2 3 5 8 13]").unwrap()])
        .expect("evaluates");
    assert_eq!(out, parse_value("7").unwrap());
    println!("          length [1 1 2 3 5 8 13] = {out}");

    // 2. `reverse` — same recipe, different fold.
    let reverse = Problem::builder("reverse")
        .param("l", "[int]")
        .returns("[int]")
        .example(&["[]"], "[]")
        .example(&["[5]"], "[5]")
        .example(&["[5 2]"], "[2 5]")
        .example(&["[5 2 9]"], "[9 2 5]")
        .build()
        .expect("well-formed problem");
    let result = synthesizer
        .synthesize(&reverse)
        .expect("reverse is synthesizable");
    println!("reverse = {}", result.program);
    let out = result
        .program
        .apply(&[parse_value("[1 2 3 4 5]").unwrap()])
        .expect("evaluates");
    assert_eq!(out, parse_value("[5 4 3 2 1]").unwrap());
    println!("          reverse [1 2 3 4 5] = {out}");

    // 3. `positives` — a filter; here deduction reads the predicate's
    //    truth table straight off the kept/dropped elements.
    let positives = Problem::builder("positives")
        .param("l", "[int]")
        .returns("[int]")
        .example(&["[]"], "[]")
        .example(&["[1 -2 3]"], "[1 3]")
        .example(&["[-5 6]"], "[6]")
        .example(&["[-1 0]"], "[]")
        .build()
        .expect("well-formed problem");
    let result = synthesizer
        .synthesize(&positives)
        .expect("positives is synthesizable");
    println!("positives = {}", result.program);
    println!("\nall three synthesized programs verified on held-out inputs ✓");
}
