//! **The paper's highlight**: synthesizing `dropmins` — drop the minimum
//! element of each inner list — "believed to be the world's earliest
//! functional pearl" (PLDI 2015, §1).
//!
//! The synthesized program nests three combinators discovered through
//! chained deduction: a `map` over the outer list, whose deduced examples
//! drive a `filter` over each inner list, whose deduced examples drive a
//! `foldl` computing "is any element smaller than me?".
//!
//! ```text
//! cargo run --release --example dropmins_pearl
//! ```

use std::time::Duration;

use lambda2::lang::parser::parse_value;
use lambda2::suite::by_name;
use lambda2::synth::Synthesizer;

fn main() {
    let bench = by_name("dropmins").expect("dropmins is in the suite");
    println!(
        "problem: {}",
        bench.problem.description().unwrap_or("dropmins")
    );
    for ex in bench.problem.examples() {
        println!("  {} -> {}", ex.inputs[0], ex.output);
    }

    println!("\nsynthesizing (this is one of the paper's hardest problems)...");
    let options = bench.tune(lambda2::synth::SearchOptions::default());
    let result = Synthesizer::with_options(options)
        .timeout(Duration::from_secs(180))
        .synthesize(&bench.problem)
        .expect("dropmins is synthesizable");

    println!("\n{}", result.program);
    println!(
        "cost {}, {:.1} s, {}",
        result.cost,
        result.elapsed.as_secs_f64(),
        result.stats
    );

    // The pearl, applied to fresh data.
    let input = parse_value("[[3 1 4] [1 5] [9 2 6]]").unwrap();
    let out = result
        .program
        .apply(std::slice::from_ref(&input))
        .expect("evaluates");
    println!("\n{input}  =>  {out}");
    assert_eq!(out, parse_value("[[3 4] [5] [9 6]]").unwrap());
    println!("verified on held-out input ✓");
}
