//! Controlling the component library: restrict or extend the vocabulary
//! the synthesizer may use, and watch the synthesized program change.
//!
//! ```text
//! cargo run --release --example custom_components
//! ```

use std::time::Duration;

use lambda2::lang::ast::Op;
use lambda2::synth::{Library, Problem, Synthesizer};

fn main() {
    let synthesizer = Synthesizer::new().timeout(Duration::from_secs(60));

    // `append` with the full library is a one-liner: `cat` does the job.
    let spec = |lib: Library| {
        Problem::builder("append")
            .param("p", "[int]")
            .param("q", "[int]")
            .returns("[int]")
            .example(&["[]", "[9]"], "[9]")
            .example(&["[1]", "[9]"], "[1 9]")
            .example(&["[2 1]", "[9]"], "[2 1 9]")
            .example(&["[]", "[]"], "[]")
            .example(&["[3]", "[8 2]"], "[3 8 2]")
            .example(&["[5 3]", "[8 2]"], "[5 3 8 2]")
            .library(lib)
            .build()
            .expect("well-formed problem")
    };

    let with_cat = synthesizer
        .synthesize(&spec(Library::default()))
        .expect("trivial with cat");
    println!("with `cat` available:  {}", with_cat.program);
    assert_eq!(with_cat.program.body().to_string(), "(cat p q)");

    // Remove `cat` (as the paper's evaluation does for this benchmark) and
    // the synthesizer must *discover* concatenation as a right fold.
    let without_cat = synthesizer
        .synthesize(&spec(Library::default().without_ops(&[Op::Cat])))
        .expect("discoverable as a fold");
    println!("without `cat`:         {}", without_cat.program);
    assert!(without_cat.program.body().to_string().contains("foldr"));

    // Extending the library: `member` is normally excluded; adding it puts
    // set-flavored programs in reach (see the `dedup` benchmark).
    let dedup = lambda2::suite::by_name("dedup").expect("in suite");
    let result = synthesizer
        .synthesize(&dedup.problem)
        .expect("dedup with member available");
    println!("dedup (with member):   {}", result.program);
    assert!(result.program.body().to_string().contains("member"));

    println!("\ncomponent-library control verified ✓");
}
