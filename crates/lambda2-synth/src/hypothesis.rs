//! Hypotheses: partial programs with example-annotated holes.
//!
//! A [`Hypothesis`] is an expression that may contain holes, together with
//! per-hole metadata ([`HoleInfo`]): the hole's type, the variables in scope
//! at the hole, and the hole's (possibly deduced) example [`Spec`]. The
//! hypothesis's `cost` is an admissible lower bound on the cost of any
//! completion — each hole is priced at the cheapest possible leaf — which
//! is what makes best-first search return the *simplest* fitting program.

use std::sync::Arc;

use lambda2_lang::ast::{Expr, HoleId};
use lambda2_lang::symbol::Symbol;
use lambda2_lang::ty::Type;

use crate::cost::CostModel;
use crate::enumerate::StoreKey;
use crate::spec::Spec;

/// Metadata for a single hole.
#[derive(Debug)]
pub struct HoleInfo {
    /// The type an expression filling this hole must have.
    pub ty: Type,
    /// Variables in scope at the hole, outermost first.
    pub scope: Vec<(Symbol, Type)>,
    /// Example rows the filling expression must satisfy.
    pub spec: Spec,
    /// Trace-probe environments from deduction (see
    /// [`crate::deduce::Deduction::probes`]).
    pub probes: Vec<lambda2_lang::env::Env>,
    /// Cache key for the hole's enumeration context.
    pub store_key: StoreKey,
}

impl HoleInfo {
    /// Creates hole metadata, precomputing the enumeration cache key.
    pub fn new(ty: Type, scope: Vec<(Symbol, Type)>, spec: Spec) -> HoleInfo {
        HoleInfo::with_probes(ty, scope, spec, Vec::new())
    }

    /// Like [`HoleInfo::new`] with deduction-emitted trace probes.
    pub fn with_probes(
        ty: Type,
        scope: Vec<(Symbol, Type)>,
        spec: Spec,
        probes: Vec<lambda2_lang::env::Env>,
    ) -> HoleInfo {
        let store_key = StoreKey::with_probes(&scope, &spec, &probes);
        HoleInfo {
            ty,
            scope,
            spec,
            probes,
            store_key,
        }
    }
}

/// A partial program in the best-first queue.
#[derive(Clone, Debug)]
pub struct Hypothesis {
    /// The program body (parameters live in the enclosing [`crate::verify::Program`]).
    pub expr: Expr,
    /// Open holes in left-to-right order, paired with their metadata.
    holes: Vec<(HoleId, Arc<HoleInfo>)>,
    /// Admissible lower bound on the cost of any completion.
    pub cost: u32,
}

impl Hypothesis {
    /// The root hypothesis: a single hole covering the whole body.
    pub fn root(info: HoleInfo, costs: &CostModel) -> Hypothesis {
        Hypothesis {
            expr: Expr::Hole(0),
            holes: vec![(0, Arc::new(info))],
            cost: costs.hole_min(),
        }
    }

    /// `true` when no holes remain.
    pub fn is_complete(&self) -> bool {
        self.holes.is_empty()
    }

    /// The leftmost open hole, if any.
    pub fn first_hole(&self) -> Option<(HoleId, &Arc<HoleInfo>)> {
        self.holes.first().map(|(h, i)| (*h, i))
    }

    /// All open holes, leftmost first.
    pub fn holes(&self) -> &[(HoleId, Arc<HoleInfo>)] {
        &self.holes
    }

    /// Returns a new hypothesis with `hole` replaced by `filler`.
    ///
    /// `new_holes` lists the holes inside `filler` (leftmost first) — they
    /// take the replaced hole's position to keep the left-to-right order.
    /// `cost` is the child's (caller-computed) admissible cost.
    ///
    /// # Panics
    ///
    /// Panics if `hole` is not open in this hypothesis (caller bug).
    pub fn fill(
        &self,
        hole: HoleId,
        filler: &Expr,
        new_holes: Vec<(HoleId, Arc<HoleInfo>)>,
        cost: u32,
    ) -> Hypothesis {
        let pos = self
            .holes
            .iter()
            .position(|(h, _)| *h == hole)
            .expect("filled hole must be open");
        let mut holes = Vec::with_capacity(self.holes.len() - 1 + new_holes.len());
        holes.extend_from_slice(&self.holes[..pos]);
        holes.extend(new_holes);
        holes.extend_from_slice(&self.holes[pos + 1..]);
        Hypothesis {
            expr: self.expr.fill_hole(hole, filler),
            holes,
            cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda2_lang::ast::Comb;

    fn info(ty: Type) -> HoleInfo {
        HoleInfo::new(
            ty,
            vec![(Symbol::intern("l"), Type::list(Type::Int))],
            Spec::empty(),
        )
    }

    #[test]
    fn root_hypothesis_is_one_hole() {
        let h = Hypothesis::root(info(Type::Int), &CostModel::default());
        assert!(!h.is_complete());
        assert_eq!(h.first_hole().unwrap().0, 0);
        assert_eq!(h.cost, 1);
        assert_eq!(h.expr.to_string(), "?0");
    }

    #[test]
    fn fill_replaces_hole_and_preserves_order() {
        let h = Hypothesis::root(info(Type::list(Type::Int)), &CostModel::default());
        // Expand ?0 into (map (lambda (x) ?1) l), leaving hole 1.
        let skeleton = Expr::comb(
            Comb::Map,
            vec![
                Expr::lambda(vec![Symbol::intern("x")], Expr::Hole(1)),
                Expr::var("l"),
            ],
        );
        let child = h.fill(0, &skeleton, vec![(1, Arc::new(info(Type::Int)))], 7);
        assert_eq!(child.expr.to_string(), "(map (lambda (x) ?1) l)");
        assert_eq!(child.first_hole().unwrap().0, 1);
        assert_eq!(child.cost, 7);

        // Closing hole 1 completes the hypothesis.
        let done = child.fill(1, &Expr::var("x"), vec![], 8);
        assert!(done.is_complete());
        assert_eq!(done.expr.to_string(), "(map (lambda (x) x) l)");
    }

    #[test]
    fn fill_keeps_sibling_holes_ordered() {
        let h = Hypothesis::root(info(Type::Int), &CostModel::default());
        let skeleton = Expr::comb(
            Comb::Foldl,
            vec![
                Expr::lambda(
                    vec![Symbol::intern("a"), Symbol::intern("x")],
                    Expr::Hole(1),
                ),
                Expr::Hole(2),
                Expr::var("l"),
            ],
        );
        let child = h.fill(
            0,
            &skeleton,
            vec![
                (1, Arc::new(info(Type::Int))),
                (2, Arc::new(info(Type::Int))),
            ],
            10,
        );
        let ids: Vec<HoleId> = child.holes().iter().map(|(h, _)| *h).collect();
        assert_eq!(ids, vec![1, 2]);
        // Filling the middle hole keeps the other.
        let c2 = child.fill(1, &Expr::var("a"), vec![], 10);
        let ids: Vec<HoleId> = c2.holes().iter().map(|(h, _)| *h).collect();
        assert_eq!(ids, vec![2]);
    }

    #[test]
    #[should_panic(expected = "filled hole must be open")]
    fn filling_unknown_hole_panics() {
        let h = Hypothesis::root(info(Type::Int), &CostModel::default());
        let _ = h.fill(42, &Expr::int(0), vec![], 1);
    }
}
