//! # `lambda2-synth` — the λ² synthesis engine
//!
//! Reproduction of the synthesis algorithm from *"Synthesizing data
//! structure transformations from input-output examples"* (Feser,
//! Chaudhuri, Dillig — PLDI 2015). Given a typed signature and
//! input-output examples, [`Synthesizer`] returns the **simplest**
//! (minimal-cost) program in the object language of
//! [`lambda2_lang`] that fits every example.
//!
//! The algorithm combines three ideas:
//!
//! 1. **Inductive generalization** ([`hypothesis`], [`expand`]) — examples
//!    are generalized into partial programs with typed, example-annotated
//!    holes, e.g. `map ◻ l` or `foldr ◻ ◻ l`.
//! 2. **Deduction** ([`deduce`]) — per-combinator rules that refute
//!    hypotheses outright or infer new examples for their holes.
//! 3. **Best-first enumerative search** ([`search`], [`enumerate`]) — a
//!    cost-ordered queue with an admissible bound, plus bottom-up term
//!    enumeration with observational-equivalence pruning for closing holes.
//!
//! A pure-enumeration [`baseline`] engine and a deduction-off ablation
//! ([`SearchOptions::deduction`]) reproduce the paper's comparisons.
//!
//! # Examples
//!
//! ```
//! use lambda2_synth::{Problem, Synthesizer};
//!
//! let problem = Problem::builder("evens")
//!     .describe("keep the even elements")
//!     .param("l", "[int]")
//!     .returns("[int]")
//!     .example(&["[]"], "[]")
//!     .example(&["[1 2 3 4]"], "[2 4]")
//!     .example(&["[5 6]"], "[6]")
//!     .build()?;
//!
//! let result = Synthesizer::default().synthesize(&problem).expect("solved");
//! // A minimal filter over the list.
//! assert!(result.program.body().to_string().starts_with("(filter (lambda (x) "));
//! # use lambda2_lang::parser::parse_value;
//! let out = result.program.apply(&[parse_value("[7 8 9 10]").unwrap()]).unwrap();
//! assert_eq!(out, parse_value("[8 10]").unwrap());
//! # Ok::<(), lambda2_synth::ProblemError>(())
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod analyze;
pub mod baseline;
pub mod cost;
pub mod deduce;
pub mod enumerate;
pub mod expand;
pub mod failpoints;
pub mod govern;
pub mod hypothesis;
pub mod l2file;
pub mod library;
pub mod obs;
pub mod par;
pub mod problem;
pub mod search;
pub mod serve;
pub mod spec;
pub mod stats;
pub mod synthesizer;
pub mod verify;

pub use analyze::lint::{lint_source, Diagnostic};
pub use analyze::{RefuteDomain, Verdict};
pub use cost::CostModel;
pub use enumerate::{WarmCache, WarmStores};
pub use govern::{
    Attempt, Budget, BudgetExceeded, BudgetSnapshot, CancelToken, FrontierItem, Rung, SearchReport,
};
pub use l2file::{parse_problem, parse_problem_file, LibrarySpec, ProblemFile};
pub use library::Library;
pub use obs::corpus::{
    aggregate, build_rev, ingest_bench, ingest_measurement, load_records, options_fingerprint,
    regress, Aggregate, Corpus, CorpusError, Finding, FindingKind, RegressThresholds, RunRecord,
};
pub use obs::metrics::{Histogram, SearchMetrics};
pub use obs::profile::{
    collapse_tree, diff_traces, load_trace, parse_trace, summarize, DiffOutcome, ProfileError,
    Summary, Trace, Weight,
};
pub use obs::report::{render_access_html, render_html};
pub use obs::{
    CollectTracer, JsonlTracer, NoopTracer, PhaseTimes, TraceEvent, Tracer, SCHEMA_VERSION,
};
pub use par::{
    effective_jobs, portfolio_report, portfolio_report_traced, run_pool, synthesize_batch,
    ParEngine, ParOutcome, ParTask, PoolItem,
};
pub use problem::{Example, Problem, ProblemBuilder, ProblemError};
pub use search::{
    search_governed, search_governed_warm, warm_config_fingerprint, SearchOptions, SynthError,
    Synthesis,
};
pub use serve::{
    load_access_log, AccessError, AccessLog, AccessRecord, AccessReport, ServeConfig, ServeSummary,
    Server,
};
pub use spec::{ExampleRow, Spec};
pub use stats::{Measurement, Stats};
pub use synthesizer::Synthesizer;
pub use verify::Program;
