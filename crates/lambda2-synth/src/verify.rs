//! Complete programs and verification.
//!
//! Deduced specs are necessary-but-not-sufficient, so every complete
//! candidate is re-checked against the *original* examples before being
//! returned. Soundness of the synthesizer rests on this check alone.

use std::fmt;

use lambda2_lang::ast::Expr;
use lambda2_lang::env::Env;
use lambda2_lang::error::EvalError;
use lambda2_lang::eval::eval;
use lambda2_lang::infer::{infer, TypeEnv, TypeError};
use lambda2_lang::symbol::Symbol;
use lambda2_lang::ty::{Subst, Type};

use crate::problem::{Example, Problem};

/// A synthesized (or hand-written) program: a named parameter list and a
/// complete body expression.
#[derive(Clone, Debug)]
pub struct Program {
    params: Vec<(Symbol, Type)>,
    body: Expr,
}

impl Program {
    /// Creates a program.
    ///
    /// # Panics
    ///
    /// Panics if `body` still contains holes (programs are complete by
    /// definition; hypotheses are the partial form).
    pub fn new(params: Vec<(Symbol, Type)>, body: Expr) -> Program {
        assert!(body.is_complete(), "program bodies must be hole-free");
        Program { params, body }
    }

    /// The parameter list.
    pub fn params(&self) -> &[(Symbol, Type)] {
        &self.params
    }

    /// The body expression.
    pub fn body(&self) -> &Expr {
        &self.body
    }

    /// Runs the program on argument values.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::ArityMismatch`] on a wrong argument count, or
    /// whatever the body's evaluation raises.
    pub fn apply(
        &self,
        args: &[lambda2_lang::value::Value],
    ) -> Result<lambda2_lang::value::Value, EvalError> {
        self.apply_with_fuel(args, lambda2_lang::eval::DEFAULT_FUEL)
    }

    /// Runs the program with an explicit fuel budget.
    ///
    /// # Errors
    ///
    /// Same as [`Program::apply`].
    pub fn apply_with_fuel(
        &self,
        args: &[lambda2_lang::value::Value],
        fuel: u64,
    ) -> Result<lambda2_lang::value::Value, EvalError> {
        self.apply_metered(args, fuel).0
    }

    /// Runs the program with an explicit fuel budget, additionally
    /// reporting the fuel actually consumed — the search's resource
    /// governor charges this against its cumulative fuel cap.
    pub fn apply_metered(
        &self,
        args: &[lambda2_lang::value::Value],
        fuel: u64,
    ) -> (Result<lambda2_lang::value::Value, EvalError>, u64) {
        if args.len() != self.params.len() {
            return (Err(EvalError::ArityMismatch), 0);
        }
        let mut env = Env::empty();
        for ((sym, _), v) in self.params.iter().zip(args) {
            env = env.bind(*sym, v.clone());
        }
        let mut remaining = fuel;
        let result = eval(&self.body, &env, &mut remaining);
        (result, fuel - remaining)
    }

    /// `true` if the program satisfies every example.
    pub fn satisfies(&self, examples: &[Example], fuel: u64) -> bool {
        self.satisfies_metered(examples, fuel).0
    }

    /// [`Program::satisfies`], additionally reporting the total fuel
    /// consumed across the examples (evaluation stops at the first
    /// mismatch, so the total covers only the examples actually run).
    pub fn satisfies_metered(&self, examples: &[Example], fuel: u64) -> (bool, u64) {
        let mut total = 0u64;
        for ex in examples {
            let (result, used) = self.apply_metered(&ex.inputs, fuel);
            total = total.saturating_add(used);
            if !matches!(result, Ok(v) if v == ex.output) {
                return (false, total);
            }
        }
        (true, total)
    }

    /// `true` if the program satisfies every example of `problem`.
    pub fn satisfies_problem(&self, problem: &Problem, fuel: u64) -> bool {
        self.satisfies(problem.examples(), fuel)
    }

    /// [`Program::satisfies_problem`] with fuel metering (see
    /// [`Program::satisfies_metered`]).
    pub fn satisfies_problem_metered(&self, problem: &Problem, fuel: u64) -> (bool, u64) {
        self.satisfies_metered(problem.examples(), fuel)
    }

    /// Infers the program's result type from its parameter types.
    ///
    /// Synthesized programs are well-typed by construction (hypothesis
    /// expansion and the enumerator are type-directed); this method makes
    /// that checkable, and lets hand-written programs be validated before
    /// running.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if the body is ill-typed under the
    /// parameter types.
    pub fn infer_type(&self) -> Result<Type, TypeError> {
        let mut subst = Subst::new();
        let mut env = TypeEnv::new();
        for (sym, ty) in &self.params {
            subst.reserve(ty);
            env = env.with_var(*sym, ty.clone());
        }
        let ty = infer(&self.body, &env, &mut subst)?;
        Ok(subst.apply(&ty))
    }
}

impl fmt::Display for Program {
    /// Renders as a lambda: `(lambda (l) (map … l))`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(lambda (")?;
        for (i, (p, _)) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ") {})", self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda2_lang::eval::DEFAULT_FUEL;
    use lambda2_lang::parser::{parse_expr, parse_value};

    fn prog(body: &str, params: &[(&str, Type)]) -> Program {
        Program::new(
            params
                .iter()
                .map(|(n, t)| (Symbol::intern(n), t.clone()))
                .collect(),
            parse_expr(body).unwrap(),
        )
    }

    #[test]
    fn apply_binds_parameters_in_order() {
        let p = prog("(- a b)", &[("a", Type::Int), ("b", Type::Int)]);
        assert_eq!(
            p.apply(&[parse_value("5").unwrap(), parse_value("3").unwrap()]),
            Ok(parse_value("2").unwrap())
        );
        assert_eq!(
            p.apply(&[parse_value("5").unwrap()]),
            Err(EvalError::ArityMismatch)
        );
    }

    #[test]
    fn satisfies_checks_all_examples() {
        let p = prog(
            "(map (lambda (x) (+ x 1)) l)",
            &[("l", Type::list(Type::Int))],
        );
        let good = vec![
            Example {
                inputs: vec![parse_value("[]").unwrap()],
                output: parse_value("[]").unwrap(),
            },
            Example {
                inputs: vec![parse_value("[1 2]").unwrap()],
                output: parse_value("[2 3]").unwrap(),
            },
        ];
        assert!(p.satisfies(&good, DEFAULT_FUEL));
        let mut bad = good;
        bad[1].output = parse_value("[9 9]").unwrap();
        assert!(!p.satisfies(&bad, DEFAULT_FUEL));
    }

    #[test]
    fn crashing_programs_do_not_satisfy() {
        let p = prog("(car l)", &[("l", Type::list(Type::Int))]);
        let ex = vec![Example {
            inputs: vec![parse_value("[]").unwrap()],
            output: parse_value("0").unwrap(),
        }];
        assert!(!p.satisfies(&ex, DEFAULT_FUEL));
    }

    #[test]
    fn display_is_a_lambda() {
        let p = prog("(+ a b)", &[("a", Type::Int), ("b", Type::Int)]);
        assert_eq!(p.to_string(), "(lambda (a b) (+ a b))");
    }

    #[test]
    #[should_panic(expected = "hole-free")]
    fn incomplete_bodies_are_rejected() {
        let _ = prog("?0", &[("a", Type::Int)]);
    }

    #[test]
    fn infer_type_on_well_typed_programs() {
        let p = prog(
            "(map (lambda (x) (+ x 1)) l)",
            &[("l", Type::list(Type::Int))],
        );
        assert_eq!(p.infer_type().unwrap(), Type::list(Type::Int));

        let p = prog("(empty? l)", &[("l", Type::list(Type::Int))]);
        assert_eq!(p.infer_type().unwrap(), Type::Bool);
    }

    #[test]
    fn metered_runs_report_fuel_consumed() {
        let p = prog("(+ a 1)", &[("a", Type::Int)]);
        let (r, used) = p.apply_metered(&[parse_value("2").unwrap()], 100);
        assert_eq!(r, Ok(parse_value("3").unwrap()));
        assert!(used > 0 && used < 100, "{used}");
        // Arity mismatches consume nothing.
        let (r, mismatch_used) = p.apply_metered(&[], 100);
        assert_eq!(r, Err(EvalError::ArityMismatch));
        assert_eq!(mismatch_used, 0);
        // satisfies_metered totals across examples and agrees with
        // satisfies.
        let ex = vec![
            Example {
                inputs: vec![parse_value("1").unwrap()],
                output: parse_value("2").unwrap(),
            },
            Example {
                inputs: vec![parse_value("5").unwrap()],
                output: parse_value("6").unwrap(),
            },
        ];
        let (ok, total) = p.satisfies_metered(&ex, 100);
        assert!(ok);
        assert_eq!(total, 2 * used); // same per-example cost
        assert!(p.satisfies(&ex, 100));
    }

    #[test]
    fn infer_type_rejects_ill_typed_programs() {
        let p = prog("(+ l 1)", &[("l", Type::list(Type::Int))]);
        assert!(p.infer_type().is_err());
    }
}
