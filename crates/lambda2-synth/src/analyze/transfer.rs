//! Per-combinator abstract transfer functions.
//!
//! [`refute_expansion`] runs every applicable domain check for a
//! combinator hypothesis against its concrete example rows. Each check is
//! a *necessary condition for satisfiability* that is **strictly implied**
//! by the corresponding deduction rule's refutation condition in
//! [`crate::deduce`] — see the module docs of [`crate::analyze`] for the
//! soundness argument and the per-combinator subsumption table.
//!
//! The checks are ordered coarse-to-fine within each combinator (shape
//! before length before provenance before ordering) so the reported
//! [`RefuteDomain`] names the *weakest* domain that already suffices.

use lambda2_lang::ast::Comb;
use lambda2_lang::value::Value;

use super::domain::{abs_of, is_subsequence, multiset_included, AbsShape};
use super::{RefuteDomain, Verdict};
use crate::spec::ExampleRow;

/// Statically refutes a combinator hypothesis `C ◻f [init] coll` against
/// its example rows, or returns [`Verdict::Unknown`].
///
/// `coll` holds the evaluated collection argument per row (aligned with
/// `rows`); `init` likewise for fold combinators (`None` otherwise, as in
/// [`crate::deduce::deduce`]).
///
/// Every refutation returned here is sound: the corresponding deduction
/// rule would also refute, and no completion of the hypothesis can satisfy
/// the rows.
pub fn refute_expansion(
    comb: Comb,
    rows: &[ExampleRow],
    coll: &[Value],
    init: Option<&[Value]>,
) -> Verdict {
    debug_assert_eq!(coll.len(), rows.len());
    debug_assert_eq!(init.is_some(), comb.init_index().is_some());
    match comb {
        Comb::Map => refute_map(rows, coll),
        Comb::Filter => refute_filter(rows, coll),
        Comb::Foldl | Comb::Foldr | Comb::Recl => {
            refute_list_fold(rows, coll, init.expect("fold has init"))
        }
        Comb::Mapt => refute_mapt(rows, coll),
        Comb::Foldt => refute_tree_fold(rows, coll, init.expect("fold has init")),
    }
}

/// `map ◻f c` — shape: collection and output are lists; length: the
/// output's length interval must meet the collection's (singletons here,
/// so: equality). Implied by `deduce_map`'s list/length refutations.
fn refute_map(rows: &[ExampleRow], coll: &[Value]) -> Verdict {
    for (row, cv) in rows.iter().zip(coll) {
        let (AbsShape::List(lin), AbsShape::List(lout)) = (abs_of(cv), abs_of(&row.output)) else {
            return Verdict::Refuted(RefuteDomain::Shape);
        };
        if lin.disjoint(lout) {
            return Verdict::Refuted(RefuteDomain::Length);
        }
    }
    Verdict::Unknown
}

/// `filter ◻p c` — shape: both lists; length: output no longer than the
/// collection; provenance: output elements drawn from the collection's
/// multiset; ordering: output is a subsequence. Each is implied by
/// `deduce_filter`'s single `is_subsequence` refutation (subsequence ⇒
/// multiset inclusion ⇒ length ≤).
fn refute_filter(rows: &[ExampleRow], coll: &[Value]) -> Verdict {
    for (row, cv) in rows.iter().zip(coll) {
        let (Some(xs), Some(ys)) = (cv.as_list(), row.output.as_list()) else {
            return Verdict::Refuted(RefuteDomain::Shape);
        };
        let (AbsShape::List(lin), AbsShape::List(lout)) = (abs_of(cv), abs_of(&row.output)) else {
            unreachable!("both checked as lists");
        };
        if lout.definitely_exceeds(lin) {
            return Verdict::Refuted(RefuteDomain::Length);
        }
        if !multiset_included(ys, xs) {
            return Verdict::Refuted(RefuteDomain::Provenance);
        }
        if !is_subsequence(ys, xs) {
            return Verdict::Refuted(RefuteDomain::Order);
        }
    }
    Verdict::Unknown
}

/// `foldl/foldr/recl ◻f e c` — shape: collections are lists; init: an
/// empty-collection row forces the output to be the initial value. Implied
/// by `deduce_fold`'s list check and base check.
fn refute_list_fold(rows: &[ExampleRow], coll: &[Value], init: &[Value]) -> Verdict {
    for ((row, cv), iv) in rows.iter().zip(coll).zip(init) {
        let Some(xs) = cv.as_list() else {
            return Verdict::Refuted(RefuteDomain::Shape);
        };
        if xs.is_empty() && row.output != *iv {
            return Verdict::Refuted(RefuteDomain::Init);
        }
    }
    Verdict::Unknown
}

/// `mapt ◻f c` — shape: collection and output are trees of identical
/// shape; length/size: equal node counts and heights (checked first, as
/// the coarser domain). Implied by `deduce_mapt`'s tree/`same_shape`
/// refutations, since identical shape forces equal size and height.
fn refute_mapt(rows: &[ExampleRow], coll: &[Value]) -> Verdict {
    for (row, cv) in rows.iter().zip(coll) {
        let (Some(tin), Some(tout)) = (cv.as_tree(), row.output.as_tree()) else {
            return Verdict::Refuted(RefuteDomain::Shape);
        };
        let (
            AbsShape::Tree {
                size: sin,
                height: hin,
            },
            AbsShape::Tree {
                size: sout,
                height: hout,
            },
        ) = (abs_of(cv), abs_of(&row.output))
        else {
            unreachable!("both checked as trees");
        };
        if sin.disjoint(sout) || hin.disjoint(hout) {
            return Verdict::Refuted(RefuteDomain::Length);
        }
        if !tin.same_shape(tout) {
            return Verdict::Refuted(RefuteDomain::Shape);
        }
    }
    Verdict::Unknown
}

/// `foldt ◻f e c` — shape: collections are trees; init: an empty-tree row
/// forces the output to be the initial value. Implied by `deduce_foldt`'s
/// tree check and empty-root check.
fn refute_tree_fold(rows: &[ExampleRow], coll: &[Value], init: &[Value]) -> Verdict {
    for ((row, cv), iv) in rows.iter().zip(coll).zip(init) {
        let Some(t) = cv.as_tree() else {
            return Verdict::Refuted(RefuteDomain::Shape);
        };
        if t.is_empty() && row.output != *iv {
            return Verdict::Refuted(RefuteDomain::Init);
        }
    }
    Verdict::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deduce::testutil::{rows_on_var, sym, val};
    use crate::deduce::{deduce, Outcome};

    fn check(
        comb: Comb,
        pairs: &[(&str, &str)],
        init: Option<&str>,
        binders: &[&str],
    ) -> (Verdict, Outcome) {
        let (rows, coll) = rows_on_var("l", pairs);
        let init_vals: Option<Vec<Value>> = init.map(|s| vec![val(s); rows.len()]);
        let verdict = refute_expansion(comb, &rows, &coll.values, init_vals.as_deref());
        let binders: Vec<_> = binders.iter().map(|b| sym(b)).collect();
        let outcome = deduce(comb, &rows, &coll, init_vals.as_deref(), &binders, true);
        (verdict, outcome)
    }

    /// Every static refutation in these cases is confirmed by deduction —
    /// the in-engine invariant that `check-invariants` asserts at runtime.
    fn assert_refuted(case: (Verdict, Outcome), domain: RefuteDomain) {
        assert_eq!(case.0, Verdict::Refuted(domain));
        assert!(
            matches!(case.1, Outcome::Refuted),
            "static refutation not confirmed by deduction"
        );
    }

    #[test]
    fn map_refutations() {
        assert_refuted(
            check(Comb::Map, &[("[1 2]", "[2]")], None, &["x"]),
            RefuteDomain::Length,
        );
        assert_refuted(
            check(Comb::Map, &[("[1 2]", "3")], None, &["x"]),
            RefuteDomain::Shape,
        );
        // Pointwise conflicts are beyond the abstract domains: deduction
        // refutes, the analyzer stays Unknown (soundness, not completeness).
        let (v, o) = check(Comb::Map, &[("[1 1]", "[2 9]")], None, &["x"]);
        assert_eq!(v, Verdict::Unknown);
        assert!(matches!(o, Outcome::Refuted));
    }

    #[test]
    fn filter_refutations_pick_the_weakest_domain() {
        assert_refuted(
            check(Comb::Filter, &[("[1 2]", "[1 2 3]")], None, &["x"]),
            RefuteDomain::Length,
        );
        assert_refuted(
            check(Comb::Filter, &[("[1 2]", "[3]")], None, &["x"]),
            RefuteDomain::Provenance,
        );
        assert_refuted(
            check(Comb::Filter, &[("[1 2]", "[2 1]")], None, &["x"]),
            RefuteDomain::Order,
        );
        assert_refuted(
            check(Comb::Filter, &[("[1 2]", "7")], None, &["x"]),
            RefuteDomain::Shape,
        );
    }

    #[test]
    fn fold_refutations() {
        for comb in [Comb::Foldl, Comb::Foldr] {
            assert_refuted(
                check(comb, &[("[]", "5")], Some("0"), &["a", "x"]),
                RefuteDomain::Init,
            );
            assert_refuted(
                check(comb, &[("7", "5")], Some("0"), &["a", "x"]),
                RefuteDomain::Shape,
            );
        }
        assert_refuted(
            check(Comb::Recl, &[("[]", "5")], Some("0"), &["x", "xs", "r"]),
            RefuteDomain::Init,
        );
        let (v, _) = check(
            Comb::Foldl,
            &[("[]", "0"), ("[1]", "1")],
            Some("0"),
            &["a", "x"],
        );
        assert_eq!(v, Verdict::Unknown);
    }

    #[test]
    fn tree_refutations() {
        assert_refuted(
            check(Comb::Mapt, &[("{1 {2}}", "{1}")], None, &["x"]),
            RefuteDomain::Length,
        );
        assert_refuted(
            check(Comb::Mapt, &[("{1 {2}}", "[1 2]")], None, &["x"]),
            RefuteDomain::Shape,
        );
        // Same size and height but different branching: only the shape
        // domain (exact shape equality) catches it.
        assert_refuted(
            check(
                Comb::Mapt,
                &[("{1 {2 {3}} {4}}", "{1 {2} {3 {4}}}")],
                None,
                &["x"],
            ),
            RefuteDomain::Shape,
        );
        assert_refuted(
            check(Comb::Foldt, &[("{}", "5")], Some("0"), &["v", "rs"]),
            RefuteDomain::Init,
        );
        assert_refuted(
            check(Comb::Foldt, &[("[1]", "5")], Some("0"), &["v", "rs"]),
            RefuteDomain::Shape,
        );
    }

    type UnknownCase = (
        Comb,
        &'static [(&'static str, &'static str)],
        Option<&'static str>,
        &'static [&'static str],
    );

    #[test]
    fn consistent_hypotheses_stay_unknown() {
        let cases: &[UnknownCase] = &[
            (Comb::Map, &[("[1 2]", "[2 3]")], None, &["x"]),
            (Comb::Filter, &[("[1 2 3]", "[1 3]")], None, &["x"]),
            (Comb::Foldl, &[("[1 2]", "3")], Some("0"), &["a", "x"]),
            (Comb::Mapt, &[("{1 {2}}", "{2 {3}}")], None, &["x"]),
            (Comb::Foldt, &[("{1 {2}}", "3")], Some("0"), &["v", "rs"]),
        ];
        for (comb, pairs, init, binders) in cases {
            let (v, _) = check(*comb, pairs, *init, binders);
            assert_eq!(v, Verdict::Unknown, "{comb:?}");
        }
    }
}
