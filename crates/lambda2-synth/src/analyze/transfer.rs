//! Per-combinator abstract transfer functions.
//!
//! [`refute_expansion_tiered`] runs every applicable domain check for a
//! combinator hypothesis against its concrete example rows. The dispatch
//! iterates [`DOMAIN_ORDER`] and fires the first domain whose check
//! refutes, so the reported [`RefuteDomain`] is always the *weakest*
//! sufficient one — the order is enforced by construction, shared with
//! reporting, and unit-tested below.
//!
//! Attribution-tier checks are necessary conditions for satisfiability
//! that are **strictly implied** by the corresponding deduction rule's
//! refutation condition in [`crate::deduce`]; pruning-tier checks
//! (cardinality) refute hypotheses deduction would keep — see the module
//! docs of [`crate::analyze`] for the soundness arguments and the
//! per-combinator subsumption table.

use std::collections::HashMap;

use lambda2_lang::ast::Comb;
use lambda2_lang::value::Value;

use super::cache::{AbsArgs, TermAbs};
use super::domain::{is_subsequence, AbsShape, Interval};
use super::{RefuteDomain, Tier, Verdict, DOMAIN_ORDER};
use crate::spec::ExampleRow;

/// Statically refutes a combinator hypothesis `C ◻f [init] coll` against
/// its example rows with *every* domain enabled (both tiers), or returns
/// [`Verdict::Unknown`]. This is the full-power entry used by tests,
/// lint, and witness suites; the search uses
/// [`refute_expansion_tiered`] to respect `SearchOptions::static_prune`.
///
/// `coll` holds the evaluated collection argument per row (aligned with
/// `rows`); `init` likewise for fold combinators (`None` otherwise, as in
/// [`crate::deduce::deduce`]).
///
/// Every refutation returned here is sound: no completion of the
/// hypothesis can satisfy the rows.
pub fn refute_expansion(
    comb: Comb,
    rows: &[ExampleRow],
    coll: &[Value],
    init: Option<&[Value]>,
) -> Verdict {
    refute_expansion_tiered(comb, rows, coll, init, true)
}

/// [`refute_expansion`] with the pruning tier gated by `prune`: when
/// `false`, only attribution-tier domains run and the verdict is
/// strictly implied by deduction.
pub fn refute_expansion_tiered(
    comb: Comb,
    rows: &[ExampleRow],
    coll: &[Value],
    init: Option<&[Value]>,
    prune: bool,
) -> Verdict {
    let coll_abs = TermAbs::of_values(coll);
    let out_abs = TermAbs::of_outputs(rows);
    refute_expansion_abs(
        comb,
        rows,
        coll,
        AbsArgs {
            coll: &coll_abs,
            out: &out_abs,
        },
        init,
        prune,
    )
}

/// [`refute_expansion_tiered`] consuming *memoized* abstractions: the
/// search computes [`TermAbs`] once per term via
/// [`crate::analyze::AbsCache`] and hands it down here, so the shape,
/// length, provenance, and cardinality domains read the cached
/// intervals and count multisets instead of re-deriving them per
/// (combinator, candidate) pair. `abs` must abstract exactly `coll` and
/// the rows' outputs — [`refute_expansion_tiered`] is the build-locally
/// wrapper.
pub fn refute_expansion_abs(
    comb: Comb,
    rows: &[ExampleRow],
    coll: &[Value],
    abs: AbsArgs<'_>,
    init: Option<&[Value]>,
    prune: bool,
) -> Verdict {
    debug_assert_eq!(coll.len(), rows.len());
    debug_assert_eq!(abs.coll.rows.len(), rows.len());
    debug_assert_eq!(abs.out.rows.len(), rows.len());
    debug_assert_eq!(init.is_some(), comb.init_index().is_some());
    for d in DOMAIN_ORDER {
        if !prune && d.tier() == Tier::Pruning {
            continue;
        }
        if domain_refutes(comb, d, rows, coll, abs, init) {
            return Verdict::Refuted(d);
        }
    }
    Verdict::Unknown
}

/// Whether `domain` *alone* refutes the hypothesis. Each arm checks its
/// own applicability preconditions (e.g. the length domain only compares
/// rows where both sides abstract to lists), so the checks are
/// independent and [`refute_expansion_abs`] can order them purely by
/// [`DOMAIN_ORDER`].
///
/// Shape, length, provenance, and cardinality read the memoized
/// abstractions in `abs`; order, init, and congruence compare the raw
/// values (element order and pointwise images are deliberately *not*
/// abstracted — they are cheap to read directly and expensive to carry).
fn domain_refutes(
    comb: Comb,
    domain: RefuteDomain,
    rows: &[ExampleRow],
    coll: &[Value],
    abs: AbsArgs<'_>,
    init: Option<&[Value]>,
) -> bool {
    use RefuteDomain as D;
    let pairs = || rows.iter().zip(coll);
    let each = || 0..rows.len();
    match (comb, domain) {
        // `map ◻f c`: output is the pointwise image of the collection.
        (Comb::Map, D::Shape) => each().any(|i| list_intervals(abs, i).is_none()),
        (Comb::Map, D::Length) => {
            each().any(|i| list_intervals(abs, i).is_some_and(|(lin, lout)| lin.disjoint(lout)))
        }
        (Comb::Map, D::Congruence) => pairs().any(|(row, cv)| {
            let (Some(xs), Some(ys)) = (cv.as_list(), row.output.as_list()) else {
                return false;
            };
            xs.len() == ys.len() && pointwise_conflict(xs.iter().zip(ys))
        }),

        // `filter ◻p c`: output keeps a subset of the collection.
        (Comb::Filter, D::Shape) => each().any(|i| list_intervals(abs, i).is_none()),
        (Comb::Filter, D::Length) => each().any(|i| {
            list_intervals(abs, i).is_some_and(|(lin, lout)| lout.definitely_exceeds(lin))
        }),
        (Comb::Filter, D::Provenance) => each().any(|i| {
            list_counts(abs, i).is_some_and(|(kept, have)| {
                !kept
                    .iter()
                    .all(|(v, n)| have.get(v).is_some_and(|m| n <= m))
            })
        }),
        (Comb::Filter, D::Order) => pairs().any(|(row, cv)| {
            matches!((cv.as_list(), row.output.as_list()),
                (Some(xs), Some(ys)) if !is_subsequence(ys, xs))
        }),
        (Comb::Filter, D::Cardinality) => each().any(|i| {
            list_counts(abs, i)
                .is_some_and(|(kept, have)| !kept.iter().all(|(v, n)| have.get(v) == Some(n)))
        }),

        // `foldl/foldr/recl ◻f e c`: an empty-collection row forces the
        // output to be the initial value.
        (Comb::Foldl | Comb::Foldr | Comb::Recl, D::Shape) => {
            each().any(|i| !matches!(abs.coll.rows[i].shape, AbsShape::List(_)))
        }
        (Comb::Foldl | Comb::Foldr | Comb::Recl, D::Init) => pairs()
            .zip(init.expect("fold has init"))
            .any(|((row, cv), iv)| {
                cv.as_list().is_some_and(|xs| xs.is_empty()) && row.output != *iv
            }),

        // `mapt ◻f c`: output tree has exactly the collection's shape
        // (the length domain sees only the coarser size/height
        // intervals, so it stays the weaker check).
        (Comb::Mapt, D::Shape) => {
            pairs().any(|(row, cv)| match (cv.as_tree(), row.output.as_tree()) {
                (Some(tin), Some(tout)) => !tin.same_shape(tout),
                _ => true,
            })
        }
        (Comb::Mapt, D::Length) => each().any(|i| {
            let (
                AbsShape::Tree {
                    size: sin,
                    height: hin,
                },
                AbsShape::Tree {
                    size: sout,
                    height: hout,
                },
            ) = (&abs.coll.rows[i].shape, &abs.out.rows[i].shape)
            else {
                return false;
            };
            sin.disjoint(*sout) || hin.disjoint(*hout)
        }),
        (Comb::Mapt, D::Congruence) => pairs().any(|(row, cv)| {
            let (Some(tin), Some(tout)) = (cv.as_tree(), row.output.as_tree()) else {
                return false;
            };
            tin.same_shape(tout) && pointwise_conflict(tin.values().into_iter().zip(tout.values()))
        }),

        // `foldt ◻f e c`: an empty-tree row forces the output to be the
        // initial value.
        (Comb::Foldt, D::Shape) => {
            each().any(|i| !matches!(abs.coll.rows[i].shape, AbsShape::Tree { .. }))
        }
        (Comb::Foldt, D::Init) => pairs()
            .zip(init.expect("fold has init"))
            .any(|((row, cv), iv)| cv.as_tree().is_some_and(|t| t.is_empty()) && row.output != *iv),

        // The remaining (combinator, domain) pairs have no check.
        _ => false,
    }
}

/// Row `i`'s (collection, output) length intervals when both abstract
/// to lists.
fn list_intervals(abs: AbsArgs<'_>, i: usize) -> Option<(Interval, Interval)> {
    match (&abs.coll.rows[i].shape, &abs.out.rows[i].shape) {
        (AbsShape::List(lin), AbsShape::List(lout)) => Some((*lin, *lout)),
        _ => None,
    }
}

/// Row `i`'s (output, collection) element-count multisets when both
/// abstract to lists — (kept, have) in filter terms.
#[allow(clippy::type_complexity)]
fn list_counts(abs: AbsArgs<'_>, i: usize) -> Option<(&HashMap<Value, u32>, &HashMap<Value, u32>)> {
    match (&abs.out.rows[i].counts, &abs.coll.rows[i].counts) {
        (Some(kept), Some(have)) => Some((kept, have)),
        _ => None,
    }
}

/// Congruence conflict: two equal inputs paired with different outputs.
/// Sound within one example row because the hole sees a fixed environment
/// there — equal elements must map to equal results.
fn pointwise_conflict<'a, I>(pairs: I) -> bool
where
    I: Iterator<Item = (&'a Value, &'a Value)>,
{
    let mut image: HashMap<&Value, &Value> = HashMap::new();
    for (vi, vo) in pairs {
        match image.get(vi) {
            Some(prev) if *prev != vo => return true,
            Some(_) => {}
            None => {
                image.insert(vi, vo);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::oracle;
    use crate::deduce::testutil::{rows_on_var, sym, val};
    use crate::deduce::{deduce, Outcome};

    fn check(
        comb: Comb,
        pairs: &[(&str, &str)],
        init: Option<&str>,
        binders: &[&str],
    ) -> (Verdict, Outcome) {
        let (rows, coll) = rows_on_var("l", pairs);
        let init_vals: Option<Vec<Value>> = init.map(|s| vec![val(s); rows.len()]);
        let verdict = refute_expansion(comb, &rows, &coll.values, init_vals.as_deref());
        let binders: Vec<_> = binders.iter().map(|b| sym(b)).collect();
        let outcome = deduce(comb, &rows, &coll, init_vals.as_deref(), &binders, true);
        (verdict, outcome)
    }

    /// Every attribution-tier refutation in these cases is confirmed by
    /// deduction — the in-engine invariant that `check-invariants`
    /// asserts at runtime.
    fn assert_refuted(case: (Verdict, Outcome), domain: RefuteDomain) {
        assert_eq!(case.0, Verdict::Refuted(domain));
        assert_eq!(domain.tier(), Tier::Attribution, "use assert_pruned");
        assert!(
            matches!(case.1, Outcome::Refuted),
            "static refutation not confirmed by deduction"
        );
    }

    #[test]
    fn map_refutations() {
        assert_refuted(
            check(Comb::Map, &[("[1 2]", "[2]")], None, &["x"]),
            RefuteDomain::Length,
        );
        assert_refuted(
            check(Comb::Map, &[("[1 2]", "3")], None, &["x"]),
            RefuteDomain::Shape,
        );
        // Pointwise conflicts within one row are the congruence domain;
        // deduction confirms (the conflicting sub-spec rows collide).
        assert_refuted(
            check(Comb::Map, &[("[1 1]", "[2 9]")], None, &["x"]),
            RefuteDomain::Congruence,
        );
        // Equal elements mapped equally: consistent, stays Unknown.
        let (v, o) = check(Comb::Map, &[("[1 1 2]", "[5 5 6]")], None, &["x"]);
        assert_eq!(v, Verdict::Unknown);
        assert!(matches!(o, Outcome::Deduced(_)));
    }

    #[test]
    fn filter_refutations_pick_the_weakest_domain() {
        assert_refuted(
            check(Comb::Filter, &[("[1 2]", "[1 2 3]")], None, &["x"]),
            RefuteDomain::Length,
        );
        assert_refuted(
            check(Comb::Filter, &[("[1 2]", "[3]")], None, &["x"]),
            RefuteDomain::Provenance,
        );
        assert_refuted(
            check(Comb::Filter, &[("[1 2]", "[2 1]")], None, &["x"]),
            RefuteDomain::Order,
        );
        assert_refuted(
            check(Comb::Filter, &[("[1 2]", "7")], None, &["x"]),
            RefuteDomain::Shape,
        );
    }

    #[test]
    fn filter_cardinality_refutes_where_deduction_cannot() {
        // `[5 7 5] → [5]` keeps one of two equal elements: no predicate
        // can do that, but deduction deliberately skips the ambiguous
        // duplicate rows and stays open.
        let (v, o) = check(Comb::Filter, &[("[5 7 5]", "[5]")], None, &["x"]);
        assert_eq!(v, Verdict::Refuted(RefuteDomain::Cardinality));
        assert!(
            matches!(o, Outcome::Deduced(_)),
            "deduction should NOT refute this — that's the point of the pruning tier"
        );
        // The bounded brute-force oracle re-proves the refutation instead.
        let (rows, coll) = rows_on_var("l", &[("[5 7 5]", "[5]")]);
        assert!(oracle::no_filter_completion(&rows, &coll.values));

        // Same for the droplast-style row.
        let (v, _) = check(Comb::Filter, &[("[8 3 8]", "[8 3]")], None, &["x"]);
        assert_eq!(v, Verdict::Refuted(RefuteDomain::Cardinality));

        // With pruning off, the tiered entry leaves it Unknown.
        let (rows, coll) = rows_on_var("l", &[("[5 7 5]", "[5]")]);
        assert_eq!(
            refute_expansion_tiered(Comb::Filter, &rows, &coll.values, None, false),
            Verdict::Unknown
        );
    }

    #[test]
    fn filter_all_or_none_rows_stay_unknown() {
        // Keeping both 5s (all occurrences) is realizable: `x = 5`.
        let (v, _) = check(Comb::Filter, &[("[5 7 5]", "[5 5]")], None, &["x"]);
        assert_eq!(v, Verdict::Unknown);
    }

    #[test]
    fn fold_refutations() {
        for comb in [Comb::Foldl, Comb::Foldr] {
            assert_refuted(
                check(comb, &[("[]", "5")], Some("0"), &["a", "x"]),
                RefuteDomain::Init,
            );
            assert_refuted(
                check(comb, &[("7", "5")], Some("0"), &["a", "x"]),
                RefuteDomain::Shape,
            );
        }
        assert_refuted(
            check(Comb::Recl, &[("[]", "5")], Some("0"), &["x", "xs", "r"]),
            RefuteDomain::Init,
        );
        let (v, _) = check(
            Comb::Foldl,
            &[("[]", "0"), ("[1]", "1")],
            Some("0"),
            &["a", "x"],
        );
        assert_eq!(v, Verdict::Unknown);
    }

    #[test]
    fn tree_refutations() {
        assert_refuted(
            check(Comb::Mapt, &[("{1 {2}}", "{1}")], None, &["x"]),
            RefuteDomain::Length,
        );
        assert_refuted(
            check(Comb::Mapt, &[("{1 {2}}", "[1 2]")], None, &["x"]),
            RefuteDomain::Shape,
        );
        // Same size and height but different branching: only the shape
        // domain (exact shape equality) catches it.
        assert_refuted(
            check(
                Comb::Mapt,
                &[("{1 {2 {3}} {4}}", "{1 {2} {3 {4}}}")],
                None,
                &["x"],
            ),
            RefuteDomain::Shape,
        );
        // Equal node values sent to different outputs: congruence.
        assert_refuted(
            check(Comb::Mapt, &[("{1 {1}}", "{2 {3}}")], None, &["x"]),
            RefuteDomain::Congruence,
        );
        assert_refuted(
            check(Comb::Foldt, &[("{}", "5")], Some("0"), &["v", "rs"]),
            RefuteDomain::Init,
        );
        assert_refuted(
            check(Comb::Foldt, &[("[1]", "5")], Some("0"), &["v", "rs"]),
            RefuteDomain::Shape,
        );
    }

    type UnknownCase = (
        Comb,
        &'static [(&'static str, &'static str)],
        Option<&'static str>,
        &'static [&'static str],
    );

    #[test]
    fn consistent_hypotheses_stay_unknown() {
        let cases: &[UnknownCase] = &[
            (Comb::Map, &[("[1 2]", "[2 3]")], None, &["x"]),
            (Comb::Filter, &[("[1 2 3]", "[1 3]")], None, &["x"]),
            (Comb::Foldl, &[("[1 2]", "3")], Some("0"), &["a", "x"]),
            (Comb::Mapt, &[("{1 {2}}", "{2 {3}}")], None, &["x"]),
            (Comb::Foldt, &[("{1 {2}}", "3")], Some("0"), &["v", "rs"]),
        ];
        for (comb, pairs, init, binders) in cases {
            let (v, _) = check(*comb, pairs, *init, binders);
            assert_eq!(v, Verdict::Unknown, "{comb:?}");
        }
    }

    /// Satellite invariant: the reported domain is always the first entry
    /// of [`DOMAIN_ORDER`] whose check individually refutes — the weakest
    /// sufficient evidence, by the table the dispatch itself iterates.
    #[test]
    fn reported_domain_is_the_weakest_sufficient_one() {
        let cases: &[UnknownCase] = &[
            (Comb::Map, &[("[1 2]", "[2]")], None, &["x"]),
            (Comb::Map, &[("[1 2]", "3")], None, &["x"]),
            (Comb::Map, &[("[1 1]", "[2 9]")], None, &["x"]),
            // Mixed rows: a coarser domain fires on a *later* row than a
            // finer one — order must still win over row position.
            (
                Comb::Map,
                &[("[1 1]", "[2 9]"), ("[1 2]", "[2]")],
                None,
                &["x"],
            ),
            (Comb::Filter, &[("[1 2]", "[1 2 3]")], None, &["x"]),
            (Comb::Filter, &[("[1 2]", "[3]")], None, &["x"]),
            (Comb::Filter, &[("[1 2]", "[2 1]")], None, &["x"]),
            (Comb::Filter, &[("[5 7 5]", "[5]")], None, &["x"]),
            (
                Comb::Filter,
                &[("[5 7 5]", "[5]"), ("[1 2]", "[2 1]")],
                None,
                &["x"],
            ),
            (Comb::Foldl, &[("[]", "5")], Some("0"), &["a", "x"]),
            (Comb::Mapt, &[("{1 {2}}", "{1}")], None, &["x"]),
            (Comb::Mapt, &[("{1 {1}}", "{2 {3}}")], None, &["x"]),
            (Comb::Foldt, &[("{}", "5")], Some("0"), &["v", "rs"]),
        ];
        for (comb, pairs, init, _) in cases {
            let (rows, coll) = rows_on_var("l", pairs);
            let init_vals: Option<Vec<Value>> = init.map(|s| vec![val(s); rows.len()]);
            let verdict = refute_expansion(*comb, &rows, &coll.values, init_vals.as_deref());
            let Verdict::Refuted(reported) = verdict else {
                panic!("{comb:?} {pairs:?}: expected a refutation");
            };
            let coll_abs = TermAbs::of_values(&coll.values);
            let out_abs = TermAbs::of_outputs(&rows);
            let abs = AbsArgs {
                coll: &coll_abs,
                out: &out_abs,
            };
            let weakest = DOMAIN_ORDER
                .into_iter()
                .find(|d| domain_refutes(*comb, *d, &rows, &coll.values, abs, init_vals.as_deref()))
                .expect("some domain refutes");
            assert_eq!(
                reported,
                weakest,
                "{comb:?} {pairs:?}: reported {} but weakest sufficient is {}",
                reported.name(),
                weakest.name()
            );
        }
    }
}
