//! Composable abstract domains over λ² values.
//!
//! Three domains abstract concrete [`Value`]s for the refutation engine
//! and the lint-side reachability analysis:
//!
//! * **length/size intervals** ([`Interval`], [`AbsShape`]) — list length,
//!   tree node count and tree height as `[lo, hi]` intervals;
//! * **element provenance** ([`multiset_included`]) — which multiset of
//!   elements a collection was built from;
//! * **ordering** ([`is_subsequence`]) — relative element order, the
//!   "sortedness" of an output with respect to its source collection.
//!
//! Concrete example values abstract to *singleton* intervals; the lint
//! reachability analysis ([`crate::analyze::reach`]) joins intervals
//! across whole input sets, which is where the lattice structure earns
//! its keep.

use std::collections::HashMap;

use lambda2_lang::value::Value;

/// A closed interval `[lo, hi]` over unsigned sizes; `hi = None` means
/// unbounded above (the lattice top has `lo = 0, hi = None`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound; `None` = +∞.
    pub hi: Option<u64>,
}

impl Interval {
    /// The singleton interval `[n, n]`.
    pub const fn exact(n: u64) -> Interval {
        Interval { lo: n, hi: Some(n) }
    }

    /// The interval `[0, n]`.
    pub const fn at_most(n: u64) -> Interval {
        Interval { lo: 0, hi: Some(n) }
    }

    /// The top element `[0, +∞)`.
    pub const fn top() -> Interval {
        Interval { lo: 0, hi: None }
    }

    /// Least upper bound: the smallest interval containing both.
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    /// Whether the concrete size `n` is in the interval.
    pub fn contains(self, n: u64) -> bool {
        n >= self.lo && self.hi.is_none_or(|h| n <= h)
    }

    /// `true` when *every* size in `self` exceeds *every* size in `other`
    /// — i.e. the concretizations are provably ordered. This is the
    /// refuting comparison: a `filter` output whose length interval
    /// definitely exceeds the collection's cannot exist.
    pub fn definitely_exceeds(self, other: Interval) -> bool {
        match other.hi {
            Some(h) => self.lo > h,
            None => false,
        }
    }

    /// `true` when the intervals share no concrete size — e.g. a `map`
    /// output length disjoint from the collection length.
    pub fn disjoint(self, other: Interval) -> bool {
        self.definitely_exceeds(other) || other.definitely_exceeds(self)
    }
}

/// The shape-level abstraction of one concrete value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbsShape {
    /// An integer or boolean scalar.
    Scalar,
    /// A list with its length interval.
    List(Interval),
    /// A tree with its node-count and height intervals.
    Tree {
        /// Node count.
        size: Interval,
        /// Height (0 for the empty tree).
        height: Interval,
    },
    /// A pair.
    Pair,
}

/// Abstracts a concrete value: lists and trees become exact size
/// intervals, everything else collapses to its shape.
pub fn abs_of(v: &Value) -> AbsShape {
    match v {
        Value::List(xs) => AbsShape::List(Interval::exact(xs.len() as u64)),
        Value::Tree(t) => AbsShape::Tree {
            size: Interval::exact(t.size() as u64),
            height: Interval::exact(t.height() as u64),
        },
        Value::Pair(_) => AbsShape::Pair,
        _ => AbsShape::Scalar,
    }
}

/// Element-provenance check: `true` when `sub`'s multiset of elements is
/// included in `sup`'s — every output element occurs at least as often in
/// the source collection. Reshaping combinators (`filter`) can only drop
/// occurrences, never invent or duplicate them.
pub fn multiset_included(sub: &[Value], sup: &[Value]) -> bool {
    if sub.len() > sup.len() {
        return false;
    }
    let mut avail: HashMap<&Value, usize> = HashMap::new();
    for v in sup {
        *avail.entry(v).or_default() += 1;
    }
    sub.iter().all(|v| match avail.get_mut(v) {
        Some(n) if *n > 0 => {
            *n -= 1;
            true
        }
        _ => false,
    })
}

/// Multiset of element occurrence counts — the carrier of the
/// cardinality domain.
pub fn value_counts(xs: &[Value]) -> HashMap<&Value, usize> {
    let mut counts: HashMap<&Value, usize> = HashMap::new();
    for v in xs {
        *counts.entry(v).or_default() += 1;
    }
    counts
}

/// Cardinality-domain check: `true` when every distinct value of `sup`
/// occurs in `sub` either zero times or exactly as often as in `sup`
/// (and `sub` introduces no foreign values). A `filter` predicate closes
/// over a fixed environment within one row, so equal elements get the
/// same verdict: the output keeps *all* or *none* of each value's
/// occurrences. Together with [`is_subsequence`] this is *complete* for
/// filter refutation — an output passing both equals `filter_K(sup)` for
/// the kept-value set `K = {v : count_sub(v) > 0}`.
pub fn counts_all_or_none(sub: &[Value], sup: &[Value]) -> bool {
    let have = value_counts(sup);
    let kept = value_counts(sub);
    kept.iter()
        .all(|(v, n)| have.get(v).is_some_and(|m| n == m))
}

/// Ordering-domain check: `true` if `sub` is an order-preserving
/// subsequence of `sup`. Subsumes [`multiset_included`] and the length
/// comparison; the deduction rule for `filter` refutes on exactly this
/// condition, which is why the coarser domains above are *sound*
/// pre-checks for it.
pub fn is_subsequence(sub: &[Value], sup: &[Value]) -> bool {
    let mut it = sup.iter();
    sub.iter().all(|s| it.any(|v| v == s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda2_lang::parser::parse_value;

    fn vals(s: &str) -> Vec<Value> {
        parse_value(s).unwrap().as_list().unwrap().to_vec()
    }

    #[test]
    fn interval_lattice_laws() {
        let a = Interval::exact(3);
        let b = Interval::exact(7);
        let j = a.join(b);
        assert_eq!(j, Interval { lo: 3, hi: Some(7) });
        assert!(j.contains(3) && j.contains(5) && j.contains(7));
        assert!(!j.contains(2) && !j.contains(8));
        // Join with top is top; join is commutative and idempotent.
        assert_eq!(a.join(Interval::top()), Interval::top());
        assert_eq!(a.join(b), b.join(a));
        assert_eq!(a.join(a), a);
        assert!(Interval::top().contains(u64::MAX));
        assert_eq!(Interval::at_most(4).lo, 0);
    }

    #[test]
    fn interval_comparisons() {
        assert!(Interval::exact(5).definitely_exceeds(Interval::exact(4)));
        assert!(!Interval::exact(5).definitely_exceeds(Interval::exact(5)));
        assert!(!Interval::exact(5).definitely_exceeds(Interval::top()));
        assert!(Interval::exact(5).disjoint(Interval::exact(4)));
        assert!(Interval::exact(4).disjoint(Interval::exact(5)));
        assert!(!Interval::exact(5).disjoint(Interval { lo: 4, hi: Some(6) }));
    }

    #[test]
    fn abstraction_of_values() {
        assert_eq!(abs_of(&Value::Int(3)), AbsShape::Scalar);
        assert_eq!(
            abs_of(&parse_value("[1 2 3]").unwrap()),
            AbsShape::List(Interval::exact(3))
        );
        match abs_of(&parse_value("{1 {2} {3 {4}}}").unwrap()) {
            AbsShape::Tree { size, height } => {
                assert_eq!(size, Interval::exact(4));
                assert_eq!(height, Interval::exact(3));
            }
            other => panic!("expected a tree abstraction, got {other:?}"),
        }
    }

    #[test]
    fn multiset_inclusion() {
        assert!(multiset_included(&vals("[2 1]"), &vals("[1 2 3]")));
        assert!(multiset_included(&vals("[]"), &vals("[]")));
        assert!(!multiset_included(&vals("[1 1]"), &vals("[1 2]")));
        assert!(!multiset_included(&vals("[4]"), &vals("[1 2 3]")));
    }

    #[test]
    fn all_or_none_cardinality() {
        // Keep all 5s and no 7s: fine.
        assert!(counts_all_or_none(&vals("[5 5]"), &vals("[5 7 5]")));
        // Keep nothing / everything: fine.
        assert!(counts_all_or_none(&vals("[]"), &vals("[5 7 5]")));
        assert!(counts_all_or_none(&vals("[5 7 5]"), &vals("[5 7 5]")));
        // Keep one of two 5s: refuted — no predicate can split equals.
        assert!(!counts_all_or_none(&vals("[5]"), &vals("[5 7 5]")));
        assert!(!counts_all_or_none(&vals("[8 3]"), &vals("[8 3 8]")));
        // Foreign values are refuted too (provenance usually fires first).
        assert!(!counts_all_or_none(&vals("[9]"), &vals("[5 7]")));
        // Duplicate-free rows are never refuted by cardinality.
        assert!(counts_all_or_none(&vals("[2]"), &vals("[1 2 3]")));
    }

    #[test]
    fn subsequence_is_strictly_finer_than_multiset_inclusion() {
        // Reordered: included as a multiset but not a subsequence.
        let sub = vals("[2 1]");
        let sup = vals("[1 2 3]");
        assert!(multiset_included(&sub, &sup));
        assert!(!is_subsequence(&sub, &sup));
        // And subsequence implies inclusion.
        assert!(is_subsequence(&vals("[1 3]"), &sup));
        assert!(multiset_included(&vals("[1 3]"), &sup));
    }
}
