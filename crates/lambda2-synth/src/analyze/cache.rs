//! Arena-memoized abstract values for the refutation pre-pass.
//!
//! Within one planning sweep a candidate collection term is checked
//! against every applicable combinator, and across sweeps the same
//! [`TermId`] reappears whenever its hole context (store key) recurs.
//! The abstraction the domain checks consume — per-row shape intervals
//! and element-count multisets ([`TermAbs`]) — depends only on the
//! term's evaluated values, so it is computed once per term and cached
//! here, dense-indexed by the term's arena id exactly like the stores
//! that own those arenas.
//!
//! The cache is byte-budgeted like [`crate::enumerate::TermStore`]s:
//! when the estimated footprint exceeds the budget, whole per-store
//! slabs are evicted least-recently-touched first (never the slab
//! being read). Under `check-invariants` the byte accounting is
//! recomputed and compared at every eviction, and every cache hit is
//! re-derived from the term's values and compared at the use site.

use std::collections::HashMap;
use std::hash::Hash;
use std::mem::size_of;
use std::sync::Arc;

use lambda2_lang::term::TermId;
use lambda2_lang::value::Value;

use super::domain::{abs_of, AbsShape};
use crate::spec::ExampleRow;

/// The abstraction of one example row's worth of a term: its shape
/// (with exact size intervals) and, for lists, the element-occurrence
/// count multiset that the provenance and cardinality domains consume.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowAbs {
    /// Shape with size intervals ([`abs_of`]).
    pub shape: AbsShape,
    /// Element counts; `Some` exactly for list values.
    pub counts: Option<HashMap<Value, u32>>,
}

impl RowAbs {
    /// Abstracts one concrete value.
    pub fn of_value(v: &Value) -> RowAbs {
        let counts = v.as_list().map(|xs| {
            let mut counts: HashMap<Value, u32> = HashMap::with_capacity(xs.len());
            for x in xs {
                *counts.entry(x.clone()).or_default() += 1;
            }
            counts
        });
        RowAbs {
            shape: abs_of(v),
            counts,
        }
    }

    fn approx_bytes(&self) -> usize {
        // Flat struct plus a rough per-entry charge for the count map
        // (hashed key value + bucket overhead). Estimation only —
        // consistency, not precision, is what the budget needs.
        size_of::<RowAbs>()
            + self
                .counts
                .as_ref()
                .map_or(0, |c| 32 + c.len() * (size_of::<Value>() + 24))
    }
}

/// Per-row abstractions of a term across the whole example set — the
/// memoized input of [`crate::analyze::refute_expansion_abs`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TermAbs {
    /// One abstraction per example row, aligned with the spec's rows.
    pub rows: Vec<RowAbs>,
}

impl TermAbs {
    /// Abstracts a term's evaluated per-row values.
    pub fn of_values(values: &[Value]) -> TermAbs {
        TermAbs {
            rows: values.iter().map(RowAbs::of_value).collect(),
        }
    }

    /// Abstracts a spec's outputs (the fixed right-hand side every
    /// candidate is compared against).
    pub fn of_outputs(rows: &[ExampleRow]) -> TermAbs {
        TermAbs {
            rows: rows.iter().map(|r| RowAbs::of_value(&r.output)).collect(),
        }
    }

    /// Estimated heap footprint, for the cache byte budget.
    pub fn approx_bytes(&self) -> usize {
        size_of::<TermAbs>() + self.rows.iter().map(RowAbs::approx_bytes).sum::<usize>()
    }
}

/// Borrowed pair of memoized abstractions handed down to the planner:
/// the candidate collection's and the spec outputs'.
#[derive(Clone, Copy)]
pub struct AbsArgs<'a> {
    /// Abstraction of the collection candidate's per-row values.
    pub coll: &'a TermAbs,
    /// Abstraction of the spec's outputs.
    pub out: &'a TermAbs,
}

/// One store's slab: abstractions dense-indexed by [`TermId`], valid
/// only for the arena of the store identified by the cache key.
struct Slab {
    slots: Vec<Option<Arc<TermAbs>>>,
    bytes: usize,
    touched: u64,
}

impl Slab {
    fn new() -> Slab {
        Slab {
            slots: Vec::new(),
            bytes: size_of::<Slab>(),
            touched: 0,
        }
    }
}

/// Byte-budgeted cache of [`TermAbs`] keyed by (store key, [`TermId`]).
///
/// Generic over the store key so the search can key by its
/// [`crate::enumerate::StoreKey`] while tests use plain integers. Ids
/// from different stores index different slabs, which keeps the
/// arena-locality contract of [`TermId`] intact.
pub struct AbsCache<K> {
    slabs: HashMap<K, Slab>,
    budget: usize,
    bytes: usize,
    tick: u64,
    /// Lifetime totals.
    hits: u64,
    lookups: u64,
    /// Since the last [`AbsCache::take_hit_pct`] call.
    sweep_hits: u64,
    sweep_lookups: u64,
}

impl<K: Clone + Eq + Hash> AbsCache<K> {
    /// An empty cache that evicts past `budget` estimated bytes.
    pub fn new(budget: usize) -> AbsCache<K> {
        AbsCache {
            slabs: HashMap::new(),
            budget: budget.max(1),
            bytes: 0,
            tick: 0,
            hits: 0,
            lookups: 0,
            sweep_hits: 0,
            sweep_lookups: 0,
        }
    }

    /// The memoized abstraction of term `id` in store `key`, computing
    /// and caching it via `build` on a miss. `build` must derive the
    /// abstraction purely from the term's values; under
    /// `check-invariants` every hit is rebuilt and compared.
    pub fn get_or_insert(
        &mut self,
        key: &K,
        id: TermId,
        build: impl FnOnce() -> TermAbs,
    ) -> Arc<TermAbs> {
        self.lookups += 1;
        self.sweep_lookups += 1;
        self.tick += 1;
        let tick = self.tick;
        let slab = self.slabs.entry(key.clone()).or_insert_with(|| {
            let s = Slab::new();
            self.bytes += s.bytes;
            s
        });
        slab.touched = tick;
        let idx = id.index();
        if idx >= slab.slots.len() {
            let grown = (idx + 1 - slab.slots.len()) * size_of::<Option<Arc<TermAbs>>>();
            slab.slots.resize(idx + 1, None);
            slab.bytes += grown;
            self.bytes += grown;
        }
        if let Some(abs) = &slab.slots[idx] {
            self.hits += 1;
            self.sweep_hits += 1;
            #[cfg(feature = "check-invariants")]
            assert_eq!(
                **abs,
                build(),
                "cached abstraction diverges from a fresh one for term {idx}"
            );
            return Arc::clone(abs);
        }
        let abs = Arc::new(build());
        let cost = abs.approx_bytes();
        slab.bytes += cost;
        self.bytes += cost;
        slab.slots[idx] = Some(Arc::clone(&abs));
        if self.bytes > self.budget {
            self.evict(key);
        }
        abs
    }

    /// Evicts least-recently-touched slabs (never `current`) until the
    /// estimated footprint fits the budget or only `current` remains.
    fn evict(&mut self, current: &K) {
        while self.bytes > self.budget {
            let victim = self
                .slabs
                .iter()
                .filter(|(k, _)| *k != current)
                .min_by_key(|(_, s)| s.touched)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(slab) = self.slabs.remove(&victim) {
                self.bytes -= slab.bytes;
            }
        }
        #[cfg(feature = "check-invariants")]
        {
            let recomputed: usize = self.slabs.values().map(|s| s.bytes).sum();
            assert_eq!(self.bytes, recomputed, "abs-cache byte accounting drifted");
        }
    }

    /// Hit percentage (0–100) over the lookups since the last call,
    /// `None` when there were none — the per-sweep sample recorded into
    /// `SearchMetrics::abs_cache_hit_pct`. Resets the sweep window.
    pub fn take_hit_pct(&mut self) -> Option<u64> {
        let (h, n) = (self.sweep_hits, self.sweep_lookups);
        self.sweep_hits = 0;
        self.sweep_lookups = 0;
        (n > 0).then(|| h * 100 / n)
    }

    /// Lifetime `(hits, lookups)`.
    pub fn totals(&self) -> (u64, u64) {
        (self.hits, self.lookups)
    }

    /// Estimated heap footprint.
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda2_lang::parser::parse_value;
    use lambda2_lang::term::TermArena;
    use lambda2_lang::value::Value;

    fn vals(s: &str) -> Vec<Value> {
        vec![parse_value(s).unwrap()]
    }

    /// Ids can only be minted by an arena; intern increasing literals to
    /// get distinct, dense ids for the cache tests.
    fn ids(n: usize) -> Vec<TermId> {
        let mut arena = TermArena::new();
        (0..n)
            .map(|i| arena.intern(lambda2_lang::term::Node::Lit(Value::Int(i as i64))))
            .collect()
    }

    #[test]
    fn row_abs_counts_lists_only() {
        let r = RowAbs::of_value(&parse_value("[5 7 5]").unwrap());
        assert!(matches!(r.shape, AbsShape::List(_)));
        let c = r.counts.unwrap();
        assert_eq!(c.get(&Value::Int(5)), Some(&2));
        assert_eq!(c.get(&Value::Int(7)), Some(&1));
        let r = RowAbs::of_value(&parse_value("{1 {2}}").unwrap());
        assert!(r.counts.is_none());
        assert!(matches!(r.shape, AbsShape::Tree { .. }));
        assert!(RowAbs::of_value(&Value::Int(3)).counts.is_none());
    }

    #[test]
    fn cache_hits_on_repeat_lookups() {
        let id = ids(1)[0];
        let mut cache: AbsCache<u8> = AbsCache::new(1 << 20);
        let v = vals("[1 2 2]");
        let a = cache.get_or_insert(&0, id, || TermAbs::of_values(&v));
        let b = cache.get_or_insert(&0, id, || TermAbs::of_values(&v));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.totals(), (1, 2));
        // Same id under a different store key is a distinct entry.
        let c = cache.get_or_insert(&1, id, || TermAbs::of_values(&v));
        assert!(!Arc::ptr_eq(&a, &c) && *a == *c);
        assert_eq!(cache.totals(), (1, 3));
    }

    #[test]
    fn sweep_hit_pct_resets_between_takes() {
        let id = ids(1)[0];
        let mut cache: AbsCache<u8> = AbsCache::new(1 << 20);
        assert_eq!(cache.take_hit_pct(), None);
        let v = vals("[1]");
        for _ in 0..4 {
            cache.get_or_insert(&0, id, || TermAbs::of_values(&v));
        }
        assert_eq!(cache.take_hit_pct(), Some(75));
        assert_eq!(cache.take_hit_pct(), None);
    }

    #[test]
    fn eviction_drops_the_coldest_slab_but_never_the_current_one() {
        let id = ids(1)[0];
        // Budget below two slabs' footprint: inserting under a second
        // key must evict the first, and a third insert evicts the
        // second — never the slab being written.
        let v = vals("[1 2 3 4 5 6 7 8]");
        let one = TermAbs::of_values(&v).approx_bytes() + 256;
        let mut cache: AbsCache<u8> = AbsCache::new(one);
        cache.get_or_insert(&0, id, || TermAbs::of_values(&v));
        cache.get_or_insert(&1, id, || TermAbs::of_values(&v));
        // Key 0 was evicted: looking it up again is a miss.
        cache.get_or_insert(&0, id, || TermAbs::of_values(&v));
        assert_eq!(cache.totals(), (0, 3));
        assert!(cache.approx_bytes() <= 2 * one);
    }

    #[test]
    fn budget_never_evicts_the_only_slab() {
        let id = ids(1)[0];
        let mut cache: AbsCache<u8> = AbsCache::new(1);
        let v = vals("[1 2 3]");
        let a = cache.get_or_insert(&0, id, || TermAbs::of_values(&v));
        let b = cache.get_or_insert(&0, id, || TermAbs::of_values(&v));
        assert!(Arc::ptr_eq(&a, &b), "current slab must survive eviction");
    }

    #[test]
    fn term_abs_bytes_grow_with_content() {
        let small = TermAbs::of_values(&vals("[1]"));
        let big = TermAbs::of_values(&vals("[1 2 3 4 5 6 7 8 9]"));
        assert!(big.approx_bytes() > small.approx_bytes());
        assert!(small.approx_bytes() > 0);
    }
}
