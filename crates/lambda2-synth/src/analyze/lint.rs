//! Static checks over `.l2` problem files — the `lambda2 lint` pass.
//!
//! The checks run over a parsed [`ProblemFile`], each with a stable
//! machine-readable code (see [`Code::name`]):
//!
//! * `parse-error` — the file is not structurally a problem (s-expression
//!   errors, unknown sections, or missing `params`/`returns`/`example`
//!   sections).
//! * `type-mismatch` — an example value does not inhabit its declared
//!   parameter or return type, or an example has the wrong arity. Value
//!   types are inferred with [`lambda2_lang::infer`] and unified against
//!   the declared signature.
//! * `contradictory-examples` — two examples agree on every input but
//!   disagree on the output: no *function* satisfies them.
//! * `duplicate-examples` — two examples are byte-identical (inputs *and*
//!   output): the duplicate adds no constraint but costs deduction and
//!   verification work on every row.
//! * `constant-input` — a parameter holds the same value in every example
//!   (with at least two examples): the synthesizer cannot distinguish it
//!   from a constant, so the examples underdetermine its role.
//! * `permutation-conflict` — two examples whose list inputs are
//!   permutations of each other (all other inputs equal) have outputs
//!   that conflict for *any* order-insensitive program (scalar outputs
//!   differ, or list outputs differ as multisets). Advisory: fine if the
//!   target genuinely depends on element order (`reverse`-style outputs,
//!   which permute along with the inputs, are not flagged).
//! * `unsat-abstract` — the collection-growth analysis
//!   ([`reach::refute_example`]) proves no program over the declared
//!   library maps some example's inputs to its output.
//! * `library-shadowed` / `library-unused` — a declared `(library …)`
//!   stanza repeats a binding, or lists an operator/combinator that can
//!   never do non-degenerate work for this signature
//!   ([`reach::unusable_items`]).
//!
//! The library checks only fire when the file declares an explicit
//! `library` stanza: the default library is the paper's fixed vocabulary
//! and deliberately carries operators any single problem leaves unused.

use lambda2_lang::ast::Expr;
use lambda2_lang::infer::{infer, TypeEnv};
use lambda2_lang::ty::{Subst, Type};
use lambda2_lang::value::Value;

use super::reach;
use crate::l2file::{parse_problem_file, ProblemFile};
use crate::obs::json::Json;

/// Stable diagnostic codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Code {
    /// Structurally malformed problem file.
    ParseError,
    /// Example value incompatible with the declared signature.
    TypeMismatch,
    /// Equal inputs mapped to different outputs.
    ContradictoryExamples,
    /// Two examples are identical in inputs and output.
    DuplicateExamples,
    /// A parameter holds the same value in every example.
    ConstantInput,
    /// Permuted list inputs with outputs no order-insensitive program
    /// can produce.
    PermutationConflict,
    /// Abstractly unsatisfiable: no program over the library fits.
    UnsatAbstract,
    /// A library binding is declared more than once.
    LibraryShadowed,
    /// A library binding can never do non-degenerate work.
    LibraryUnused,
}

impl Code {
    /// The machine-readable code string.
    pub fn name(self) -> &'static str {
        match self {
            Code::ParseError => "parse-error",
            Code::TypeMismatch => "type-mismatch",
            Code::ContradictoryExamples => "contradictory-examples",
            Code::DuplicateExamples => "duplicate-examples",
            Code::ConstantInput => "constant-input",
            Code::PermutationConflict => "permutation-conflict",
            Code::UnsatAbstract => "unsat-abstract",
            Code::LibraryShadowed => "library-shadowed",
            Code::LibraryUnused => "library-unused",
        }
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The diagnostic's stable code.
    pub code: Code,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    fn new(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            message: message.into(),
        }
    }

    /// Machine-readable rendering: `{"code": …, "message": …}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("code", Json::str(self.code.name())),
            ("message", Json::str(self.message.clone())),
        ])
    }
}

/// Lints `.l2` source: parse failures yield a single `parse-error`
/// diagnostic; otherwise all checks run over the parsed file. An empty
/// result means the file is clean.
pub fn lint_source(src: &str) -> Vec<Diagnostic> {
    match parse_problem_file(src) {
        Ok(file) => lint_file(&file),
        Err(e) => vec![Diagnostic::new(Code::ParseError, e)],
    }
}

/// Runs every check over an already-parsed file. Diagnostics follow the
/// file's declaration order (checks run in the order documented on the
/// module).
pub fn lint_file(file: &ProblemFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_structure(file, &mut out);
    check_types(file, &mut out);
    check_contradictions(file, &mut out);
    check_duplicates(file, &mut out);
    check_constant_inputs(file, &mut out);
    check_permutation_conflicts(file, &mut out);
    check_unsat(file, &mut out);
    check_library(file, &mut out);
    out
}

/// Missing mandatory sections (the builder would reject these too, but
/// lint reports them uniformly without aborting the other checks).
fn check_structure(file: &ProblemFile, out: &mut Vec<Diagnostic>) {
    if file.params.is_empty() {
        out.push(Diagnostic::new(Code::ParseError, "problem has no `params`"));
    }
    if file.returns.is_none() {
        out.push(Diagnostic::new(
            Code::ParseError,
            "problem has no `returns` section",
        ));
    }
    if file.examples.is_empty() {
        out.push(Diagnostic::new(Code::ParseError, "problem has no examples"));
    }
}

/// Infers the type of a literal example value and unifies it against the
/// declared type. Empty collections infer polymorphically (`[t0]`) and
/// unify with any declared element type.
fn value_fits(value: &Value, declared: &Type) -> bool {
    let mut subst = Subst::new();
    subst.reserve(declared);
    let Ok(inferred) = infer(&Expr::Lit(value.clone()), &TypeEnv::new(), &mut subst) else {
        return false;
    };
    subst.unify(&inferred, declared).is_ok()
}

fn check_types(file: &ProblemFile, out: &mut Vec<Diagnostic>) {
    for (i, (inputs, output)) in file.examples.iter().enumerate() {
        let n = i + 1;
        if inputs.len() != file.params.len() {
            out.push(Diagnostic::new(
                Code::TypeMismatch,
                format!(
                    "example {n} has {} arguments, expected {}",
                    inputs.len(),
                    file.params.len()
                ),
            ));
            continue;
        }
        for (value, (pname, ty)) in inputs.iter().zip(&file.params) {
            if !value_fits(value, ty) {
                out.push(Diagnostic::new(
                    Code::TypeMismatch,
                    format!(
                        "example {n}: argument `{pname}` = `{value}` does not have type `{ty}`"
                    ),
                ));
            }
        }
        if let Some(ret) = &file.returns {
            if !value_fits(output, ret) {
                out.push(Diagnostic::new(
                    Code::TypeMismatch,
                    format!("example {n}: output `{output}` does not have type `{ret}`"),
                ));
            }
        }
    }
}

fn check_contradictions(file: &ProblemFile, out: &mut Vec<Diagnostic>) {
    for (i, (ins_a, out_a)) in file.examples.iter().enumerate() {
        for (j, (ins_b, out_b)) in file.examples.iter().enumerate().skip(i + 1) {
            if ins_a == ins_b && out_a != out_b {
                out.push(Diagnostic::new(
                    Code::ContradictoryExamples,
                    format!(
                        "examples {} and {} have identical inputs but outputs `{out_a}` vs `{out_b}`",
                        i + 1,
                        j + 1
                    ),
                ));
            }
        }
    }
}

/// Byte-identical example rows: redundant, and every search phase pays
/// for the extra row. Each duplicate is reported once, against the first
/// occurrence.
fn check_duplicates(file: &ProblemFile, out: &mut Vec<Diagnostic>) {
    for (j, ex_b) in file.examples.iter().enumerate() {
        if let Some(i) = file.examples[..j].iter().position(|ex_a| ex_a == ex_b) {
            out.push(Diagnostic::new(
                Code::DuplicateExamples,
                format!(
                    "example {} duplicates example {} exactly; it adds no constraint",
                    j + 1,
                    i + 1
                ),
            ));
        }
    }
}

/// A parameter whose value never varies across (two or more) examples is
/// indistinguishable from a literal constant to the synthesizer.
fn check_constant_inputs(file: &ProblemFile, out: &mut Vec<Diagnostic>) {
    if file.examples.len() < 2 {
        return;
    }
    for (p, (pname, _)) in file.params.iter().enumerate() {
        let mut values = file.examples.iter().map(|(ins, _)| ins.get(p));
        let Some(Some(first)) = values.next() else {
            continue; // arity mismatch rows are `type-mismatch`'s problem
        };
        if values.all(|v| v == Some(first)) {
            out.push(Diagnostic::new(
                Code::ConstantInput,
                format!(
                    "parameter `{pname}` is `{first}` in every example; the examples \
                     cannot distinguish it from a constant"
                ),
            ));
        }
    }
}

/// Two values are equal as multisets (same elements, same counts).
fn multiset_eq(a: &[Value], b: &[Value]) -> bool {
    super::domain::value_counts(a) == super::domain::value_counts(b)
}

/// Permuted list inputs whose outputs conflict for every order-insensitive
/// program. Outputs that permute along with the inputs (multiset-equal
/// lists) are consistent with an order-*sensitive* program and also with
/// an order-insensitive one composed with a reordering, so only outputs
/// that differ beyond ordering are flagged — and only as advice.
fn check_permutation_conflicts(file: &ProblemFile, out: &mut Vec<Diagnostic>) {
    let arity = file.params.len();
    for (i, (ins_a, out_a)) in file.examples.iter().enumerate() {
        for (j, (ins_b, out_b)) in file.examples.iter().enumerate().skip(i + 1) {
            if ins_a.len() != arity || ins_b.len() != arity {
                continue;
            }
            let mut permuted = false;
            let comparable = ins_a.iter().zip(ins_b).all(|(a, b)| {
                if a == b {
                    return true;
                }
                match (a.as_list(), b.as_list()) {
                    (Some(xa), Some(xb)) if multiset_eq(xa, xb) => {
                        permuted = true;
                        true
                    }
                    _ => false,
                }
            });
            if !comparable || !permuted {
                continue;
            }
            let conflict = match (out_a.as_list(), out_b.as_list()) {
                (Some(ya), Some(yb)) => !multiset_eq(ya, yb),
                _ => out_a != out_b,
            };
            if conflict {
                out.push(Diagnostic::new(
                    Code::PermutationConflict,
                    format!(
                        "examples {} and {} have permuted list inputs but outputs \
                         `{out_a}` vs `{out_b}`; no order-insensitive program satisfies \
                         both (fine if the target depends on element order)",
                        i + 1,
                        j + 1
                    ),
                ));
            }
        }
    }
}

fn check_unsat(file: &ProblemFile, out: &mut Vec<Diagnostic>) {
    let ops = match &file.library {
        Some(spec) => spec.effective_ops(),
        None => crate::library::Library::default().ops().to_vec(),
    };
    for (i, (inputs, output)) in file.examples.iter().enumerate() {
        if let Some(why) = reach::refute_example(inputs, output, &ops) {
            out.push(Diagnostic::new(
                Code::UnsatAbstract,
                format!("example {}: {why}", i + 1),
            ));
        }
    }
}

fn check_library(file: &ProblemFile, out: &mut Vec<Diagnostic>) {
    let Some(spec) = &file.library else { return };

    let mut shadowed = |names: Vec<&'static str>, kind: &str| {
        let mut seen = Vec::new();
        for name in names {
            if seen.contains(&name) {
                out.push(Diagnostic::new(
                    Code::LibraryShadowed,
                    format!("{kind} `{name}` is declared more than once"),
                ));
                seen.retain(|n| *n != name); // report each duplicate once
            } else {
                seen.push(name);
            }
        }
    };
    if let Some(ops) = &spec.ops {
        shadowed(ops.iter().map(|o| o.name()).collect(), "operator");
    }
    if let Some(combs) = &spec.combs {
        shadowed(combs.iter().map(|c| c.name()).collect(), "combinator");
    }

    let param_tys: Vec<Type> = file.params.iter().map(|(_, t)| t.clone()).collect();
    let (mut dead_ops, mut dead_combs) =
        reach::unusable_items(&param_tys, &spec.effective_ops(), &spec.effective_combs());
    // Only *declared* bindings are the user's to fix; a defaulted sub-list
    // (ops or combs omitted from the stanza) deliberately over-provides.
    if spec.ops.is_none() {
        dead_ops.clear();
    }
    if spec.combs.is_none() {
        dead_combs.clear();
    }
    for op in dead_ops {
        out.push(Diagnostic::new(
            Code::LibraryUnused,
            format!(
                "operator `{}` can never apply to a non-empty value for this signature",
                op.name()
            ),
        ));
    }
    for comb in dead_combs {
        out.push(Diagnostic::new(
            Code::LibraryUnused,
            format!(
                "combinator `{}` can never apply to a non-empty collection for this signature",
                comb.name()
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<&'static str> {
        lint_source(src).iter().map(|d| d.code.name()).collect()
    }

    const CLEAN: &str = "(problem evens (params (l [int])) (returns [int])\
                         (example ([]) []) (example ([1 2]) [2]))";

    #[test]
    fn clean_files_produce_no_diagnostics() {
        assert!(lint_source(CLEAN).is_empty());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert_eq!(codes("(not a problem"), vec!["parse-error"]);
        assert_eq!(codes("(problem p (wat))"), vec!["parse-error"]);
        // Missing sections are structural diagnostics, not hard failures.
        assert_eq!(
            codes("(problem p (params (l [int])) (returns [int]))"),
            vec!["parse-error"]
        );
    }

    #[test]
    fn type_mismatches_are_reported_per_value() {
        let src = "(problem p (params (l [int])) (returns [int])\
                   (example ([true]) []) (example ([1]) 3))";
        let diags = lint_source(src);
        assert_eq!(
            diags.iter().map(|d| d.code).collect::<Vec<_>>(),
            vec![Code::TypeMismatch, Code::TypeMismatch]
        );
        assert!(diags[0].message.contains("argument `l`"));
        assert!(diags[1].message.contains("output `3`"));
    }

    #[test]
    fn empty_collections_satisfy_any_element_type() {
        let src = "(problem p (params (l [[int]]) (t (tree bool))) (returns [int])\
                   (example ([[]] {}) []))";
        assert!(lint_source(src).is_empty());
    }

    #[test]
    fn arity_mismatch_is_a_type_diagnostic() {
        let src = "(problem p (params (a int) (b int)) (returns int)\
                   (example (1) 2))";
        assert_eq!(codes(src), vec!["type-mismatch"]);
    }

    #[test]
    fn contradictory_examples_are_reported() {
        // (The unvarying `l` also legitimately draws `constant-input`.)
        let src = "(problem p (params (l [int])) (returns int)\
                   (example ([1 2]) 1) (example ([1 2]) 2))";
        let diags = lint_source(src);
        assert_eq!(codes(src), vec!["contradictory-examples", "constant-input"]);
        assert!(diags[0].message.contains("examples 1 and 2"));
        // Equal inputs with equal outputs are redundant, not contradictory
        // — the duplicate-examples check owns that case.
        let src = "(problem p (params (l [int])) (returns int)\
                   (example ([1 2]) 1) (example ([1 2]) 1))";
        assert_eq!(codes(src), vec!["duplicate-examples", "constant-input"]);
    }

    #[test]
    fn duplicate_examples_are_reported_once_per_duplicate() {
        let src = "(problem p (params (l [int])) (returns int)\
                   (example ([1]) 1) (example ([2]) 2) (example ([1]) 1) (example ([1]) 1))";
        let diags = lint_source(src);
        assert_eq!(
            diags.iter().map(|d| d.code).collect::<Vec<_>>(),
            vec![Code::DuplicateExamples, Code::DuplicateExamples]
        );
        // Both duplicates point at the first occurrence.
        assert!(diags[0].message.contains("example 3 duplicates example 1"));
        assert!(diags[1].message.contains("example 4 duplicates example 1"));
    }

    #[test]
    fn constant_inputs_are_reported() {
        let src = "(problem p (params (l [int]) (n int)) (returns int)\
                   (example ([1 2] 7) 1) (example ([3] 7) 3))";
        let diags = lint_source(src);
        assert_eq!(codes(src), vec!["constant-input"]);
        assert!(diags[0].message.contains("parameter `n`"));
        assert!(diags[0].message.contains("`7`"));
        // A single example cannot establish constancy.
        let src = "(problem p (params (n int)) (returns int) (example (7) 7))";
        assert!(lint_source(src).is_empty());
        // A varying parameter is clean.
        let src = "(problem p (params (n int)) (returns int)\
                   (example (7) 7) (example (8) 8))";
        assert!(lint_source(src).is_empty());
    }

    #[test]
    fn permutation_conflicts_are_reported() {
        // Scalar outputs that differ on permuted inputs: no
        // order-insensitive program (sum, max, …) satisfies both.
        let src = "(problem p (params (l [int])) (returns int)\
                   (example ([1 2]) 3) (example ([2 1]) 4))";
        let diags = lint_source(src);
        assert_eq!(codes(src), vec!["permutation-conflict"]);
        assert!(diags[0].message.contains("examples 1 and 2"));
        // `reverse`-style outputs permute along with the inputs: clean.
        let src = "(problem p (params (l [int])) (returns [int])\
                   (example ([1 2]) [2 1]) (example ([2 1]) [1 2]))";
        assert!(lint_source(src).is_empty());
        // A second non-list parameter that differs suppresses the check
        // (the rows are not a pure permutation of one another).
        let src = "(problem p (params (l [int]) (n int)) (returns int)\
                   (example ([1 2] 0) 3) (example ([2 1] 1) 4))";
        assert!(lint_source(src).is_empty());
        // List outputs differing as multisets on permuted inputs: flagged.
        let src = "(problem p (params (l [int])) (returns [int])\
                   (example ([1 2]) [1]) (example ([2 1]) [2 2]))";
        assert_eq!(codes(src), vec!["permutation-conflict"]);
    }

    #[test]
    fn abstractly_unsatisfiable_specs_are_reported() {
        // Without cons/cat no program can lengthen a list.
        let src = "(problem p (params (l [int])) (returns [int])\
                   (example ([1 2]) [1 2 3])\
                   (library (ops car cdr +)))";
        let diags = lint_source(src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::UnsatAbstract);
        assert!(diags[0].message.contains("example 1"));
        // The default library can grow lists: same example, no stanza.
        let src = "(problem p (params (l [int])) (returns [int])\
                   (example ([1 2]) [1 2 3]))";
        assert!(lint_source(src).is_empty());
    }

    #[test]
    fn shadowed_and_unused_library_bindings() {
        let src = "(problem p (params (l [int])) (returns [int])\
                   (example ([1]) [1])\
                   (library (ops car car cons value)))";
        let got = codes(src);
        assert_eq!(got, vec!["library-shadowed", "library-unused"]);
        // `value` consumes trees; nothing inhabits them here.
        let diags = lint_source(src);
        assert!(diags[0].message.contains("`car`"));
        assert!(diags[1].message.contains("`value`"));
    }

    #[test]
    fn diagnostics_render_as_json() {
        let d = Diagnostic::new(Code::UnsatAbstract, "why");
        let j = d.to_json();
        assert_eq!(j.get("code").unwrap().as_str(), Some("unsat-abstract"));
        assert_eq!(j.get("message").unwrap().as_str(), Some("why"));
    }

    #[test]
    fn committed_problem_files_lint_clean() {
        // Guards the acceptance criterion directly at the unit level; the
        // CI job re-checks via the CLI.
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../problems");
        let mut checked = 0;
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "l2") {
                let src = std::fs::read_to_string(&path).unwrap();
                assert!(lint_source(&src).is_empty(), "{path:?} has diagnostics");
                checked += 1;
            }
        }
        assert!(checked >= 2, "expected committed .l2 files");
    }
}
