//! Reachability analyses over whole problems (the lint side of the
//! framework).
//!
//! Two analyses, both parameterized by the problem's library:
//!
//! * **Collection-growth analysis** ([`refute_example`]): classifies every
//!   operator as *growing* (can produce a collection strictly larger than
//!   any argument) or not. When a library has no growing operator for a
//!   constructor, the size of every reachable collection is bounded by the
//!   joined size interval of the inputs — all seven combinators preserve
//!   or shrink collection sizes — so an example whose output exceeds the
//!   bound is satisfiable by *no* program over that library.
//! * **Producibility analysis** ([`unusable_items`]): a fixpoint over the
//!   type constructors `{list, tree, pair}` computing which can ever be
//!   *inhabited* (hold at least one element) given the parameter types and
//!   the library; operators and combinators that only consume uninhabited
//!   constructors can never do non-degenerate work and are reported as
//!   unused bindings.

use lambda2_lang::ast::{Comb, Op};
use lambda2_lang::ty::Type;
use lambda2_lang::value::Value;

use super::domain::Interval;

/// `true` when the operator can yield a *list* strictly longer than any of
/// its list arguments.
pub fn op_grows_lists(op: Op) -> bool {
    matches!(op, Op::Cons | Op::Cat)
}

/// `true` when the operator can yield a *tree* strictly larger than any of
/// its tree arguments.
pub fn op_grows_trees(op: Op) -> bool {
    matches!(op, Op::TreeMake)
}

/// Records the largest nested list length and tree node count in `v`.
fn scan_sizes(v: &Value, max_list: &mut u64, max_tree: &mut u64) {
    match v {
        Value::List(xs) => {
            *max_list = (*max_list).max(xs.len() as u64);
            for x in xs.iter() {
                scan_sizes(x, max_list, max_tree);
            }
        }
        Value::Tree(t) => {
            *max_tree = (*max_tree).max(t.size() as u64);
            for x in t.values() {
                scan_sizes(x, max_list, max_tree);
            }
        }
        Value::Pair(p) => {
            scan_sizes(&p.0, max_list, max_tree);
            scan_sizes(&p.1, max_list, max_tree);
        }
        _ => {}
    }
}

/// The `[0, max]` size intervals — (lists, trees) — of every collection
/// reachable from `values` under a non-growing library. Tree node counts
/// feed the list bound as well: `tree_children` yields lists of at most
/// `size - 1` subtrees.
pub fn collection_bounds(values: &[Value]) -> (Interval, Interval) {
    let (mut max_list, mut max_tree) = (0, 0);
    for v in values {
        scan_sizes(v, &mut max_list, &mut max_tree);
    }
    (
        Interval::at_most(max_list.max(max_tree)),
        Interval::at_most(max_tree),
    )
}

/// Refutes one example against the growth analysis: returns a
/// human-readable explanation when **no** program over `ops` (with any
/// combinators) can map `inputs` to `output`, or `None` when the analysis
/// cannot decide. Sound, not complete: a `None` says nothing.
pub fn refute_example(inputs: &[Value], output: &Value, ops: &[Op]) -> Option<String> {
    let (list_bound, tree_bound) = collection_bounds(inputs);
    let (mut out_list, mut out_tree) = (0, 0);
    scan_sizes(output, &mut out_list, &mut out_tree);
    if !ops.iter().copied().any(op_grows_lists) && !list_bound.contains(out_list) {
        return Some(format!(
            "output requires a list of length {out_list}, but the library has no \
             list-growing operator (cons, cat) and no input collection exceeds \
             size {}",
            list_bound.hi.unwrap_or(0)
        ));
    }
    if !ops.iter().copied().any(op_grows_trees) && !tree_bound.contains(out_tree) {
        return Some(format!(
            "output requires a tree of {out_tree} nodes, but the library has no \
             tree-growing operator (tree) and no input tree exceeds \
             {} nodes",
            tree_bound.hi.unwrap_or(0)
        ));
    }
    None
}

/// Which type constructors can be inhabited (hold at least one element).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Inhabited {
    list: bool,
    tree: bool,
    pair: bool,
}

/// Marks every constructor mentioned (at any nesting depth) in `ty`.
fn scan_type(ty: &Type, p: &mut Inhabited) {
    match ty {
        Type::Int | Type::Bool | Type::Var(_) => {}
        Type::List(t) => {
            p.list = true;
            scan_type(t, p);
        }
        Type::Tree(t) => {
            p.tree = true;
            scan_type(t, p);
        }
        Type::Pair(a, b) => {
            p.pair = true;
            scan_type(a, p);
            scan_type(b, p);
        }
        Type::Fun(ps, r) => {
            for t in ps.iter() {
                scan_type(t, p);
            }
            scan_type(r, p);
        }
    }
}

/// Fixpoint: constructors inhabited by the parameters, closed under the
/// library's constructor operators (`cons` inhabits lists, `tree` inhabits
/// trees, `pair` inhabits pairs, and `children` of an inhabited tree
/// inhabits lists).
fn inhabited(param_tys: &[Type], ops: &[Op]) -> Inhabited {
    let mut p = Inhabited::default();
    for ty in param_tys {
        scan_type(ty, &mut p);
    }
    loop {
        let before = p;
        for op in ops {
            match op {
                Op::Cons => p.list = true,
                Op::TreeMake => p.tree = true,
                Op::MkPair => p.pair = true,
                Op::TreeChildren if p.tree => p.list = true,
                _ => {}
            }
        }
        if p == before {
            return p;
        }
    }
}

/// The constructor an operator *consumes* — i.e. needs an inhabited value
/// of for any non-degenerate application. Constructor operators (`cons`,
/// `cat`, `tree`, `pair`) are producers: the empty collection suffices as
/// their argument, so they consume nothing.
fn op_consumes(op: Op) -> Option<Consumes> {
    match op {
        Op::Car | Op::Cdr | Op::Last | Op::IsEmpty | Op::Member => Some(Consumes::List),
        Op::TreeValue | Op::TreeChildren | Op::IsEmptyTree | Op::IsLeaf => Some(Consumes::Tree),
        Op::Fst | Op::Snd => Some(Consumes::Pair),
        _ => None,
    }
}

#[derive(Clone, Copy)]
enum Consumes {
    List,
    Tree,
    Pair,
}

/// Reports the library entries that can never do non-degenerate work for a
/// problem with the given parameter types: operators/combinators consuming
/// a constructor no input or library operator can inhabit (e.g. tree
/// operators in an all-list problem). Order follows the input slices.
pub fn unusable_items(param_tys: &[Type], ops: &[Op], combs: &[Comb]) -> (Vec<Op>, Vec<Comb>) {
    let p = inhabited(param_tys, ops);
    let dead = |c: Consumes| match c {
        Consumes::List => !p.list,
        Consumes::Tree => !p.tree,
        Consumes::Pair => !p.pair,
    };
    let dead_ops = ops
        .iter()
        .copied()
        .filter(|&op| op_consumes(op).is_some_and(dead))
        .collect();
    let dead_combs = combs
        .iter()
        .copied()
        .filter(|&comb| {
            dead(match comb {
                Comb::Map | Comb::Filter | Comb::Foldl | Comb::Foldr | Comb::Recl => Consumes::List,
                Comb::Mapt | Comb::Foldt => Consumes::Tree,
            })
        })
        .collect();
    (dead_ops, dead_combs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda2_lang::parser::parse_value;

    fn v(s: &str) -> Value {
        parse_value(s).unwrap()
    }

    #[test]
    fn growth_classification_covers_the_constructors() {
        assert!(op_grows_lists(Op::Cons) && op_grows_lists(Op::Cat));
        assert!(op_grows_trees(Op::TreeMake));
        for op in [Op::Car, Op::Cdr, Op::Add, Op::MkPair, Op::TreeChildren] {
            assert!(!op_grows_lists(op) && !op_grows_trees(op), "{op:?}");
        }
    }

    #[test]
    fn bounds_scan_nested_collections() {
        let (lists, trees) = collection_bounds(&[v("[[1 2 3] [4]]"), v("{1 {2} {3}}")]);
        // Joint list bound: the longest nested list has 3 elements and the
        // tree has 3 nodes.
        assert_eq!(lists, Interval::at_most(3));
        assert_eq!(trees, Interval::at_most(3));
    }

    #[test]
    fn refutes_long_outputs_without_growing_ops() {
        let ops = [Op::Car, Op::Cdr, Op::Add];
        let why = refute_example(&[v("[1 2]")], &v("[1 2 3]"), &ops);
        assert!(why.unwrap().contains("length 3"));
        // With cons in the library the bound is gone.
        let ops = [Op::Cons, Op::Car];
        assert!(refute_example(&[v("[1 2]")], &v("[1 2 3]"), &ops).is_none());
        // Shrinking outputs are never refuted.
        let ops = [Op::Cdr];
        assert!(refute_example(&[v("[1 2]")], &v("[2]"), &ops).is_none());
    }

    #[test]
    fn refutes_tree_outputs_without_tree_constructors() {
        let ops = [Op::Cons, Op::Cat, Op::Add];
        let why = refute_example(&[v("[1 2]")], &v("{1}"), &ops);
        assert!(why.unwrap().contains("tree"));
        let ops = [Op::TreeMake];
        assert!(refute_example(&[v("[1 2]")], &v("{1}"), &ops).is_none());
    }

    #[test]
    fn unusable_tree_ops_in_a_list_problem() {
        let params = [Type::list(Type::Int)];
        let ops = [Op::Car, Op::TreeValue, Op::IsLeaf, Op::Add];
        let combs = [Comb::Map, Comb::Foldt];
        let (dead_ops, dead_combs) = unusable_items(&params, &ops, &combs);
        assert_eq!(dead_ops, vec![Op::TreeValue, Op::IsLeaf]);
        assert_eq!(dead_combs, vec![Comb::Foldt]);
    }

    #[test]
    fn constructor_ops_inhabit_their_constructors() {
        // `tree` makes trees inhabited, which transitively revives the
        // tree consumers and (via children) list consumers.
        let params = [Type::Int];
        let ops = [Op::TreeMake, Op::TreeChildren, Op::TreeValue, Op::Car];
        let (dead_ops, dead_combs) = unusable_items(&params, &ops, &[Comb::Mapt, Comb::Map]);
        assert!(dead_ops.is_empty(), "{dead_ops:?}");
        assert!(dead_combs.is_empty());
        // Without the constructor everything collection-shaped is dead.
        let ops = [Op::TreeChildren, Op::TreeValue, Op::Car];
        let (dead_ops, dead_combs) = unusable_items(&params, &ops, &[Comb::Mapt, Comb::Map]);
        assert_eq!(dead_ops, vec![Op::TreeChildren, Op::TreeValue, Op::Car]);
        assert_eq!(dead_combs, vec![Comb::Mapt, Comb::Map]);
    }

    #[test]
    fn pair_consumers_need_mkpair_or_pair_params() {
        let (dead, _) = unusable_items(&[Type::Int], &[Op::Fst, Op::Snd], &[]);
        assert_eq!(dead, vec![Op::Fst, Op::Snd]);
        let (dead, _) = unusable_items(&[Type::Int], &[Op::MkPair, Op::Fst], &[]);
        assert!(dead.is_empty());
        let (dead, _) = unusable_items(
            &[Type::pair(Type::Int, Type::Bool)],
            &[Op::Fst, Op::Snd],
            &[],
        );
        assert!(dead.is_empty());
    }
}
