//! Abstract-interpretation refutation engine.
//!
//! λ²'s deduction rules ([`crate::deduce`]) are small static analyses in
//! disguise: each refutes a combinator hypothesis from example shapes
//! without enumerating its holes. This module makes the analysis explicit
//! and reusable. It abstracts example values into composable domains
//! ([`domain`]) — length/size intervals, element provenance, ordering —
//! and runs one transfer function per combinator ([`refute_expansion`])
//! as a *pre-enumeration refuter* in the search loop, before deduction.
//! The same framework powers the `lambda2 lint` static checker via
//! whole-problem reachability analyses ([`reach`]) and the diagnostic
//! pass ([`lint`]).
//!
//! # Two tiers: attribution domains and pruning domains
//!
//! Every domain is a *sound* refuter — a refuted hypothesis provably has
//! no completion satisfying the examples — but domains differ in how they
//! relate to deduction, and the search accounts for them separately:
//!
//! * **Attribution tier** ([`Tier::Attribution`]): the check is strictly
//!   implied by the refutation condition of the corresponding deduction
//!   rule. Toggling these never changes which expansions the search
//!   plans — only the accounting moves (refutations land in
//!   `stats.static_refutations` instead of `stats.refuted`, and planning
//!   skips the row-decomposition work of the full rules).
//! * **Pruning tier** ([`Tier::Pruning`]): the check refutes hypotheses
//!   deduction would *keep*, so it removes real search work. These run
//!   only under `SearchOptions::static_prune` and are counted in
//!   `stats.pruned_refutations`.
//!
//! | combinator | analyzer check (domain, tier) | deduction rule condition |
//! |---|---|---|
//! | `map` | in/out are lists (shape); equal lengths (length); equal elements map equally within a row (congruence) | same checks — pointwise conflicts within one row surface as functional conflicts |
//! | `filter` | lists (shape); out ≤ in (length); multiset ⊆ (provenance); subsequence (order); **all-or-none multiplicity (cardinality, pruning)** | `is_subsequence` — deduction deliberately skips partially-kept duplicates |
//! | `foldl`/`foldr`/`recl` | colls are lists (shape); empty-coll row = init (init) | same checks, plus chain-row conflicts |
//! | `mapt` | trees (shape); equal size+height (length); equal shape (shape); node congruence (congruence) | `same_shape` + pointwise conflicts |
//! | `foldt` | colls are trees (shape); empty-tree row = init (init) | same checks, plus child-chain conflicts |
//!
//! **Why cardinality is sound for `filter`:** within one example row the
//! predicate closes over a fixed environment, so equal input elements
//! receive the same verdict — a filter output keeps either *all* or
//! *none* of the occurrences of each distinct value. Moreover the
//! condition is *complete* for filter refutation: an output that is a
//! subsequence of the input with all-or-none multiplicity equals
//! `filter_K(input)` for the kept-value set `K = {v : count_out(v) > 0}`,
//! and conversely every predicate induces such a `K`. Deduction's
//! `deduce_filter` explicitly skips rows with partially-kept duplicates
//! ("ambiguous under duplicates"), which is exactly the gap this domain
//! closes.
//!
//! **Why congruence stays attribution-tier:** a `map`/`mapt` row whose
//! collection contains equal elements mapped to different outputs also
//! produces conflicting pointwise sub-spec rows, which
//! `spec_or_refute` in deduction refutes. Cross-row linking would be
//! unsound (different rows bind different environments), and the
//! analyzer never attempts it.
//!
//! The `check-invariants` cargo feature re-proves every static
//! refutation at the refutation site: attribution-tier verdicts by
//! re-running deduction, pruning-tier verdicts by the bounded
//! brute-force [`oracle`] (deduction is strictly weaker there). The
//! soundness differential suite (`tests/static_analysis.rs`) checks the
//! end-to-end identity — byte-identical programs and costs with pruning
//! on/off while `enumerated_terms` only drops — plus, by bounded brute
//! force, that refuted hypotheses really have no consistent completion.
//!
//! Folds admit no additional sound refutations beyond the init check:
//! the step function sees the binder environment (including the whole
//! collection variable), so any relation between rows can be broken by a
//! body that inspects it.

pub mod cache;
pub mod domain;
pub mod lint;
pub mod oracle;
pub mod reach;
mod transfer;

pub use cache::{AbsArgs, AbsCache, TermAbs};
pub use transfer::{refute_expansion, refute_expansion_abs, refute_expansion_tiered};

/// Result of statically analyzing a hypothesis against its examples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// No completion of the hypothesis can satisfy the examples; the
    /// domain that proved it is attached.
    Refuted(RefuteDomain),
    /// The analysis cannot decide; enumeration/deduction must proceed.
    Unknown,
}

/// The abstract domain that proved a refutation — the *weakest* one that
/// sufficed, when several apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefuteDomain {
    /// Value-constructor mismatch (expected a list/tree, found otherwise,
    /// or mismatched tree shapes).
    Shape,
    /// List-length / tree-size interval mismatch.
    Length,
    /// Output elements not drawn from the input collection's multiset.
    Provenance,
    /// Output elements reordered relative to the input collection.
    Order,
    /// A fold's empty-collection row disagrees with its initial value.
    Init,
    /// A `filter` output keeping some but not all occurrences of a value
    /// — impossible because a predicate gives equal elements the same
    /// verdict within a row. Pruning tier: refutes where deduction can't.
    Cardinality,
    /// Equal elements within one `map`/`mapt` row mapped to different
    /// outputs — the hole is a function of the element alone.
    Congruence,
}

/// Which accounting tier a refutation domain belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Strictly implied by deduction: toggling never changes the planned
    /// expansion set, only where the refutation is counted.
    Attribution,
    /// Strictly stronger than deduction: removes real search work, runs
    /// only under `SearchOptions::static_prune`.
    Pruning,
}

/// The coarse-to-fine domain order shared by the transfer functions and
/// reporting: when several domains refute the same hypothesis, the
/// *earliest* entry here is the one reported — the weakest sufficient
/// evidence. The transfer dispatch iterates this table directly, so the
/// order is enforced by construction, not convention. Length precedes
/// Shape because size/height *intervals* are coarser evidence than exact
/// constructor/shape equality (the two never compete on lists: a length
/// comparison presupposes both sides are lists).
pub const DOMAIN_ORDER: [RefuteDomain; 7] = [
    RefuteDomain::Length,
    RefuteDomain::Shape,
    RefuteDomain::Provenance,
    RefuteDomain::Order,
    RefuteDomain::Init,
    RefuteDomain::Cardinality,
    RefuteDomain::Congruence,
];

impl RefuteDomain {
    /// Stable machine-readable name, used in trace events and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            RefuteDomain::Shape => "shape",
            RefuteDomain::Length => "length",
            RefuteDomain::Provenance => "provenance",
            RefuteDomain::Order => "order",
            RefuteDomain::Init => "init",
            RefuteDomain::Cardinality => "cardinality",
            RefuteDomain::Congruence => "congruence",
        }
    }

    /// The accounting tier: attribution domains are implied by deduction,
    /// pruning domains refute where deduction can't.
    pub fn tier(self) -> Tier {
        match self {
            RefuteDomain::Cardinality => Tier::Pruning,
            RefuteDomain::Shape
            | RefuteDomain::Length
            | RefuteDomain::Provenance
            | RefuteDomain::Order
            | RefuteDomain::Init
            | RefuteDomain::Congruence => Tier::Attribution,
        }
    }

    /// Position in [`DOMAIN_ORDER`] (0-based): lower = coarser evidence.
    pub fn order_index(self) -> usize {
        DOMAIN_ORDER
            .iter()
            .position(|d| *d == self)
            .expect("every domain appears in DOMAIN_ORDER")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_names_are_stable() {
        let names: Vec<_> = DOMAIN_ORDER.iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec![
                "length",
                "shape",
                "provenance",
                "order",
                "init",
                "cardinality",
                "congruence"
            ]
        );
        // Names are distinct (they key trace events and bench columns).
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), DOMAIN_ORDER.len());
    }

    #[test]
    fn domain_order_is_total_and_indexable() {
        for (i, d) in DOMAIN_ORDER.iter().enumerate() {
            assert_eq!(d.order_index(), i);
        }
    }

    #[test]
    fn only_cardinality_is_pruning_tier() {
        for d in DOMAIN_ORDER {
            let expect = if d == RefuteDomain::Cardinality {
                Tier::Pruning
            } else {
                Tier::Attribution
            };
            assert_eq!(d.tier(), expect, "{}", d.name());
        }
    }
}
