//! Abstract-interpretation refutation engine.
//!
//! λ²'s deduction rules ([`crate::deduce`]) are small static analyses in
//! disguise: each refutes a combinator hypothesis from example shapes
//! without enumerating its holes. This module makes the analysis explicit
//! and reusable. It abstracts example values into composable domains
//! ([`domain`]) — length/size intervals, element provenance, ordering —
//! and runs one transfer function per combinator ([`refute_expansion`])
//! as a *pre-enumeration refuter* in the search loop, before deduction.
//! The same framework powers the `lambda2 lint` static checker via
//! whole-problem reachability analyses ([`reach`]) and the diagnostic
//! pass ([`lint`]).
//!
//! # Soundness: every static refutation is a deduction refutation
//!
//! Each transfer-function check is a necessary condition for the
//! hypothesis to be satisfiable, chosen so that it is **strictly implied**
//! by the refutation condition of the corresponding deduction rule:
//!
//! | combinator | analyzer check (domain) | deduction rule condition |
//! |---|---|---|
//! | `map` | in/out are lists (shape); equal lengths (length) | same checks, plus pointwise functional conflicts |
//! | `filter` | lists (shape); out ≤ in (length); multiset ⊆ (provenance); subsequence (order) | `is_subsequence`, which implies all four |
//! | `foldl`/`foldr`/`recl` | colls are lists (shape); empty-coll row = init (init) | same checks, plus chain-row conflicts |
//! | `mapt` | trees (shape); equal size+height (length); equal shape (shape) | `same_shape`, which implies size/height equality |
//! | `foldt` | colls are trees (shape); empty-tree row = init (init) | same checks, plus child-chain conflicts |
//!
//! Consequently the analyzer never refutes a hypothesis deduction would
//! keep: with the analyzer on or off, the search plans the *identical*
//! set of expansions and synthesizes byte-identical programs at identical
//! cost — only the accounting moves (refutations land in
//! `stats.static_refutations` instead of `stats.refuted`, and planning
//! skips the row-decomposition work of the full rules). The
//! `check-invariants` cargo feature asserts the implication at runtime by
//! re-running deduction on every statically refuted hypothesis, and the
//! soundness differential suite (`tests/static_analysis.rs`) checks the
//! end-to-end identity plus, by bounded brute force, that refuted
//! hypotheses really have no consistent completion.
//!
//! The analyzer is deliberately *incomplete*: conflicts requiring row
//! decomposition (e.g. one `map` row sending equal elements to different
//! outputs) are left for deduction, which needs the decomposition anyway
//! to infer sub-specs.

pub mod domain;
pub mod lint;
pub mod reach;
mod transfer;

pub use transfer::refute_expansion;

/// Result of statically analyzing a hypothesis against its examples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// No completion of the hypothesis can satisfy the examples; the
    /// domain that proved it is attached.
    Refuted(RefuteDomain),
    /// The analysis cannot decide; enumeration/deduction must proceed.
    Unknown,
}

/// The abstract domain that proved a refutation — the *weakest* one that
/// sufficed, when several apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefuteDomain {
    /// Value-constructor mismatch (expected a list/tree, found otherwise,
    /// or mismatched tree shapes).
    Shape,
    /// List-length / tree-size interval mismatch.
    Length,
    /// Output elements not drawn from the input collection's multiset.
    Provenance,
    /// Output elements reordered relative to the input collection.
    Order,
    /// A fold's empty-collection row disagrees with its initial value.
    Init,
}

impl RefuteDomain {
    /// Stable machine-readable name, used in trace events and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            RefuteDomain::Shape => "shape",
            RefuteDomain::Length => "length",
            RefuteDomain::Provenance => "provenance",
            RefuteDomain::Order => "order",
            RefuteDomain::Init => "init",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_names_are_stable() {
        let all = [
            RefuteDomain::Shape,
            RefuteDomain::Length,
            RefuteDomain::Provenance,
            RefuteDomain::Order,
            RefuteDomain::Init,
        ];
        let names: Vec<_> = all.iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec!["shape", "length", "provenance", "order", "init"]
        );
        // Names are distinct (they key trace events and bench columns).
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len());
    }
}
