//! Bounded brute-force re-proof oracle for pruning-tier refutations.
//!
//! Attribution-tier static refutations are re-proved (under
//! `check-invariants`) by re-running deduction; pruning-tier refutations
//! cannot be — deduction is strictly weaker there by design. This module
//! supplies the replacement: an *exact, library-independent* semantic
//! check that no completion of the hypothesis exists.
//!
//! For `filter` the check rests on a completeness fact: within one
//! example row the predicate closes over a fixed environment, so it acts
//! as a characteristic function of a **kept-value set** `K` over the
//! collection's distinct values — `filter p xs = [x ∈ xs | x ∈ K]`.
//! Conversely any `K` is realized by *some* predicate (semantically; the
//! component library only shrinks the realizable set). Hence a row has a
//! consistent completion iff some `K ⊆ distinct(xs)` reproduces the
//! output, and sweeping all `2^d` subsets is an exact oracle, not a
//! heuristic. For `d` beyond [`SUBSET_SWEEP_LIMIT`] the oracle tests the
//! single canonical candidate `K = values(output)` — also exact, since
//! if any `K` works then the canonical one does (every kept value's
//! occurrences appear in the output, so filtering by exactly the output's
//! values reproduces it).

use std::collections::HashSet;

use lambda2_lang::ast::Comb;
use lambda2_lang::value::Value;

use super::{RefuteDomain, Tier};
use crate::spec::ExampleRow;

/// Largest distinct-value count for which the oracle sweeps every kept
/// subset; above this it switches to the (equally exact) canonical
/// candidate.
pub const SUBSET_SWEEP_LIMIT: usize = 12;

/// `true` when some example row provably admits *no* filter completion:
/// no kept-value set over the row's collection reproduces the output.
/// Rows whose collection or output is not a list are skipped (the shape
/// domain owns those).
pub fn no_filter_completion(rows: &[ExampleRow], coll: &[Value]) -> bool {
    rows.iter()
        .zip(coll)
        .any(|(row, cv)| match (cv.as_list(), row.output.as_list()) {
            (Some(xs), Some(ys)) => !row_has_kept_set(xs, ys),
            _ => false,
        })
}

/// Whether some kept-value set `K` satisfies `filter_K(xs) == ys`.
fn row_has_kept_set(xs: &[Value], ys: &[Value]) -> bool {
    let mut distinct: Vec<&Value> = Vec::new();
    for v in xs {
        if !distinct.contains(&v) {
            distinct.push(v);
        }
    }
    if distinct.len() > SUBSET_SWEEP_LIMIT {
        let canonical: HashSet<&Value> = ys.iter().collect();
        return filter_matches(xs, &canonical, ys);
    }
    (0u64..1 << distinct.len()).any(|mask| {
        let kept: HashSet<&Value> = distinct
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, v)| *v)
            .collect();
        filter_matches(xs, &kept, ys)
    })
}

fn filter_matches(xs: &[Value], kept: &HashSet<&Value>, ys: &[Value]) -> bool {
    let filtered: Vec<&Value> = xs.iter().filter(|v| kept.contains(v)).collect();
    filtered.len() == ys.len() && filtered.iter().zip(ys).all(|(a, b)| *a == b)
}

/// Re-proves a pruning-tier refutation at its site: `true` when the
/// bounded brute-force oracle confirms no completion exists. Panics on
/// attribution-tier domains — those are re-proved by deduction instead.
pub fn reprove_pruned(
    comb: Comb,
    domain: RefuteDomain,
    rows: &[ExampleRow],
    coll: &[Value],
) -> bool {
    assert_eq!(
        domain.tier(),
        Tier::Pruning,
        "attribution-tier {} refutations are re-proved by deduction",
        domain.name()
    );
    match (comb, domain) {
        (Comb::Filter, RefuteDomain::Cardinality) => no_filter_completion(rows, coll),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deduce::testutil::rows_on_var;

    fn rows(pairs: &[(&str, &str)]) -> (Vec<ExampleRow>, Vec<Value>) {
        let (rows, coll) = rows_on_var("l", pairs);
        (rows, coll.values)
    }

    #[test]
    fn partially_kept_duplicates_have_no_completion() {
        let (r, c) = rows(&[("[5 7 5]", "[5]")]);
        assert!(no_filter_completion(&r, &c));
        let (r, c) = rows(&[("[8 3 8]", "[8 3]")]);
        assert!(no_filter_completion(&r, &c));
        // Even when another row is fine.
        let (r, c) = rows(&[("[1 2]", "[2]"), ("[5 7 5]", "[5]")]);
        assert!(no_filter_completion(&r, &c));
    }

    #[test]
    fn realizable_rows_have_completions() {
        for (input, output) in [
            ("[5 7 5]", "[5 5]"),
            ("[5 7 5]", "[7]"),
            ("[5 7 5]", "[]"),
            ("[5 7 5]", "[5 7 5]"),
            ("[1 2 3]", "[1 3]"),
            ("[]", "[]"),
        ] {
            let (r, c) = rows(&[(input, output)]);
            assert!(
                !no_filter_completion(&r, &c),
                "{input} -> {output} is realizable by a kept set"
            );
        }
    }

    #[test]
    fn non_subset_outputs_are_refuted_by_the_oracle_too() {
        // The oracle is complete for filter, so it also re-proves what
        // the coarser domains catch (foreign values, reorderings).
        for (input, output) in [("[1 2]", "[3]"), ("[1 2]", "[2 1]"), ("[1 2]", "[1 2 3]")] {
            let (r, c) = rows(&[(input, output)]);
            assert!(no_filter_completion(&r, &c), "{input} -> {output}");
        }
    }

    #[test]
    fn wide_rows_fall_back_to_the_canonical_candidate() {
        // 13 distinct values: beyond the sweep limit. Keep-all works.
        let input = "[1 2 3 4 5 6 7 8 9 10 11 12 13]";
        let (r, c) = rows(&[(input, input)]);
        assert!(!no_filter_completion(&r, &c));
        // Partially-kept duplicate among 13 distinct values: refuted.
        let (r, c) = rows(&[(
            "[1 2 3 4 5 6 7 8 9 10 11 12 13 1]",
            "[1 2 3 4 5 6 7 8 9 10 11 12 13]",
        )]);
        assert!(no_filter_completion(&r, &c));
    }

    #[test]
    fn reprove_dispatches_on_domain() {
        let (r, c) = rows(&[("[5 7 5]", "[5]")]);
        assert!(reprove_pruned(
            Comb::Filter,
            RefuteDomain::Cardinality,
            &r,
            &c
        ));
        let (r, c) = rows(&[("[5 7 5]", "[5 5]")]);
        assert!(!reprove_pruned(
            Comb::Filter,
            RefuteDomain::Cardinality,
            &r,
            &c
        ));
    }

    #[test]
    #[should_panic(expected = "re-proved by deduction")]
    fn reprove_rejects_attribution_domains() {
        let (r, c) = rows(&[("[1 2]", "[2 1]")]);
        reprove_pruned(Comb::Filter, RefuteDomain::Order, &r, &c);
    }
}
