//! The cost model.
//!
//! λ²'s central guarantee is that the synthesized program is the *simplest*
//! program in the language fitting the examples, where simplicity is the
//! total cost of the AST under this model. Search explores hypotheses in
//! cost order using an admissible lower bound (every hole is counted at the
//! minimum cost of any expression, [`CostModel::hole_min`]), so the first
//! verified complete program is cost-minimal.

use lambda2_lang::ast::{Comb, Expr, Op};

/// Per-construct costs. All costs are strictly positive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of a variable reference.
    pub var: u32,
    /// Cost of a literal constant.
    pub lit: u32,
    /// Cost of a first-order operator node (the node, not its arguments).
    pub op: u32,
    /// Cost of an `if` node.
    pub if_: u32,
    /// Cost of a lambda node.
    pub lambda: u32,
    /// Cost of a combinator node. Pricier than first-order operators so
    /// that first-order solutions are preferred when both exist.
    pub comb: u32,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            var: 1,
            lit: 1,
            op: 1,
            if_: 1,
            lambda: 1,
            comb: 4,
        }
    }
}

impl CostModel {
    /// The minimum cost of any completion of a hole: the cheapest leaf.
    pub fn hole_min(&self) -> u32 {
        self.var.min(self.lit)
    }

    /// Cost of a single operator application node.
    pub fn op_cost(&self, _op: Op) -> u32 {
        self.op
    }

    /// Cost of a single combinator node.
    pub fn comb_cost(&self, _comb: Comb) -> u32 {
        self.comb
    }

    /// Total cost of an expression; holes are priced at [`CostModel::hole_min`],
    /// making this an admissible lower bound for hypotheses and the exact
    /// cost for complete programs.
    pub fn cost(&self, expr: &Expr) -> u32 {
        match expr {
            Expr::Lit(_) => self.lit,
            Expr::Var(_) => self.var,
            Expr::Hole(_) => self.hole_min(),
            Expr::Comb(c) => self.comb_cost(*c),
            Expr::If(c, t, e) => self.if_ + self.cost(c) + self.cost(t) + self.cost(e),
            Expr::Lambda(_, b) => self.lambda + self.cost(b),
            Expr::App(f, args) => self.cost(f) + args.iter().map(|a| self.cost(a)).sum::<u32>(),
            Expr::Op(op, args) => {
                self.op_cost(*op) + args.iter().map(|a| self.cost(a)).sum::<u32>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda2_lang::parser::parse_expr;

    fn cost(src: &str) -> u32 {
        CostModel::default().cost(&parse_expr(src).unwrap())
    }

    #[test]
    fn leaves() {
        assert_eq!(cost("x"), 1);
        assert_eq!(cost("42"), 1);
        assert_eq!(cost("[]"), 1);
    }

    #[test]
    fn compound_expressions_sum() {
        assert_eq!(cost("(+ x 1)"), 3);
        assert_eq!(cost("(if (empty? l) 0 1)"), 1 + 2 + 1 + 1);
        // map node (4) + lambda (1) + body (3) + l (1)
        assert_eq!(cost("(map (lambda (x) (+ x 1)) l)"), 4 + 1 + 3 + 1);
    }

    #[test]
    fn holes_use_admissible_minimum() {
        let m = CostModel::default();
        assert_eq!(m.hole_min(), 1);
        assert_eq!(cost("(map ?0 l)"), 4 + 1 + 1);
        // A hole is never cheaper than its cheapest completion.
        assert!(cost("(map ?0 l)") <= cost("(map (lambda (x) x) l)"));
    }

    #[test]
    fn combinators_cost_more_than_operators() {
        let m = CostModel::default();
        assert!(m.comb_cost(Comb::Map) > m.op_cost(Op::Add));
    }
}
