//! Inductive generalization: expanding a hole with a combinator hypothesis.
//!
//! Expanding hole `◻ : ρ` with combinator `C`, collection candidate `c`
//! and (for folds) a concrete initial-value candidate `e` produces the
//! child hypothesis `C (λ x̄. ◻f) [e] c`, where the function-body hole
//! carries the spec *deduced* from `◻`'s rows by [`crate::deduce`].
//! Expansion fails fast when the types do not fit or when deduction
//! refutes the combination.
//!
//! Crucially, an expansion depends only on the *hole's context* (type,
//! scope, spec) — never on the surrounding hypothesis. [`plan_expansion`]
//! therefore produces a reusable [`Template`]; the search caches template
//! lists per hole context and stamps out children with
//! [`Template::instantiate`], which costs two fresh hole ids and a clone.

use std::sync::Arc;

use lambda2_lang::ast::{Comb, Expr, HoleId};
use lambda2_lang::symbol::Symbol;
use lambda2_lang::ty::{Subst, Type};
use lambda2_lang::value::Value;

use crate::analyze::{
    refute_expansion_abs, refute_expansion_tiered, AbsArgs, RefuteDomain, Verdict,
};
use crate::cost::CostModel;
use crate::deduce::{deduce_within, CollectionArg, Outcome};
use crate::govern::{Budget, BudgetExceeded};
use crate::hypothesis::{HoleInfo, Hypothesis};

/// Why an expansion produced no child.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpandFail {
    /// The combinator cannot produce the hole's type from the collection.
    IllTyped,
    /// Deduction proved no completion can satisfy the hole's rows.
    Refuted,
    /// The abstract-interpretation pre-pass ([`crate::analyze`]) proved no
    /// completion can satisfy the hole's rows, before deduction ran.
    /// Attribution-tier domains only change *attribution* (deduction
    /// would refute too); pruning-tier domains (`RefuteDomain::tier()`)
    /// remove templates deduction would have planned — still sound, the
    /// refuted hypothesis has no completion.
    StaticRefuted(RefuteDomain),
    /// The resource budget tripped mid-planning; the caller should abort
    /// its planning sweep, not count a refutation.
    Budget(BudgetExceeded),
}

/// A collection candidate: a concrete (hole-free, combinator-free)
/// expression together with its per-row values and cost.
#[derive(Clone, Debug)]
pub struct Candidate<'a> {
    /// The collection expression.
    pub expr: &'a Arc<Expr>,
    /// Its (canonical) type.
    pub ty: &'a Type,
    /// Its value in each example row of the hole being expanded.
    pub values: Vec<Value>,
    /// Its cost under the active cost model.
    pub cost: u32,
}

/// A planned combinator expansion for one hole context, reusable across
/// every hypothesis sharing that context.
#[derive(Clone, Debug)]
pub struct Template {
    /// The combinator.
    pub comb: Comb,
    /// The collection expression.
    pub coll: Arc<Expr>,
    /// The concrete initial-value expression, for folds.
    pub init: Option<Arc<Expr>>,
    /// Lambda binder symbols, in combinator argument order.
    pub binders: Vec<Symbol>,
    /// Metadata for the function-body hole (deduced spec included).
    pub body_info: Arc<HoleInfo>,
    /// Cost delta: child cost = parent cost − hole_min + delta.
    pub delta_cost: u32,
}

impl Template {
    /// Stamps the template onto `hyp`'s hole `hole`, minting a fresh hole
    /// id for the function body from `next_hole`.
    pub fn instantiate(
        &self,
        hyp: &Hypothesis,
        hole: HoleId,
        costs: &CostModel,
        next_hole: &mut HoleId,
    ) -> Hypothesis {
        let body_hole = *next_hole;
        *next_hole += 1;
        let lambda = Expr::lambda(self.binders.clone(), Expr::Hole(body_hole));
        let new_holes = vec![(body_hole, Arc::clone(&self.body_info))];
        let args: Vec<Expr> = match &self.init {
            Some(init) => vec![lambda, (**init).clone(), (*self.coll).clone()],
            None => vec![lambda, (*self.coll).clone()],
        };
        let skeleton = Expr::comb(self.comb, args);
        let cost = hyp.cost - costs.hole_min() + self.delta_cost;
        hyp.fill(hole, &skeleton, new_holes, cost)
    }
}

/// Plans the expansion of a hole (described by `info`) with `comb` applied
/// to `cand`; for folds, `init_cand` supplies the concrete initial-value
/// candidate (its type must fit the hole's type). The result is
/// independent of any particular hypothesis.
///
/// # Errors
///
/// [`ExpandFail::IllTyped`] when the hole/collection/init types don't fit
/// the combinator; [`ExpandFail::StaticRefuted`] when the abstract
/// pre-pass rules out the child; [`ExpandFail::Refuted`] when deduction
/// does.
///
/// # Panics
///
/// Debug-asserts that `init_cand` is present exactly for fold combinators.
pub fn plan_expansion(
    info: &HoleInfo,
    comb: Comb,
    cand: &Candidate<'_>,
    init_cand: Option<&Candidate<'_>>,
    costs: &CostModel,
    deduction_enabled: bool,
) -> Result<Template, ExpandFail> {
    plan_expansion_within(
        info,
        comb,
        cand,
        init_cand,
        costs,
        deduction_enabled,
        true,
        true,
        None,
        &Budget::unlimited(),
    )
}

/// [`plan_expansion`] under a resource [`Budget`]: deduction runs through
/// [`deduce_within`], so a deadline or cancellation surfaces as
/// [`ExpandFail::Budget`] mid-planning instead of waiting for the next
/// queue pop.
///
/// # Errors
///
/// See [`plan_expansion`]; additionally [`ExpandFail::Budget`] when the
/// budget trips.
///
/// # Panics
///
/// Debug-asserts that `init_cand` is present exactly for fold combinators.
#[allow(clippy::too_many_arguments)] // one budget handle over the planning signature
pub fn plan_expansion_within(
    info: &HoleInfo,
    comb: Comb,
    cand: &Candidate<'_>,
    init_cand: Option<&Candidate<'_>>,
    costs: &CostModel,
    deduction_enabled: bool,
    analysis: bool,
    prune: bool,
    abs: Option<AbsArgs<'_>>,
    budget: &Budget,
) -> Result<Template, ExpandFail> {
    debug_assert_eq!(init_cand.is_some(), comb.init_index().is_some());
    // --- Types ------------------------------------------------------------
    let mut s = Subst::new();
    s.reserve(&info.ty);
    for (_, t) in &info.scope {
        s.reserve(t);
    }
    let hole_ty = info.ty.clone();
    let coll_ty = s.instantiate(cand.ty); // disjoint variable namespace
    let init_ty = init_cand.map(|c| s.instantiate(c.ty));

    // Unifies, mapping failure to IllTyped.
    macro_rules! unify {
        ($a:expr, $b:expr) => {
            s.unify($a, $b).map_err(|_| ExpandFail::IllTyped)?
        };
    }

    // Binder types and the function-body hole's type, per combinator.
    let (binder_tys, body_ty): (Vec<Type>, Type) = match comb {
        Comb::Map => {
            let sigma = s.fresh();
            let tau = s.fresh();
            unify!(&hole_ty, &Type::list(sigma.clone()));
            unify!(&coll_ty, &Type::list(tau.clone()));
            (vec![tau], sigma)
        }
        Comb::Filter => {
            let tau = s.fresh();
            unify!(&coll_ty, &Type::list(tau.clone()));
            unify!(&hole_ty, &coll_ty);
            (vec![tau], Type::Bool)
        }
        Comb::Foldl => {
            let tau = s.fresh();
            unify!(&coll_ty, &Type::list(tau.clone()));
            (vec![hole_ty.clone(), tau], hole_ty.clone())
        }
        Comb::Foldr => {
            let tau = s.fresh();
            unify!(&coll_ty, &Type::list(tau.clone()));
            (vec![tau, hole_ty.clone()], hole_ty.clone())
        }
        Comb::Recl => {
            let tau = s.fresh();
            unify!(&coll_ty, &Type::list(tau.clone()));
            (
                vec![tau.clone(), Type::list(tau), hole_ty.clone()],
                hole_ty.clone(),
            )
        }
        Comb::Mapt => {
            let sigma = s.fresh();
            let tau = s.fresh();
            unify!(&hole_ty, &Type::tree(sigma.clone()));
            unify!(&coll_ty, &Type::tree(tau.clone()));
            (vec![tau], sigma)
        }
        Comb::Foldt => {
            let tau = s.fresh();
            unify!(&coll_ty, &Type::tree(tau.clone()));
            (vec![tau, Type::list(hole_ty.clone())], hole_ty.clone())
        }
    };

    // The init candidate must produce the fold's result type.
    if let Some(init_ty) = &init_ty {
        unify!(&hole_ty, init_ty);
    }

    // --- Binders ----------------------------------------------------------
    let taken: Vec<Symbol> = info.scope.iter().map(|(sym, _)| *sym).collect();
    let binders = binder_symbols(comb, &taken);

    // --- Abstract pre-pass --------------------------------------------------
    // Runs only when deduction is on: attribution-tier checks are strictly
    // weaker than the corresponding deduction rule, so with deduction off
    // (the paper's ablation) the analyzer must not prune either. The
    // pruning tier rides the same gate — its refutations replace work
    // deduction *and* enumeration would otherwise do.
    let init_values = init_cand.map(|c| c.values.as_slice());
    if analysis && deduction_enabled {
        // With memoized abstractions in hand (the search's `AbsCache`
        // path), consume them; otherwise build them locally.
        let verdict = match abs {
            Some(a) => {
                refute_expansion_abs(comb, info.spec.rows(), &cand.values, a, init_values, prune)
            }
            None => {
                refute_expansion_tiered(comb, info.spec.rows(), &cand.values, init_values, prune)
            }
        };
        #[cfg(feature = "check-invariants")]
        if abs.is_some() {
            // Cached abstractions must be indistinguishable from fresh
            // ones at the verdict level.
            assert_eq!(
                verdict,
                refute_expansion_tiered(comb, info.spec.rows(), &cand.values, init_values, prune),
                "memoized abstraction changed the verdict for {comb:?}"
            );
        }
        if let Verdict::Refuted(domain) = verdict {
            #[cfg(feature = "check-invariants")]
            {
                // Soundness cross-check at the refutation site, by tier:
                // attribution verdicts must be confirmed by deduction
                // (analyzer ⊆ deduction); pruning verdicts can't be —
                // deduction is strictly weaker there — so the bounded
                // brute-force oracle re-proves them instead.
                match domain.tier() {
                    crate::analyze::Tier::Attribution => {
                        let arg = CollectionArg {
                            values: cand.values.clone(),
                            var: None,
                        };
                        let outcome = crate::deduce::deduce(
                            comb,
                            info.spec.rows(),
                            &arg,
                            init_values,
                            &binders,
                            true,
                        );
                        assert!(
                            matches!(outcome, Outcome::Refuted),
                            "static refutation ({domain:?}) not confirmed by deduction for {comb:?}"
                        );
                    }
                    crate::analyze::Tier::Pruning => {
                        assert!(
                            crate::analyze::oracle::reprove_pruned(
                                comb,
                                domain,
                                info.spec.rows(),
                                &cand.values,
                            ),
                            "pruned refutation ({domain:?}) not confirmed by the oracle for {comb:?}"
                        );
                    }
                }
            }
            return Err(ExpandFail::StaticRefuted(domain));
        }
    }

    // --- Deduction ----------------------------------------------------------
    let coll_arg = CollectionArg {
        values: cand.values.clone(),
        var: match &**cand.expr {
            Expr::Var(v) => Some(*v),
            _ => None,
        },
    };
    let deduction = match deduce_within(
        comb,
        info.spec.rows(),
        &coll_arg,
        init_cand.map(|c| c.values.as_slice()),
        &binders,
        deduction_enabled,
        budget,
    )
    .map_err(ExpandFail::Budget)?
    {
        Outcome::Refuted => return Err(ExpandFail::Refuted),
        Outcome::Deduced(d) => d,
    };

    // --- Template construction --------------------------------------------
    let mut body_scope = info.scope.clone();
    for (b, t) in binders.iter().zip(&binder_tys) {
        body_scope.push((*b, s.apply(t)));
    }
    let body_info = Arc::new(HoleInfo::with_probes(
        s.apply(&body_ty),
        body_scope,
        deduction.fun_spec,
        deduction.probes,
    ));

    let delta_cost = costs.comb_cost(comb)
        + costs.lambda
        + cand.cost
        + init_cand.map_or(0, |c| c.cost)
        + costs.hole_min();
    Ok(Template {
        comb,
        coll: cand.expr.clone(),
        init: init_cand.map(|c| c.expr.clone()),
        binders,
        body_info,
        delta_cost,
    })
}

/// Plans and immediately instantiates an expansion — convenience used by
/// tests and small callers; the search uses the two phases separately to
/// cache templates.
///
/// # Errors
///
/// See [`plan_expansion`].
#[allow(clippy::too_many_arguments)] // thin test/demo convenience over plan+instantiate
pub fn expand_combinator(
    hyp: &Hypothesis,
    hole: HoleId,
    info: &HoleInfo,
    comb: Comb,
    cand: &Candidate<'_>,
    init_cand: Option<&Candidate<'_>>,
    costs: &CostModel,
    deduction_enabled: bool,
    next_hole: &mut HoleId,
) -> Result<Hypothesis, ExpandFail> {
    let template = plan_expansion(info, comb, cand, init_cand, costs, deduction_enabled)?;
    Ok(template.instantiate(hyp, hole, costs, next_hole))
}

/// A planned *constructor* expansion: `(cons ◻a ◻b)`, `(pair ◻a ◻b)` or
/// `(tree ◻v ◻cs)`. Constructors are invertible, so the child holes get
/// exact deduced specs (the components of every row's output), and — like
/// any holes — remain expandable with combinators, which is what makes
/// programs such as `(cons (foldl …) l)` reachable.
#[derive(Clone, Debug)]
pub struct ConsTemplate {
    /// The constructor operator (`cons`, `pair` or `tree`).
    pub op: lambda2_lang::ast::Op,
    /// Metadata for the two component holes, left to right.
    pub parts: [Arc<HoleInfo>; 2],
    /// Cost delta: child cost = parent cost − hole_min + delta.
    pub delta_cost: u32,
}

impl ConsTemplate {
    /// Stamps the template onto `hyp`'s hole `hole`, minting two fresh
    /// hole ids from `next_hole`.
    pub fn instantiate(
        &self,
        hyp: &Hypothesis,
        hole: HoleId,
        costs: &CostModel,
        next_hole: &mut HoleId,
    ) -> Hypothesis {
        let a = *next_hole;
        let b = *next_hole + 1;
        *next_hole += 2;
        let skeleton = Expr::op(self.op, vec![Expr::Hole(a), Expr::Hole(b)]);
        let new_holes = vec![
            (a, Arc::clone(&self.parts[0])),
            (b, Arc::clone(&self.parts[1])),
        ];
        let cost = hyp.cost - costs.hole_min() + self.delta_cost;
        hyp.fill(hole, &skeleton, new_holes, cost)
    }
}

/// Plans constructor expansions for a hole: at most one per constructor,
/// and only when *every* row's output has the constructor's shape (an
/// empty list/tree in any row rules `cons`/`tree` out — the components
/// would not exist).
pub fn plan_constructors(info: &HoleInfo, costs: &CostModel) -> Vec<ConsTemplate> {
    use lambda2_lang::ast::Op;
    use lambda2_lang::value::Value;

    let mut out = Vec::new();
    if info.spec.is_empty() {
        return out;
    }
    let delta = costs.op_cost(Op::Cons) + 2 * costs.hole_min();
    let rows = info.spec.rows();

    // (cons ◻head ◻tail) — outputs must all be non-empty lists.
    if let Type::List(elem) = &info.ty {
        let split: Option<(Vec<_>, Vec<_>)> = rows
            .iter()
            .map(|r| {
                r.output.as_list().and_then(|xs| {
                    xs.split_first().map(|(h, t)| {
                        (
                            crate::spec::ExampleRow::new(r.env.clone(), h.clone()),
                            crate::spec::ExampleRow::new(r.env.clone(), Value::list(t.to_vec())),
                        )
                    })
                })
            })
            .collect();
        if let Some((heads, tails)) = split {
            if let (Ok(hspec), Ok(tspec)) =
                (crate::spec::Spec::new(heads), crate::spec::Spec::new(tails))
            {
                out.push(ConsTemplate {
                    op: Op::Cons,
                    parts: [
                        Arc::new(HoleInfo::new((**elem).clone(), info.scope.clone(), hspec)),
                        Arc::new(HoleInfo::new(info.ty.clone(), info.scope.clone(), tspec)),
                    ],
                    delta_cost: delta,
                });
            }
        }
    }

    // (pair ◻fst ◻snd) — outputs are pairs by typing.
    if let Type::Pair(a_ty, b_ty) = &info.ty {
        let split: Option<(Vec<_>, Vec<_>)> = rows
            .iter()
            .map(|r| {
                r.output.as_pair().map(|(a, b)| {
                    (
                        crate::spec::ExampleRow::new(r.env.clone(), a.clone()),
                        crate::spec::ExampleRow::new(r.env.clone(), b.clone()),
                    )
                })
            })
            .collect();
        if let Some((firsts, seconds)) = split {
            if let (Ok(fspec), Ok(sspec)) = (
                crate::spec::Spec::new(firsts),
                crate::spec::Spec::new(seconds),
            ) {
                out.push(ConsTemplate {
                    op: Op::MkPair,
                    parts: [
                        Arc::new(HoleInfo::new((**a_ty).clone(), info.scope.clone(), fspec)),
                        Arc::new(HoleInfo::new((**b_ty).clone(), info.scope.clone(), sspec)),
                    ],
                    delta_cost: delta,
                });
            }
        }
    }

    // (tree ◻value ◻children) — outputs must all be non-empty trees.
    if let Type::Tree(elem) = &info.ty {
        let split: Option<(Vec<_>, Vec<_>)> = rows
            .iter()
            .map(|r| {
                r.output.as_tree().and_then(|t| {
                    t.root().map(|n| {
                        (
                            crate::spec::ExampleRow::new(r.env.clone(), n.value.clone()),
                            crate::spec::ExampleRow::new(
                                r.env.clone(),
                                Value::list(n.children.iter().cloned().map(Value::Tree).collect()),
                            ),
                        )
                    })
                })
            })
            .collect();
        if let Some((values, children)) = split {
            if let (Ok(vspec), Ok(cspec)) = (
                crate::spec::Spec::new(values),
                crate::spec::Spec::new(children),
            ) {
                out.push(ConsTemplate {
                    op: Op::TreeMake,
                    parts: [
                        Arc::new(HoleInfo::new((**elem).clone(), info.scope.clone(), vspec)),
                        Arc::new(HoleInfo::new(
                            Type::list(info.ty.clone()),
                            info.scope.clone(),
                            cspec,
                        )),
                    ],
                    delta_cost: delta,
                });
            }
        }
    }
    out
}

/// Conventional, collision-free binder names per combinator.
fn binder_symbols(comb: Comb, taken: &[Symbol]) -> Vec<Symbol> {
    let preferred: &[&str] = match comb {
        Comb::Map | Comb::Filter | Comb::Mapt => &["x"],
        Comb::Foldl => &["a", "x"],
        Comb::Foldr => &["x", "a"],
        Comb::Recl => &["x", "xs", "r"],
        Comb::Foldt => &["v", "rs"],
    };
    let mut used: Vec<Symbol> = taken.to_vec();
    let mut out = Vec::with_capacity(preferred.len());
    for name in preferred {
        let sym = Symbol::intern(name);
        let sym = if used.contains(&sym) {
            Symbol::fresh(name, &used)
        } else {
            sym
        };
        used.push(sym);
        out.push(sym);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ExampleRow, Spec};
    use lambda2_lang::env::Env;
    use lambda2_lang::parser::parse_value;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    /// A root hypothesis for a `[int] -> τ` problem over variable `l`.
    fn root_with_examples(pairs: &[(&str, &str)], ret: Type) -> (Hypothesis, Vec<Value>) {
        let l = sym("l");
        let mut rows = Vec::new();
        let mut vals = Vec::new();
        for (i, o) in pairs {
            let iv = parse_value(i).unwrap();
            rows.push(ExampleRow::new(
                Env::empty().bind(l, iv.clone()),
                parse_value(o).unwrap(),
            ));
            vals.push(iv);
        }
        let info = HoleInfo::new(
            ret,
            vec![(l, Type::list(Type::Int))],
            Spec::new(rows).unwrap(),
        );
        (Hypothesis::root(info, &CostModel::default()), vals)
    }

    fn var_candidate<'a>(expr: &'a Arc<Expr>, ty: &'a Type, values: Vec<Value>) -> Candidate<'a> {
        Candidate {
            expr,
            ty,
            values,
            cost: 1,
        }
    }

    #[test]
    fn map_expansion_builds_skeleton_and_deduces() {
        let (h, vals) = root_with_examples(&[("[1 2]", "[2 3]")], Type::list(Type::Int));
        let (hole, info) = h.first_hole().unwrap();
        let info = info.clone();
        let expr = Arc::new(Expr::var("l"));
        let ty = Type::list(Type::Int);
        let mut next = 1;
        let child = expand_combinator(
            &h,
            hole,
            &info,
            Comb::Map,
            &var_candidate(&expr, &ty, vals),
            None,
            &CostModel::default(),
            true,
            &mut next,
        )
        .unwrap();
        assert_eq!(child.expr.to_string(), "(map (lambda (x) ?1) l)");
        let (_, body) = child.first_hole().unwrap();
        assert_eq!(body.ty, Type::Int);
        assert_eq!(body.spec.len(), 2);
        assert_eq!(body.scope.len(), 2); // l and x
                                         // cost: root(1) - 1 + comb(4) + lambda(1) + coll(1) + hole(1) = 7
        assert_eq!(child.cost, 7);
    }

    #[test]
    fn templates_are_reusable_across_hypotheses() {
        let (h, vals) = root_with_examples(&[("[1 2]", "[2 3]")], Type::list(Type::Int));
        let (hole, info) = h.first_hole().unwrap();
        let info = info.clone();
        let expr = Arc::new(Expr::var("l"));
        let ty = Type::list(Type::Int);
        let cand = var_candidate(&expr, &ty, vals);
        let t = plan_expansion(&info, Comb::Map, &cand, None, &CostModel::default(), true).unwrap();

        let mut next = 10;
        let c1 = t.instantiate(&h, hole, &CostModel::default(), &mut next);
        let c2 = t.instantiate(&h, hole, &CostModel::default(), &mut next);
        assert_eq!(c1.expr.to_string(), "(map (lambda (x) ?10) l)");
        assert_eq!(c2.expr.to_string(), "(map (lambda (x) ?11) l)");
        // Both children share the same HoleInfo allocation.
        let i1 = c1.first_hole().unwrap().1;
        let i2 = c2.first_hole().unwrap().1;
        assert!(Arc::ptr_eq(i1, i2));
    }

    #[test]
    fn map_expansion_refutes_on_length_mismatch() {
        let (h, vals) = root_with_examples(&[("[1 2]", "[2]")], Type::list(Type::Int));
        let (_, info) = h.first_hole().unwrap();
        let info = info.clone();
        let expr = Arc::new(Expr::var("l"));
        let ty = Type::list(Type::Int);
        let err = plan_expansion(
            &info,
            Comb::Map,
            &var_candidate(&expr, &ty, vals),
            None,
            &CostModel::default(),
            true,
        )
        .unwrap_err();
        // The length domain of the abstract pre-pass catches this before
        // deduction runs; with the analyzer off, deduction refutes instead.
        assert_eq!(err, ExpandFail::StaticRefuted(RefuteDomain::Length));
        let err = plan_expansion_within(
            &info,
            Comb::Map,
            &var_candidate(
                &expr,
                &ty,
                root_with_examples(&[("[1 2]", "[2]")], Type::list(Type::Int)).1,
            ),
            None,
            &CostModel::default(),
            true,
            false,
            false,
            None,
            &Budget::unlimited(),
        )
        .unwrap_err();
        assert_eq!(err, ExpandFail::Refuted);
    }

    #[test]
    fn filter_expansion_prunes_on_cardinality() {
        let (h, vals) = root_with_examples(&[("[5 7 5]", "[5]")], Type::list(Type::Int));
        let (_, info) = h.first_hole().unwrap();
        let info = info.clone();
        let expr = Arc::new(Expr::var("l"));
        let ty = Type::list(Type::Int);
        // With pruning on, the cardinality domain refutes before deduction
        // runs — and under `check-invariants` the brute-force oracle
        // re-proves the verdict at this site (deduction cannot: it skips
        // partially-kept duplicates).
        let err = plan_expansion(
            &info,
            Comb::Filter,
            &var_candidate(&expr, &ty, vals.clone()),
            None,
            &CostModel::default(),
            true,
        )
        .unwrap_err();
        assert_eq!(err, ExpandFail::StaticRefuted(RefuteDomain::Cardinality));
        // With pruning off, deduction keeps the hypothesis open and a
        // template is planned — exactly the work pruning removes.
        let t = plan_expansion_within(
            &info,
            Comb::Filter,
            &var_candidate(&expr, &ty, vals),
            None,
            &CostModel::default(),
            true,
            true,
            false,
            None,
            &Budget::unlimited(),
        );
        assert!(t.is_ok(), "{t:?}");
    }

    #[test]
    fn map_expansion_is_ill_typed_for_scalar_holes() {
        let (h, vals) = root_with_examples(&[("[1 2]", "3")], Type::Int);
        let (_, info) = h.first_hole().unwrap();
        let info = info.clone();
        let expr = Arc::new(Expr::var("l"));
        let ty = Type::list(Type::Int);
        let err = plan_expansion(
            &info,
            Comb::Map,
            &var_candidate(&expr, &ty, vals),
            None,
            &CostModel::default(),
            true,
        )
        .unwrap_err();
        assert_eq!(err, ExpandFail::IllTyped);
    }

    #[test]
    fn foldl_expansion_takes_a_concrete_init() {
        let (h, vals) = root_with_examples(&[("[]", "0"), ("[1]", "1")], Type::Int);
        let (hole, info) = h.first_hole().unwrap();
        let info = info.clone();
        let expr = Arc::new(Expr::var("l"));
        let ty = Type::list(Type::Int);
        let init_expr = Arc::new(Expr::int(0));
        let init_ty = Type::Int;
        let init = Candidate {
            expr: &init_expr,
            ty: &init_ty,
            values: vec![
                lambda2_lang::value::Value::Int(0),
                lambda2_lang::value::Value::Int(0),
            ],
            cost: 1,
        };
        let mut next = 1;
        let child = expand_combinator(
            &h,
            hole,
            &info,
            Comb::Foldl,
            &var_candidate(&expr, &ty, vals.clone()),
            Some(&init),
            &CostModel::default(),
            true,
            &mut next,
        )
        .unwrap();
        assert_eq!(child.expr.to_string(), "(foldl (lambda (a x) ?1) 0 l)");
        assert_eq!(child.holes().len(), 1);
        let (_, body) = &child.holes()[0];
        assert_eq!(body.ty, Type::Int);
        // Singleton row: f(0, 1) = 1.
        assert_eq!(body.spec.len(), 1);
        assert_eq!(next, 2);

        // A wrong init value is refuted by the [] example.
        let bad_expr = Arc::new(Expr::int(7));
        let bad = Candidate {
            expr: &bad_expr,
            ty: &init_ty,
            values: vec![
                lambda2_lang::value::Value::Int(7),
                lambda2_lang::value::Value::Int(7),
            ],
            cost: 1,
        };
        let err = expand_combinator(
            &h,
            hole,
            &info,
            Comb::Foldl,
            &var_candidate(&expr, &ty, vals),
            Some(&bad),
            &CostModel::default(),
            true,
            &mut next,
        )
        .unwrap_err();
        assert_eq!(err, ExpandFail::StaticRefuted(RefuteDomain::Init));
    }

    #[test]
    fn binders_avoid_shadowing() {
        let taken = [sym("x"), sym("a")];
        let bs = binder_symbols(Comb::Foldr, &taken);
        assert_eq!(bs.len(), 2);
        assert!(!taken.contains(&bs[0]));
        assert!(!taken.contains(&bs[1]));
        assert_ne!(bs[0], bs[1]);
    }

    #[test]
    fn mapt_expansion_types_tree_holes() {
        let t = sym("t");
        let iv = parse_value("{1 {2}}").unwrap();
        let rows = vec![ExampleRow::new(
            Env::empty().bind(t, iv.clone()),
            parse_value("{2 {3}}").unwrap(),
        )];
        let info = HoleInfo::new(
            Type::tree(Type::Int),
            vec![(t, Type::tree(Type::Int))],
            Spec::new(rows).unwrap(),
        );
        let h = Hypothesis::root(info, &CostModel::default());
        let (hole, info) = h.first_hole().unwrap();
        let info = info.clone();
        let expr = Arc::new(Expr::var("t"));
        let ty = Type::tree(Type::Int);
        let mut next = 1;
        let child = expand_combinator(
            &h,
            hole,
            &info,
            Comb::Mapt,
            &var_candidate(&expr, &ty, vec![iv]),
            None,
            &CostModel::default(),
            true,
            &mut next,
        )
        .unwrap();
        assert_eq!(child.expr.to_string(), "(mapt (lambda (x) ?1) t)");
        let (_, body) = child.first_hole().unwrap();
        assert_eq!(body.ty, Type::Int);
        assert_eq!(body.spec.len(), 2);
    }
}
