//! Deduction rules for the list folds: `foldl`, `foldr`, `recl`.
//!
//! Fold hypotheses carry a *concrete* initial-value candidate, which makes
//! three kinds of inference available:
//!
//! * **base checks** — a row whose collection is `[]` forces the initial
//!   value: `foldl ◻f e [] = e`. Disagreement refutes the hypothesis.
//! * **singleton rows** — `foldl ◻f e [x] = ◻f(e, x)`, so singleton
//!   collections yield step-function rows directly.
//! * **chain rows** — when the collection argument is a plain variable `v`
//!   and two rows differ *only* in `v`'s binding, with one binding the
//!   tail (for `foldr`/`recl`) or the init-prefix (for `foldl`) of the
//!   other, the fold's recurrence yields a row for the step function:
//!   `foldr ◻f e (x:xs) = ◻f(x, foldr ◻f e xs)`, and the inner fold's
//!   value is the other row's output.
//!
//! This is why the paper's example sets for fold-shaped problems contain
//! prefix/tail chains like `[]`, `[a]`, `[a,b]`, `[a,b,c]`.

use std::collections::HashMap;

use lambda2_lang::env::Env;
use lambda2_lang::symbol::Symbol;
use lambda2_lang::value::Value;

use super::{group_rows_without, spec_or_refute, CollectionArg, Deduction, Outcome};
use crate::spec::ExampleRow;

/// Hard cap on trace probes per hole (they multiply signature costs).
const MAX_PROBES: usize = 24;

/// *Trace probes* for a fold's step function: verification will call it on
/// every element of every collection with accumulators we cannot predict
/// exactly — but the row's initial value and the row's final output are
/// plausible candidates, and binding each (element, candidate) pair keeps
/// the enumerator's observational classes as fine as verification itself.
/// `bind` receives (parent row, element index, elements, element,
/// accumulator candidate) and returns the probe environment.
fn fold_probes(
    rows: &[ExampleRow],
    coll: &CollectionArg,
    init: &[Value],
    bind: impl Fn(&ExampleRow, usize, &[Value], &Value, &Value) -> Env,
) -> Vec<Env> {
    let mut probes = Vec::new();
    'rows: for (row, (cv, iv)) in rows.iter().zip(coll.values.iter().zip(init)) {
        let xs = cv.as_list().expect("collections checked as lists");
        for (j, elem) in xs.iter().enumerate() {
            for acc_candidate in [iv, &row.output] {
                if probes.len() >= MAX_PROBES {
                    break 'rows;
                }
                probes.push(bind(row, j, xs, elem, acc_candidate));
            }
        }
    }
    probes
}

/// Attaches fold trace probes to a deduction outcome.
fn with_probes(outcome: Outcome, probes: impl FnOnce() -> Vec<Env>) -> Outcome {
    match outcome {
        Outcome::Deduced(mut d) => {
            d.probes = probes();
            Outcome::Deduced(d)
        }
        refuted => refuted,
    }
}

/// `foldl ◻f e c` with `◻f(acc, x)`.
pub fn deduce_foldl(
    rows: &[ExampleRow],
    coll: &CollectionArg,
    init: &[Value],
    acc: Symbol,
    x: Symbol,
) -> Outcome {
    let out = deduce_fold(
        rows,
        coll,
        init,
        &mut |row, list, init_val, lookup, fun_rows| {
            if list.len() == 1 {
                fun_rows.push(ExampleRow::new(
                    row.env.bind(acc, init_val.clone()).bind(x, list[0].clone()),
                    row.output.clone(),
                ));
                return;
            }
            let (prefix, last) = list.split_at(list.len() - 1);
            if let Some(prev_out) = lookup(prefix) {
                fun_rows.push(ExampleRow::new(
                    row.env.bind(acc, prev_out).bind(x, last[0].clone()),
                    row.output.clone(),
                ));
            }
        },
    );
    with_probes(out, || {
        fold_probes(rows, coll, init, |row, _, _, elem, cand| {
            row.env.bind(acc, cand.clone()).bind(x, elem.clone())
        })
    })
}

/// `foldr ◻f e c` with `◻f(x, acc)`.
pub fn deduce_foldr(
    rows: &[ExampleRow],
    coll: &CollectionArg,
    init: &[Value],
    x: Symbol,
    acc: Symbol,
) -> Outcome {
    let out = deduce_fold(
        rows,
        coll,
        init,
        &mut |row, list, init_val, lookup, fun_rows| {
            if list.len() == 1 {
                fun_rows.push(ExampleRow::new(
                    row.env.bind(x, list[0].clone()).bind(acc, init_val.clone()),
                    row.output.clone(),
                ));
                return;
            }
            let (head, tail) = list.split_at(1);
            if let Some(tail_out) = lookup(tail) {
                fun_rows.push(ExampleRow::new(
                    row.env.bind(x, head[0].clone()).bind(acc, tail_out),
                    row.output.clone(),
                ));
            }
        },
    );
    with_probes(out, || {
        fold_probes(rows, coll, init, |row, _, _, elem, cand| {
            row.env.bind(x, elem.clone()).bind(acc, cand.clone())
        })
    })
}

/// `recl ◻f e c` with `◻f(x, xs, rec)` where `rec = recl ◻f e xs`.
pub fn deduce_recl(
    rows: &[ExampleRow],
    coll: &CollectionArg,
    init: &[Value],
    x: Symbol,
    xs: Symbol,
    rec: Symbol,
) -> Outcome {
    let out = deduce_fold(
        rows,
        coll,
        init,
        &mut |row, list, init_val, lookup, fun_rows| {
            let (head, tail) = list.split_at(1);
            let rec_out = if tail.is_empty() {
                Some(init_val.clone())
            } else {
                lookup(tail)
            };
            if let Some(rec_out) = rec_out {
                fun_rows.push(ExampleRow::new(
                    row.env
                        .bind(x, head[0].clone())
                        .bind(xs, Value::list(tail.to_vec()))
                        .bind(rec, rec_out),
                    row.output.clone(),
                ));
            }
        },
    );
    with_probes(out, || {
        fold_probes(rows, coll, init, |row, j, elems, elem, cand| {
            row.env
                .bind(x, elem.clone())
                .bind(xs, Value::list(elems[j + 1..].to_vec()))
                .bind(rec, cand.clone())
        })
    })
}

/// Shared fold skeleton: checks empty-collection rows against the concrete
/// initial value, and calls `step` for every non-empty collection row with
/// the row's initial value and a lookup into the same chain group (rows
/// differing only in the collection variable).
#[allow(clippy::type_complexity)] // one-off callback signature, local to this module
fn deduce_fold(
    rows: &[ExampleRow],
    coll: &CollectionArg,
    init: &[Value],
    step: &mut dyn FnMut(
        &ExampleRow,
        &[Value],
        &Value,
        &dyn Fn(&[Value]) -> Option<Value>,
        &mut Vec<ExampleRow>,
    ),
) -> Outcome {
    // Collections must all be lists.
    for cv in &coll.values {
        if cv.as_list().is_none() {
            return Outcome::Refuted;
        }
    }

    // Base checks: an empty collection forces the output to be the
    // initial value.
    for ((row, cv), iv) in rows.iter().zip(&coll.values).zip(init) {
        let xs = cv.as_list().expect("checked above");
        if xs.is_empty() && row.output != *iv {
            return Outcome::Refuted;
        }
    }

    let mut fun_rows = Vec::new();

    // Chain groups: only meaningful when the collection is a variable,
    // but singleton deduction works for any collection expression, so we
    // always iterate rows; the lookup is empty for non-variables.
    let groups: Vec<Vec<usize>> = match coll.var {
        Some(var) => group_rows_without(rows, var),
        None => (0..rows.len()).map(|i| vec![i]).collect(),
    };
    for group in groups {
        let mut by_list: HashMap<&[Value], &Value> = HashMap::new();
        if coll.var.is_some() {
            for &i in &group {
                let xs = coll.values[i].as_list().expect("checked above");
                by_list.insert(xs, &rows[i].output);
            }
        }
        let lookup = |key: &[Value]| by_list.get(key).map(|v| (*v).clone());
        for &i in &group {
            let xs = coll.values[i].as_list().expect("checked above");
            if !xs.is_empty() {
                step(&rows[i], xs, &init[i], &lookup, &mut fun_rows);
            }
        }
    }

    match spec_or_refute(fun_rows) {
        Ok(fun_spec) => Outcome::Deduced(Deduction {
            fun_spec,
            probes: Vec::new(),
        }),
        Err(r) => r,
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;

    fn deduction(out: Outcome) -> Deduction {
        match out {
            Outcome::Deduced(d) => d,
            Outcome::Refuted => panic!("unexpected refutation"),
        }
    }

    /// Constant init value replicated across rows.
    fn inits(v: &str, n: usize) -> Vec<Value> {
        vec![val(v); n]
    }

    #[test]
    fn empty_rows_check_the_init() {
        let (rows, coll) = rows_on_var("l", &[("[]", "0"), ("[1]", "1")]);
        // Correct init passes…
        assert!(matches!(
            deduce_foldl(&rows, &coll, &inits("0", 2), sym("a"), sym("x")),
            Outcome::Deduced(_)
        ));
        // …wrong init refutes.
        assert!(matches!(
            deduce_foldl(&rows, &coll, &inits("7", 2), sym("a"), sym("x")),
            Outcome::Refuted
        ));
    }

    #[test]
    fn singletons_deduce_step_rows_from_the_init() {
        let (rows, coll) = rows_on_var("l", &[("[5]", "5")]);
        let d = deduction(deduce_foldl(
            &rows,
            &coll,
            &inits("0", 1),
            sym("a"),
            sym("x"),
        ));
        assert_eq!(d.fun_spec.len(), 1);
        let row = &d.fun_spec.rows()[0];
        assert_eq!(row.env.lookup(sym("a")), Some(&Value::Int(0)));
        assert_eq!(row.env.lookup(sym("x")), Some(&Value::Int(5)));
        assert_eq!(row.output, Value::Int(5));
    }

    #[test]
    fn foldl_chains_deduce_step_rows() {
        // sum with a prefix chain: [] , [1], [1,2], [1,2,3].
        let (rows, coll) = rows_on_var(
            "l",
            &[("[]", "0"), ("[1]", "1"), ("[1 2]", "3"), ("[1 2 3]", "6")],
        );
        let d = deduction(deduce_foldl(
            &rows,
            &coll,
            &inits("0", 4),
            sym("a"),
            sym("x"),
        ));
        // f(0,1)=1, f(1,2)=3, f(3,3)=6
        assert_eq!(d.fun_spec.len(), 3);
        for row in d.fun_spec.rows() {
            let a = row.env.lookup(sym("a")).unwrap().as_int().unwrap();
            let x = row.env.lookup(sym("x")).unwrap().as_int().unwrap();
            assert_eq!(row.output, Value::Int(a + x));
        }
    }

    #[test]
    fn foldr_chains_use_tails() {
        let (rows, coll) = rows_on_var(
            "l",
            &[("[]", "[]"), ("[2]", "[2 2]"), ("[1 2]", "[1 1 2 2]")],
        );
        let d = deduction(deduce_foldr(
            &rows,
            &coll,
            &inits("[]", 3),
            sym("x"),
            sym("a"),
        ));
        // f(2, []) = [2 2]; f(1, [2 2]) = [1 1 2 2]
        assert_eq!(d.fun_spec.len(), 2);
        let r0 = &d.fun_spec.rows()[0];
        assert_eq!(r0.env.lookup(sym("x")), Some(&Value::Int(2)));
        assert_eq!(r0.env.lookup(sym("a")), Some(&val("[]")));
        assert_eq!(r0.output, val("[2 2]"));
    }

    #[test]
    fn recl_binds_head_tail_and_recursive_result() {
        let (rows, coll) = rows_on_var("l", &[("[]", "[]"), ("[2]", "[2]"), ("[1 2]", "[1 2]")]);
        let d = deduction(deduce_recl(
            &rows,
            &coll,
            &inits("[]", 3),
            sym("x"),
            sym("xs"),
            sym("r"),
        ));
        assert_eq!(d.fun_spec.len(), 2);
        let r1 = d
            .fun_spec
            .rows()
            .iter()
            .find(|r| r.env.lookup(sym("x")) == Some(&Value::Int(1)))
            .unwrap();
        assert_eq!(r1.env.lookup(sym("xs")), Some(&val("[2]")));
        assert_eq!(r1.env.lookup(sym("r")), Some(&val("[2]")));
        assert_eq!(r1.output, val("[1 2]"));
    }

    #[test]
    fn chains_respect_other_bindings() {
        // Two-parameter problem (append): chains only link rows where the
        // second argument agrees, and the per-row init can differ (here it
        // is the value of `q` in each row — the candidate init term `q`).
        use lambda2_lang::env::Env;
        let l = sym("p");
        let y = sym("q");
        let mk = |lv: &str, yv: &str, out: &str| {
            ExampleRow::new(Env::empty().bind(l, val(lv)).bind(y, val(yv)), val(out))
        };
        let rows = vec![
            mk("[]", "[9]", "[9]"),
            mk("[1]", "[9]", "[1 9]"),
            mk("[2 1]", "[8 8]", "[2 1 8 8]"),
        ];
        let coll = CollectionArg {
            values: rows
                .iter()
                .map(|r| r.env.lookup(l).unwrap().clone())
                .collect(),
            var: Some(l),
        };
        let init = vec![val("[9]"), val("[9]"), val("[8 8]")];
        let d = deduction(deduce_foldr(&rows, &coll, &init, sym("x"), sym("a")));
        // Singleton [1] with init [9]: f(1, [9]) = [1 9]. The [2 1] row has
        // no tail example in its group, so nothing else is deduced.
        assert_eq!(d.fun_spec.len(), 1);
        let row = &d.fun_spec.rows()[0];
        assert_eq!(row.env.lookup(sym("a")), Some(&val("[9]")));
    }

    #[test]
    fn non_variable_collections_get_singleton_rows() {
        let (rows, coll) = rows_on_expr(&[("[]", "0"), ("[1]", "1"), ("[1 2]", "3")]);
        let d = deduction(deduce_foldl(
            &rows,
            &coll,
            &inits("0", 3),
            sym("a"),
            sym("x"),
        ));
        // Only the singleton [1] row deduces; [1 2] has no usable chain.
        assert_eq!(d.fun_spec.len(), 1);
    }

    #[test]
    fn recl_singleton_uses_init_for_the_recursive_result() {
        let (rows, coll) = rows_on_var("l", &[("[7]", "[7]")]);
        let d = deduction(deduce_recl(
            &rows,
            &coll,
            &inits("[]", 1),
            sym("x"),
            sym("xs"),
            sym("r"),
        ));
        assert_eq!(d.fun_spec.len(), 1);
        let row = &d.fun_spec.rows()[0];
        assert_eq!(row.env.lookup(sym("r")), Some(&val("[]")));
        assert_eq!(row.env.lookup(sym("xs")), Some(&val("[]")));
    }

    #[test]
    fn inconsistent_deduced_rows_refute() {
        // Two identical singleton rows demanding different outputs would be
        // inconsistent — construct via duplicate env with different output
        // being impossible at spec level, so check step-vs-singleton clash:
        // rows [5]→5 and chain [],[5]→6 with init 0 give f(0,5)=5 vs the
        // explicit singleton f(0,5)=6. Same env, different outputs ⇒ refute.
        let (rows, coll) = rows_on_var("l", &[("[5]", "5")]);
        let (rows2, _) = rows_on_var("l", &[("[5]", "6")]);
        let mut all = rows;
        all.extend(rows2);
        let coll = CollectionArg {
            values: vec![val("[5]"), val("[5]")],
            var: coll.var,
        };
        // Identical envs with conflicting outputs — caught by the deduced
        // spec's consistency check (the parent spec would have caught it
        // too; deduction must not panic).
        assert!(matches!(
            deduce_foldl(&all, &coll, &inits("0", 2), sym("a"), sym("x")),
            Outcome::Refuted
        ));
    }

    #[test]
    fn foldl_emits_trace_probes_for_every_element() {
        let (rows, coll) = rows_on_var("l", &[("[4 7]", "11")]);
        let d = deduction(deduce_foldl(
            &rows,
            &coll,
            &inits("0", 1),
            sym("a"),
            sym("x"),
        ));
        // 2 elements x 2 accumulator candidates (init and output).
        assert_eq!(d.probes.len(), 4);
        for env in &d.probes {
            let a = env.lookup(sym("a")).unwrap().as_int().unwrap();
            let x = env.lookup(sym("x")).unwrap().as_int().unwrap();
            assert!(a == 0 || a == 11, "a={a}");
            assert!(x == 4 || x == 7, "x={x}");
        }
    }

    #[test]
    fn recl_trace_probes_bind_real_tails() {
        let (rows, coll) = rows_on_var("l", &[("[4 7]", "[4 7]")]);
        let d = deduction(deduce_recl(
            &rows,
            &coll,
            &inits("[]", 1),
            sym("x"),
            sym("xs"),
            sym("r"),
        ));
        assert!(d
            .probes
            .iter()
            .any(|env| env.lookup(sym("xs")) == Some(&val("[7]"))));
        assert!(d
            .probes
            .iter()
            .any(|env| env.lookup(sym("xs")) == Some(&val("[]"))));
    }

    #[test]
    fn trace_probes_are_capped() {
        let big: String = format!(
            "[{}]",
            (0..40).map(|i| i.to_string()).collect::<Vec<_>>().join(" ")
        );
        let (rows, coll) = rows_on_var("l", &[(big.as_str(), "0")]);
        let d = deduction(deduce_foldl(
            &rows,
            &coll,
            &inits("0", 1),
            sym("a"),
            sym("x"),
        ));
        assert!(d.probes.len() <= 24);
    }

    #[test]
    fn non_list_collection_refutes() {
        let (rows, mut coll) = rows_on_var("l", &[("[1]", "1")]);
        coll.values = vec![Value::Int(3)];
        assert!(matches!(
            deduce_foldl(&rows, &coll, &inits("0", 1), sym("a"), sym("x")),
            Outcome::Refuted
        ));
    }
}
