//! Deduction rules for the tree combinators: `mapt` and `foldt`.

use std::collections::HashMap;

use lambda2_lang::env::Env;
use lambda2_lang::symbol::Symbol;
use lambda2_lang::value::{Tree, Value};

use super::{group_rows_without, spec_or_refute, CollectionArg, Deduction, Outcome};
use crate::spec::ExampleRow;

/// `mapt ◻f c`: output trees must have exactly the collection's shape;
/// `◻f` maps node values pointwise.
pub fn deduce_mapt(rows: &[ExampleRow], coll: &CollectionArg, x: Symbol) -> Outcome {
    let mut fun_rows = Vec::new();
    for (row, cv) in rows.iter().zip(&coll.values) {
        let (Some(tin), Some(tout)) = (cv.as_tree(), row.output.as_tree()) else {
            return Outcome::Refuted;
        };
        if !tin.same_shape(tout) {
            return Outcome::Refuted;
        }
        for (vi, vo) in tin.values().into_iter().zip(tout.values()) {
            fun_rows.push(ExampleRow::new(row.env.bind(x, vi.clone()), vo.clone()));
        }
    }
    match spec_or_refute(fun_rows) {
        Ok(fun_spec) => Outcome::Deduced(Deduction {
            fun_spec,
            probes: Vec::new(),
        }),
        Err(r) => r,
    }
}

/// `foldt ◻f e c` with `◻f(v, rs)` where `rs` is the list of child
/// results.
///
/// * An empty-tree row must equal the (concrete) initial value, else the
///   hypothesis is refuted.
/// * A **leaf** row `{v}` yields `◻f(v, []) = out` unconditionally.
/// * An interior node yields a step row when *every* child subtree appears
///   as a whole-tree example in the same chain group (collection must be a
///   plain variable) — the child rows' outputs are the child results.
pub fn deduce_foldt(
    rows: &[ExampleRow],
    coll: &CollectionArg,
    init: &[Value],
    v: Symbol,
    rs: Symbol,
) -> Outcome {
    for cv in &coll.values {
        if cv.as_tree().is_none() {
            return Outcome::Refuted;
        }
    }

    let mut fun_rows = Vec::new();

    for ((row, cv), iv) in rows.iter().zip(&coll.values).zip(init) {
        let t = cv.as_tree().expect("checked above");
        match t.root() {
            None => {
                if row.output != *iv {
                    return Outcome::Refuted;
                }
            }
            Some(n) if n.children.is_empty() => {
                fun_rows.push(ExampleRow::new(
                    row.env.bind(v, n.value.clone()).bind(rs, Value::nil()),
                    row.output.clone(),
                ));
            }
            Some(_) => {}
        }
    }

    if let Some(var) = coll.var {
        for group in group_rows_without(rows, var) {
            let mut by_tree: HashMap<&Tree, &Value> = HashMap::new();
            for &i in &group {
                let t = coll.values[i].as_tree().expect("checked above");
                by_tree.insert(t, &rows[i].output);
            }
            for &i in &group {
                let t = coll.values[i].as_tree().expect("checked above");
                let Some(n) = t.root() else { continue };
                if n.children.is_empty() {
                    continue; // already handled as a leaf row
                }
                let child_outs: Option<Vec<Value>> = n
                    .children
                    .iter()
                    .map(|c| by_tree.get(c).map(|v| (*v).clone()))
                    .collect();
                if let Some(outs) = child_outs {
                    fun_rows.push(ExampleRow::new(
                        rows[i]
                            .env
                            .bind(v, n.value.clone())
                            .bind(rs, Value::list(outs)),
                        rows[i].output.clone(),
                    ));
                }
            }
        }
    }

    let fun_spec = match spec_or_refute(fun_rows) {
        Ok(s) => s,
        Err(r) => return r,
    };

    // Trace probes (see `deduce::fold`): verification calls the step
    // function at every node with child-result lists we cannot fully
    // predict; the empty list (leaves) and the row output are plausible
    // entries, keeping observational classes verification-grade.
    let mut probes: Vec<Env> = Vec::new();
    'rows: for (row, cv) in rows.iter().zip(&coll.values) {
        let t = cv.as_tree().expect("checked above");
        for node_value in t.values() {
            for rs_candidate in [Value::nil(), Value::list(vec![row.output.clone()])] {
                if probes.len() >= 24 {
                    break 'rows;
                }
                probes.push(row.env.bind(v, node_value.clone()).bind(rs, rs_candidate));
            }
        }
    }
    Outcome::Deduced(Deduction { fun_spec, probes })
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;

    fn deduction(out: Outcome) -> Deduction {
        match out {
            Outcome::Deduced(d) => d,
            Outcome::Refuted => panic!("unexpected refutation"),
        }
    }

    #[test]
    fn mapt_deducts_pointwise_node_examples() {
        let (rows, coll) = rows_on_var("t", &[("{1 {2} {3}}", "{2 {3} {4}}")]);
        let d = deduction(deduce_mapt(&rows, &coll, sym("x")));
        assert_eq!(d.fun_spec.len(), 3);
        for row in d.fun_spec.rows() {
            let x = row.env.lookup(sym("x")).unwrap().as_int().unwrap();
            assert_eq!(row.output, Value::Int(x + 1));
        }
    }

    #[test]
    fn mapt_refutes_on_shape_change() {
        let (rows, coll) = rows_on_var("t", &[("{1 {2}}", "{1}")]);
        assert!(matches!(
            deduce_mapt(&rows, &coll, sym("x")),
            Outcome::Refuted
        ));
        let (rows, coll) = rows_on_var("t", &[("{1 {2}}", "[1 2]")]);
        assert!(matches!(
            deduce_mapt(&rows, &coll, sym("x")),
            Outcome::Refuted
        ));
    }

    #[test]
    fn foldt_base_check_and_leaf_rows() {
        let (rows, coll) = rows_on_var("t", &[("{}", "0"), ("{5}", "5")]);
        let init = vec![val("0"), val("0")];
        let d = deduction(deduce_foldt(&rows, &coll, &init, sym("v"), sym("rs")));
        assert_eq!(d.fun_spec.len(), 1);
        let leaf = &d.fun_spec.rows()[0];
        assert_eq!(leaf.env.lookup(sym("v")), Some(&Value::Int(5)));
        assert_eq!(leaf.env.lookup(sym("rs")), Some(&val("[]")));
        assert_eq!(leaf.output, Value::Int(5));

        // A wrong init is refuted by the {} row.
        let bad = vec![val("9"), val("9")];
        assert!(matches!(
            deduce_foldt(&rows, &coll, &bad, sym("v"), sym("rs")),
            Outcome::Refuted
        ));
    }

    #[test]
    fn foldt_chains_through_subtree_examples() {
        // sumt with subtree-complete examples: {2}, {3}, {1 {2} {3}}.
        let (rows, coll) = rows_on_var("t", &[("{2}", "2"), ("{3}", "3"), ("{1 {2} {3}}", "6")]);
        let init = vec![val("0"); 3];
        let d = deduction(deduce_foldt(&rows, &coll, &init, sym("v"), sym("rs")));
        // Leaves give f(2,[])=2, f(3,[])=3; the root gives f(1,[2 3])=6.
        assert_eq!(d.fun_spec.len(), 3);
        let root = d
            .fun_spec
            .rows()
            .iter()
            .find(|r| r.env.lookup(sym("v")) == Some(&Value::Int(1)))
            .unwrap();
        assert_eq!(root.env.lookup(sym("rs")), Some(&val("[2 3]")));
        assert_eq!(root.output, Value::Int(6));
    }

    #[test]
    fn foldt_partial_subtree_coverage_deduces_nothing_for_the_node() {
        // Root's child {3} has no example row: no step row for the root.
        let (rows, coll) = rows_on_var("t", &[("{2}", "2"), ("{1 {2} {3}}", "6")]);
        let init = vec![val("0"); 2];
        let d = deduction(deduce_foldt(&rows, &coll, &init, sym("v"), sym("rs")));
        assert_eq!(d.fun_spec.len(), 1); // just the leaf {2}
    }

    #[test]
    fn foldt_refutes_non_tree_collection() {
        let (rows, mut coll) = rows_on_var("t", &[("{1}", "1")]);
        coll.values = vec![val("[1]")];
        assert!(matches!(
            deduce_foldt(&rows, &coll, &[val("0")], sym("v"), sym("rs")),
            Outcome::Refuted
        ));
    }

    #[test]
    fn foldt_leaf_rows_do_not_need_variable_collections() {
        let (rows, coll) = rows_on_expr(&[("{7}", "7")]);
        // rows_on_expr binds var "l"; tree value works the same.
        let d = deduction(deduce_foldt(&rows, &coll, &[val("0")], sym("v"), sym("rs")));
        assert_eq!(d.fun_spec.len(), 1);
    }

    #[test]
    fn mapt_conflicting_node_examples_refute() {
        let (rows, coll) = rows_on_var("t", &[("{1 {1}}", "{2 {3}}")]);
        assert!(matches!(
            deduce_mapt(&rows, &coll, sym("x")),
            Outcome::Refuted
        ));
    }
}
