//! Deduction rules for `map` and `filter`.

use std::collections::{HashMap, HashSet};

use lambda2_lang::symbol::Symbol;
use lambda2_lang::value::Value;

use super::{spec_or_refute, CollectionArg, Deduction, Outcome};
use crate::spec::ExampleRow;

/// `map ◻f c`: every row's collection and output must be lists of equal
/// length; `◻f` must send the j-th element to the j-th output.
pub fn deduce_map(rows: &[ExampleRow], coll: &CollectionArg, x: Symbol) -> Outcome {
    let mut fun_rows = Vec::new();
    for (row, cv) in rows.iter().zip(&coll.values) {
        let (Some(xs), Some(ys)) = (cv.as_list(), row.output.as_list()) else {
            return Outcome::Refuted;
        };
        if xs.len() != ys.len() {
            return Outcome::Refuted;
        }
        for (xi, yi) in xs.iter().zip(ys) {
            fun_rows.push(ExampleRow::new(row.env.bind(x, xi.clone()), yi.clone()));
        }
    }
    match spec_or_refute(fun_rows) {
        Ok(fun_spec) => Outcome::Deduced(Deduction {
            fun_spec,
            probes: Vec::new(),
        }),
        Err(r) => r,
    }
}

/// `filter ◻p c`: every row's output must be an order-preserving
/// sub-multiset of the collection. Elements whose occurrences are all kept
/// must satisfy `◻p`; elements entirely absent from the output must
/// falsify it; elements partially kept are ambiguous and contribute no row.
pub fn deduce_filter(rows: &[ExampleRow], coll: &CollectionArg, x: Symbol) -> Outcome {
    let mut fun_rows = Vec::new();
    for (row, cv) in rows.iter().zip(&coll.values) {
        let (Some(xs), Some(ys)) = (cv.as_list(), row.output.as_list()) else {
            return Outcome::Refuted;
        };
        if !is_subsequence(ys, xs) {
            return Outcome::Refuted;
        }
        let mut count_in: HashMap<&Value, usize> = HashMap::new();
        for v in xs {
            *count_in.entry(v).or_default() += 1;
        }
        let mut count_out: HashMap<&Value, usize> = HashMap::new();
        for v in ys {
            *count_out.entry(v).or_default() += 1;
        }
        // Emit rows in first-occurrence order over the collection, never
        // in `count_in` iteration order: HashMap order is seeded per
        // instance, and the leading rows of the deduced spec choose the
        // enumerator's probe environments — a scrambled order makes the
        // whole search (dedup classes, term counts) nondeterministic.
        let mut emitted: HashSet<&Value> = HashSet::new();
        for v in xs {
            if !emitted.insert(v) {
                continue;
            }
            let cin = count_in[v];
            let cout = count_out.get(v).copied().unwrap_or(0);
            if cout == cin {
                fun_rows.push(ExampleRow::new(
                    row.env.bind(x, v.clone()),
                    Value::Bool(true),
                ));
            } else if cout == 0 {
                fun_rows.push(ExampleRow::new(
                    row.env.bind(x, v.clone()),
                    Value::Bool(false),
                ));
            }
            // Partially kept values are ambiguous under duplicates; the
            // final verification still constrains them.
        }
    }
    match spec_or_refute(fun_rows) {
        Ok(fun_spec) => Outcome::Deduced(Deduction {
            fun_spec,
            probes: Vec::new(),
        }),
        Err(r) => r,
    }
}

/// `true` if `sub` is an order-preserving subsequence of `sup`.
fn is_subsequence(sub: &[Value], sup: &[Value]) -> bool {
    let mut it = sup.iter();
    sub.iter().all(|s| it.any(|v| v == s))
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use lambda2_lang::value::Value;

    fn fun_spec(out: Outcome) -> crate::spec::Spec {
        match out {
            Outcome::Deduced(d) => d.fun_spec,
            Outcome::Refuted => panic!("unexpected refutation"),
        }
    }

    #[test]
    fn map_deducts_pointwise_examples() {
        let (rows, coll) = rows_on_var("l", &[("[1 2]", "[2 3]"), ("[5]", "[6]")]);
        let spec = fun_spec(deduce_map(&rows, &coll, sym("x")));
        assert_eq!(spec.len(), 3);
        for row in spec.rows() {
            let x = row.env.lookup(sym("x")).unwrap().as_int().unwrap();
            assert_eq!(row.output, Value::Int(x + 1));
        }
    }

    #[test]
    fn map_refutes_on_length_mismatch() {
        let (rows, coll) = rows_on_var("l", &[("[1 2]", "[2]")]);
        assert!(matches!(
            deduce_map(&rows, &coll, sym("x")),
            Outcome::Refuted
        ));
    }

    #[test]
    fn map_refutes_on_non_list_output() {
        let (rows, coll) = rows_on_var("l", &[("[1 2]", "3")]);
        assert!(matches!(
            deduce_map(&rows, &coll, sym("x")),
            Outcome::Refuted
        ));
    }

    #[test]
    fn map_refutes_on_pointwise_conflict() {
        // Within one row, 1 must map to both 2 and 9 — not a function.
        let (rows, coll) = rows_on_var("l", &[("[1 1]", "[2 9]")]);
        assert!(matches!(
            deduce_map(&rows, &coll, sym("x")),
            Outcome::Refuted
        ));
    }

    #[test]
    fn map_conflicts_across_rows_are_allowed_when_envs_differ() {
        // x=1 maps to 2 under l=[1] and to 9 under l=[1 1]: the function may
        // inspect l, so this is *not* a refutation.
        let (rows, coll) = rows_on_var("l", &[("[1]", "[2]"), ("[1 1]", "[9 9]")]);
        let spec = fun_spec(deduce_map(&rows, &coll, sym("x")));
        assert_eq!(spec.len(), 2);
    }

    #[test]
    fn map_merges_duplicate_deductions() {
        let (rows, coll) = rows_on_var("l", &[("[1 1]", "[2 2]")]);
        let spec = fun_spec(deduce_map(&rows, &coll, sym("x")));
        assert_eq!(spec.len(), 1);
    }

    #[test]
    fn filter_deducts_kept_and_dropped() {
        let (rows, coll) = rows_on_var("l", &[("[1 2 3 4]", "[2 4]")]);
        let spec = fun_spec(deduce_filter(&rows, &coll, sym("x")));
        assert_eq!(spec.len(), 4);
        for row in spec.rows() {
            let x = row.env.lookup(sym("x")).unwrap().as_int().unwrap();
            assert_eq!(row.output, Value::Bool(x % 2 == 0), "x={x}");
        }
    }

    #[test]
    fn filter_rows_follow_collection_order() {
        // Regression: rows used to be emitted in HashMap iteration order,
        // which is seeded per instance — downstream, the leading spec rows
        // pick the enumerator's probe environments, so a scrambled order
        // made term counts flap between otherwise identical runs.
        let (rows, coll) = rows_on_var("l", &[("[4 1 3 2]", "[4 2]")]);
        let spec = fun_spec(deduce_filter(&rows, &coll, sym("x")));
        let got: Vec<(i64, Value)> = spec
            .rows()
            .iter()
            .map(|r| {
                (
                    r.env.lookup(sym("x")).unwrap().as_int().unwrap(),
                    r.output.clone(),
                )
            })
            .collect();
        assert_eq!(
            got,
            vec![
                (4, Value::Bool(true)),
                (1, Value::Bool(false)),
                (3, Value::Bool(false)),
                (2, Value::Bool(true)),
            ]
        );
    }

    #[test]
    fn filter_refutes_on_reordering() {
        let (rows, coll) = rows_on_var("l", &[("[1 2]", "[2 1]")]);
        assert!(matches!(
            deduce_filter(&rows, &coll, sym("x")),
            Outcome::Refuted
        ));
    }

    #[test]
    fn filter_refutes_on_foreign_elements() {
        let (rows, coll) = rows_on_var("l", &[("[1 2]", "[3]")]);
        assert!(matches!(
            deduce_filter(&rows, &coll, sym("x")),
            Outcome::Refuted
        ));
    }

    #[test]
    fn filter_refutes_on_multiplicity_increase() {
        let (rows, coll) = rows_on_var("l", &[("[1 2]", "[1 1]")]);
        assert!(matches!(
            deduce_filter(&rows, &coll, sym("x")),
            Outcome::Refuted
        ));
    }

    #[test]
    fn filter_skips_ambiguous_duplicates() {
        // One of the two 5s is kept: p(5) is ambiguous, p(7) is determined.
        let (rows, coll) = rows_on_var("l", &[("[5 7 5]", "[5]")]);
        let spec = fun_spec(deduce_filter(&rows, &coll, sym("x")));
        assert_eq!(spec.len(), 1);
        let row = &spec.rows()[0];
        assert_eq!(row.env.lookup(sym("x")), Some(&Value::Int(7)));
        assert_eq!(row.output, Value::Bool(false));
    }

    #[test]
    fn filter_refutes_on_cross_row_conflicts() {
        // Row 1 keeps every 3; row 2 drops every 3 under the same env? No —
        // envs differ (l differs), so no conflict: both rows deduce fine.
        let (rows, coll) = rows_on_var("l", &[("[3]", "[3]"), ("[3 4]", "[4]")]);
        // x=3 with l=[3] → true; x=3 with l=[3 4] → false; x=4 → true.
        // Envs differ in l, so this is consistent (the predicate may
        // inspect l): three deduced rows, no refutation.
        let spec = fun_spec(deduce_filter(&rows, &coll, sym("x")));
        assert_eq!(spec.len(), 3);
    }

    #[test]
    fn subsequence_checker() {
        let v = |s: &str| val(s).as_list().unwrap().to_vec();
        assert!(is_subsequence(&v("[1 3]"), &v("[1 2 3]")));
        assert!(is_subsequence(&v("[]"), &v("[1]")));
        assert!(!is_subsequence(&v("[3 1]"), &v("[1 2 3]")));
        assert!(!is_subsequence(&v("[1 1]"), &v("[1]")));
    }
}
