//! Deduction rules.
//!
//! Given a hypothesis `C ◻f [e] c` (combinator `C`, function hole,
//! concrete initial-value candidate `e` for folds, concrete collection
//! argument `c`), a deduction rule inspects the hole's example rows and
//! either
//!
//! * **refutes** the hypothesis — no completion can satisfy the rows
//!   (e.g. `map` with mismatched input/output lengths, or a fold whose
//!   initial value disagrees with an empty-collection row), or
//! * **infers** new example rows for `◻f`, turning one synthesis problem
//!   into smaller independent subproblems — plus *trace probes* (see
//!   [`Deduction::probes`]).
//!
//! Every inferred row is a *necessary* condition: any completion of the
//! hypothesis satisfying the parent rows satisfies the inferred rows
//! (a property test in `tests/` checks this on random programs). Inferred
//! row sets that are not functionally consistent refute the hypothesis.
//!
//! Final verification of complete programs never depends on deduction, so
//! the synthesizer is sound even where a rule chooses to infer nothing.

mod fold;
mod list;
mod tree;

use lambda2_lang::ast::Comb;
use lambda2_lang::symbol::Symbol;
use lambda2_lang::value::Value;

use crate::govern::{Budget, BudgetExceeded};
use crate::spec::{ExampleRow, Spec};

/// The evaluated collection argument of a combinator hypothesis.
#[derive(Clone, Debug)]
pub struct CollectionArg {
    /// The collection's value in each example row, aligned with the rows.
    pub values: Vec<Value>,
    /// `Some(v)` when the collection expression is exactly the variable `v`;
    /// fold chain-deduction (tail/prefix/subtree lookups across rows) is
    /// only sound in that case.
    pub var: Option<Symbol>,
}

/// Result of running a deduction rule.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// No completion of the hypothesis can satisfy the rows.
    Refuted,
    /// Inferred specifications for the hypothesis's holes.
    Deduced(Deduction),
}

/// Inferred sub-specifications.
#[derive(Clone, Debug)]
pub struct Deduction {
    /// Rows for the function hole. Environments are the parent rows'
    /// environments extended with the lambda binders.
    pub fun_spec: Spec,
    /// *Trace probes*: environments (without required outputs) at which
    /// final verification will evaluate the function hole — e.g. every
    /// (element, plausible-accumulator) pair of a fold. They sharpen the
    /// enumerator's observational-equivalence classes to match what
    /// verification can distinguish; without them, a sparse deduced spec
    /// lets the true step function be deduplicated into a
    /// verification-failing representative.
    pub probes: Vec<lambda2_lang::env::Env>,
}

impl Deduction {
    fn empty() -> Deduction {
        Deduction {
            fun_spec: Spec::empty(),
            probes: Vec::new(),
        }
    }
}

/// Runs the deduction rule for `comb`.
///
/// `rows` are the hole's example rows; `coll` is the evaluated collection
/// argument (one value per row); `binders` are the lambda binder symbols,
/// of length `comb.fun_arity()`, in the combinator's argument order.
///
/// For folds, `init` carries the per-row value of the concrete
/// initial-value candidate: the rule *refutes* the hypothesis when an
/// empty-collection row disagrees with it, and singleton collections yield
/// step-function rows (`foldl ◻f e [x] = ◻f(e, x)`).
///
/// When `enabled` is `false` (the paper's deduction ablation), every
/// structural check is skipped and empty specs are returned — hypotheses
/// are then pruned only by types and final verification.
///
/// # Panics
///
/// Debug-asserts that `binders`/`coll`/`init` have the right shapes, and
/// that `init` is present exactly for the fold combinators.
pub fn deduce(
    comb: Comb,
    rows: &[ExampleRow],
    coll: &CollectionArg,
    init: Option<&[Value]>,
    binders: &[Symbol],
    enabled: bool,
) -> Outcome {
    debug_assert_eq!(binders.len(), comb.fun_arity());
    debug_assert_eq!(coll.values.len(), rows.len());
    debug_assert_eq!(init.is_some(), comb.init_index().is_some());
    if let Some(init) = init {
        debug_assert_eq!(init.len(), rows.len());
    }
    if !enabled {
        return Outcome::Deduced(Deduction::empty());
    }
    match comb {
        Comb::Map => list::deduce_map(rows, coll, binders[0]),
        Comb::Filter => list::deduce_filter(rows, coll, binders[0]),
        Comb::Foldl => fold::deduce_foldl(
            rows,
            coll,
            init.expect("fold has init"),
            binders[0],
            binders[1],
        ),
        Comb::Foldr => fold::deduce_foldr(
            rows,
            coll,
            init.expect("fold has init"),
            binders[0],
            binders[1],
        ),
        Comb::Recl => fold::deduce_recl(
            rows,
            coll,
            init.expect("fold has init"),
            binders[0],
            binders[1],
            binders[2],
        ),
        Comb::Mapt => tree::deduce_mapt(rows, coll, binders[0]),
        Comb::Foldt => tree::deduce_foldt(
            rows,
            coll,
            init.expect("fold has init"),
            binders[0],
            binders[1],
        ),
    }
}

/// [`deduce`] under a resource [`Budget`]: charges one budget tick per
/// example row (rule work is linear-ish in the rows) before dispatching,
/// so a deadline or cancellation is observed between rule invocations —
/// inside the search's deduction phase — rather than only at queue pops.
///
/// # Errors
///
/// Propagates the budget's (latched) [`BudgetExceeded`] verdict; no rule
/// runs in that case.
pub fn deduce_within(
    comb: Comb,
    rows: &[ExampleRow],
    coll: &CollectionArg,
    init: Option<&[Value]>,
    binders: &[Symbol],
    enabled: bool,
    budget: &Budget,
) -> Result<Outcome, BudgetExceeded> {
    for _ in 0..rows.len().max(1) {
        budget.tick()?;
    }
    Ok(deduce(comb, rows, coll, init, binders, enabled))
}

/// Builds a [`Spec`], mapping inconsistency to refutation.
fn spec_or_refute(rows: Vec<ExampleRow>) -> Result<Spec, Outcome> {
    Spec::new(rows).map_err(|_| Outcome::Refuted)
}

/// Groups row indices by their environment with `var`'s binding removed.
/// Rows in the same group differ only in the collection variable, which is
/// exactly when cross-row chain deduction is sound.
fn group_rows_without(rows: &[ExampleRow], var: Symbol) -> Vec<Vec<usize>> {
    use std::collections::HashMap;
    let mut groups: HashMap<Vec<(Symbol, Value)>, Vec<usize>> = HashMap::new();
    let mut order: Vec<Vec<(Symbol, Value)>> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let mut key = row.env.fingerprint();
        key.retain(|(s, _)| *s != var);
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(i);
    }
    order
        .into_iter()
        .map(|k| groups.remove(&k).unwrap())
        .collect()
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for the rule tests.
    use lambda2_lang::env::Env;
    use lambda2_lang::parser::parse_value;
    use lambda2_lang::symbol::Symbol;
    use lambda2_lang::value::Value;

    use super::CollectionArg;
    use crate::spec::ExampleRow;

    /// Builds rows binding `l` to each input and the matching collection
    /// argument for the variable `l` itself.
    pub fn rows_on_var(var: &str, pairs: &[(&str, &str)]) -> (Vec<ExampleRow>, CollectionArg) {
        let v = Symbol::intern(var);
        let mut rows = Vec::new();
        let mut values = Vec::new();
        for (input, output) in pairs {
            let iv = parse_value(input).unwrap();
            let ov = parse_value(output).unwrap();
            rows.push(ExampleRow::new(Env::empty().bind(v, iv.clone()), ov));
            values.push(iv);
        }
        (
            rows,
            CollectionArg {
                values,
                var: Some(v),
            },
        )
    }

    /// Like [`rows_on_var`] but the collection is treated as a non-variable
    /// expression (chain deduction disabled).
    pub fn rows_on_expr(pairs: &[(&str, &str)]) -> (Vec<ExampleRow>, CollectionArg) {
        let (rows, coll) = rows_on_var("l", pairs);
        (
            rows,
            CollectionArg {
                values: coll.values,
                var: None,
            },
        )
    }

    pub fn val(s: &str) -> Value {
        parse_value(s).unwrap()
    }

    pub fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    #[test]
    fn disabled_deduction_returns_empty_specs() {
        let (rows, coll) = rows_on_var("l", &[("[1 2]", "[2 3]")]);
        let out = deduce(Comb::Map, &rows, &coll, None, &[sym("x")], false);
        match out {
            Outcome::Deduced(d) => assert!(d.fun_spec.is_empty()),
            Outcome::Refuted => panic!("disabled deduction must not refute"),
        }
        // Even a mismatching init is not checked when deduction is off.
        let init = vec![val("[99]")];
        let out = deduce(
            Comb::Foldl,
            &rows,
            &coll,
            Some(&init),
            &[sym("a"), sym("x")],
            false,
        );
        match out {
            Outcome::Deduced(d) => assert!(d.fun_spec.is_empty()),
            Outcome::Refuted => panic!("disabled deduction must not refute"),
        }
    }

    #[test]
    fn deduce_within_respects_a_tripped_budget() {
        let (rows, coll) = rows_on_var("l", &[("[1 2]", "[2 3]")]);
        let budget = Budget::unlimited();
        let out = deduce_within(Comb::Map, &rows, &coll, None, &[sym("x")], true, &budget)
            .expect("unlimited budget");
        assert!(matches!(out, Outcome::Deduced(_)));

        budget.force_expire();
        let err = deduce_within(Comb::Map, &rows, &coll, None, &[sym("x")], true, &budget)
            .expect_err("expired budget refuses to run");
        assert_eq!(err, BudgetExceeded::Deadline);
    }

    #[test]
    fn grouping_splits_on_other_bindings() {
        use lambda2_lang::env::Env;
        let l = sym("l");
        let y = sym("y");
        let mk = |lv: &str, yv: i64, out: i64| {
            ExampleRow::new(
                Env::empty()
                    .bind(l, val(lv))
                    .bind(y, lambda2_lang::value::Value::Int(yv)),
                lambda2_lang::value::Value::Int(out),
            )
        };
        let rows = vec![mk("[1]", 0, 1), mk("[]", 0, 0), mk("[1]", 9, 10)];
        let groups = group_rows_without(&rows, l);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], vec![0, 1]);
        assert_eq!(groups[1], vec![2]);
    }
}
