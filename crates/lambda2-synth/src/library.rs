//! Component libraries.
//!
//! A [`Library`] fixes the vocabulary the synthesizer may use: which
//! first-order operators, which higher-order combinators, and which literal
//! constants. Problems can override the default — e.g. the `append`
//! benchmark removes the `cat` builtin so the synthesizer must *discover*
//! concatenation as `(foldr (lambda (x a) (cons x a)) y x)`, exactly as in
//! the paper's evaluation.

use lambda2_lang::ast::{Comb, Op};
use lambda2_lang::value::{Tree, Value};

use crate::cost::CostModel;

/// The component vocabulary plus the cost model.
#[derive(Clone, Debug)]
pub struct Library {
    ops: Vec<Op>,
    combs: Vec<Comb>,
    constants: Vec<Value>,
    costs: CostModel,
}

impl Default for Library {
    /// The default λ² library: every operator except `last` (redundant),
    /// `member` (makes `dedup` trivial) and the pair operators (pair
    /// problems opt in via [`Library::with_ops`]); every combinator; and
    /// the constants `0`, `1`, `true`, `false`, `[]` and `{}`.
    fn default() -> Library {
        let ops = Op::ALL
            .iter()
            .copied()
            .filter(|op| !matches!(op, Op::Last | Op::Member | Op::MkPair | Op::Fst | Op::Snd))
            .collect();
        Library {
            ops,
            combs: Comb::ALL.to_vec(),
            constants: vec![
                Value::Int(0),
                Value::Int(1),
                Value::Bool(true),
                Value::Bool(false),
                Value::nil(),
                Value::Tree(Tree::empty()),
            ],
            costs: CostModel::default(),
        }
    }
}

impl Library {
    /// Starts from the default library.
    pub fn new() -> Library {
        Library::default()
    }

    /// Removes operators from the library (chainable).
    pub fn without_ops(mut self, remove: &[Op]) -> Library {
        self.ops.retain(|op| !remove.contains(op));
        self
    }

    /// Adds operators to the library (chainable, deduplicated).
    pub fn with_ops(mut self, add: &[Op]) -> Library {
        for op in add {
            if !self.ops.contains(op) {
                self.ops.push(*op);
            }
        }
        self
    }

    /// Removes combinators from the library (chainable).
    pub fn without_combs(mut self, remove: &[Comb]) -> Library {
        self.combs.retain(|c| !remove.contains(c));
        self
    }

    /// Adds combinators to the library (chainable, deduplicated).
    pub fn with_combs(mut self, add: &[Comb]) -> Library {
        for c in add {
            if !self.combs.contains(c) {
                self.combs.push(*c);
            }
        }
        self
    }

    /// Replaces the constant pool (chainable).
    pub fn with_constants(mut self, constants: Vec<Value>) -> Library {
        self.constants = constants;
        self
    }

    /// Adds a constant if not already present (chainable).
    pub fn with_constant(mut self, c: Value) -> Library {
        if !self.constants.contains(&c) {
            self.constants.push(c);
        }
        self
    }

    /// Replaces the cost model (chainable).
    pub fn with_costs(mut self, costs: CostModel) -> Library {
        self.costs = costs;
        self
    }

    /// Available first-order operators, in deterministic order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Available combinators, in deterministic order.
    pub fn combs(&self) -> &[Comb] {
        &self.combs
    }

    /// Available literal constants.
    pub fn constants(&self) -> &[Value] {
        &self.constants
    }

    /// The cost model.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_library_has_core_vocabulary() {
        let lib = Library::default();
        assert!(lib.ops().contains(&Op::Cons));
        assert!(lib.ops().contains(&Op::Cat));
        assert!(!lib.ops().contains(&Op::Last));
        assert!(!lib.ops().contains(&Op::Member));
        assert_eq!(lib.combs().len(), Comb::ALL.len());
        assert!(lib.constants().contains(&Value::Int(0)));
    }

    #[test]
    fn without_ops_removes() {
        let lib = Library::default().without_ops(&[Op::Cat]);
        assert!(!lib.ops().contains(&Op::Cat));
        assert!(lib.ops().contains(&Op::Cons));
    }

    #[test]
    fn with_ops_adds_once() {
        let lib = Library::default().with_ops(&[Op::Last, Op::Last]);
        assert_eq!(lib.ops().iter().filter(|o| **o == Op::Last).count(), 1);
    }

    #[test]
    fn constants_are_editable() {
        let lib = Library::default()
            .with_constants(vec![Value::Int(7)])
            .with_constant(Value::Int(7))
            .with_constant(Value::Int(9));
        assert_eq!(lib.constants(), &[Value::Int(7), Value::Int(9)]);
    }

    #[test]
    fn without_combs_removes() {
        let lib = Library::default().without_combs(&[Comb::Recl]);
        assert!(!lib.combs().contains(&Comb::Recl));
        assert!(lib.combs().contains(&Comb::Map));
    }
}
