//! Parallel synthesis: a hand-rolled worker pool for multi-problem
//! batches and a within-problem *portfolio racer*.
//!
//! The engine's data spine (`Problem`/`Library`/`Value`/`Expr`) shares
//! structure via `Arc`, so problems and reports are `Send` and cross
//! threads directly — workers borrow the very same `Problem` the caller
//! holds, and results come back as ordinary [`SearchReport`]s. (Earlier
//! revisions smuggled work across threads as string-rendered specs that
//! each worker re-parsed; the arena/`Arc` spine made that layer — and its
//! render→re-parse lossiness hazard — unnecessary.) The symbol interner
//! is a global mutex, so symbols stay consistent across threads.
//!
//! Two drivers build on the [`run_pool`] primitive (std `thread` + `mpsc`;
//! the container has no crates.io access, so no rayon):
//!
//! * [`synthesize_batch`] — fans independent problems across workers,
//!   each under its own [`Budget`] with panic isolation; outputs are
//!   returned in submission order, so batch output is deterministic no
//!   matter how the scheduler interleaves workers.
//! * [`portfolio_report`] — races the retry ladder's rungs (full config,
//!   degraded caps, enumerative baseline) *concurrently*. The winner is
//!   chosen by rung priority — exactly the order the sequential ladder
//!   consults them — so the reported program, cost, attempt log, and
//!   merged stats are identical to `Synthesizer::synthesize_report` with
//!   the ladder enabled; only wall-clock time changes. Irrelevant rungs
//!   are cancelled through shared [`CancelToken`]s and their partial
//!   results discarded, never merged.
//!
//! For parallelism *within* a single search (one shared queue, verification
//! fan-out) see [`crate::search::SearchOptions::jobs`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use crate::baseline::{synthesize_baseline_within, BaselineOptions};
use crate::govern::{panic_message, Attempt, Budget, CancelToken, Rung, SearchReport};
use crate::obs::json::Json;
use crate::obs::{CollectTracer, NoopTracer, TraceEvent, Tracer};
use crate::problem::Problem;
use crate::search::{search_governed, SearchOptions, Synthesis};
use crate::stats::Stats;
use crate::synthesizer::Synthesizer;

// ---------------------------------------------------------------------------
// The worker pool.
// ---------------------------------------------------------------------------

/// One item's result from [`run_pool`].
#[derive(Debug)]
pub struct PoolItem<R> {
    /// Which worker (0-based) processed the item.
    pub worker: usize,
    /// The closure's result, or the rendered panic message if it crashed.
    /// A panic is isolated to its item: the worker survives and moves on
    /// to the next job.
    pub result: Result<R, String>,
}

/// Resolves a requested `--jobs` count: `0` means one worker per
/// available CPU.
pub fn effective_jobs(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Fans `items` across `jobs` worker threads (std `thread` + `mpsc`),
/// calling `f(worker, index, item)` for each, and returns the results in
/// the original item order — output is deterministic regardless of how
/// the scheduler interleaves workers. Panics inside `f` are caught per
/// item. All workers are joined before this returns.
pub fn run_pool<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<PoolItem<R>>
where
    T: Send,
    R: Send,
    F: Fn(usize, usize, T) -> R + Sync,
{
    let n = items.len();
    let jobs = effective_jobs(jobs).min(n.max(1));
    let (job_tx, job_rx) = mpsc::channel::<(usize, T)>();
    for item in items.into_iter().enumerate() {
        job_tx.send(item).expect("receiver outlives the send loop");
    }
    drop(job_tx);
    // Workers share the receiving end behind a mutex: each locks just long
    // enough to pull one job, giving contention-free dynamic load
    // balancing without a work-stealing deque.
    let job_rx = Mutex::new(job_rx);
    let (res_tx, res_rx) = mpsc::channel::<(usize, PoolItem<R>)>();
    let mut out: Vec<Option<PoolItem<R>>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for worker in 0..jobs {
            let job_rx = &job_rx;
            let res_tx = res_tx.clone();
            let f = &f;
            scope.spawn(move || loop {
                let job = job_rx
                    .lock()
                    .expect("no panics while holding the job lock")
                    .recv();
                let Ok((index, item)) = job else { break };
                let result = catch_unwind(AssertUnwindSafe(|| f(worker, index, item)))
                    .map_err(|payload| panic_message(&*payload));
                let _ = res_tx.send((index, PoolItem { worker, result }));
            });
        }
        drop(res_tx);
        for (index, item) in res_rx {
            out[index] = Some(item);
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every job reports exactly once"))
        .collect()
}

// ---------------------------------------------------------------------------
// Multi-problem batches.
// ---------------------------------------------------------------------------

/// Which engine a [`ParTask`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParEngine {
    /// The governed best-first search (`deduction` off in the task's
    /// options gives the ablation).
    Search,
    /// The pure enumerative baseline.
    Baseline,
}

/// One unit of work for [`synthesize_batch`].
#[derive(Clone, Debug)]
pub struct ParTask {
    /// The problem to solve (`Arc`-spined, shared across threads as-is).
    pub spec: Problem,
    /// Fully resolved search options (the worker applies them verbatim).
    pub options: SearchOptions,
    /// Which engine to run.
    pub engine: ParEngine,
    /// Race the retry-ladder rungs concurrently ([`portfolio_report`])
    /// instead of running the options as given. `Search` engine only.
    pub portfolio: bool,
    /// Collect trace events for the caller (they come back in
    /// [`ParOutcome::events`], ready for worker-tagged merging).
    pub collect_trace: bool,
}

/// One task's outcome from [`synthesize_batch`], in submission order.
#[derive(Debug)]
pub struct ParOutcome {
    /// Which worker ran the task.
    pub worker: usize,
    /// The problem name (echoed so callers need not keep the task list).
    pub name: String,
    /// Number of examples in the problem.
    pub examples: usize,
    /// The report, or the rendered panic message.
    pub result: Result<SearchReport, String>,
    /// Trace events, when the task asked for them (empty otherwise).
    pub events: Vec<TraceEvent>,
    /// Time the task spent queued before a worker picked it up. Also
    /// recorded in the report's `queue_wait_us` metric (when the task's
    /// options enable metrics) so batch p99s can attribute scheduling
    /// delay separately from search time.
    pub queue_wait: Duration,
}

/// Runs `tasks` across `jobs` workers and returns outcomes in submission
/// order. Each task gets its own [`Budget`]; a panic anywhere inside one
/// task's engine is isolated into that task's outcome. Per-task results
/// and stats are identical to running the same task sequentially —
/// workers share nothing but the (thread-safe) symbol interner.
pub fn synthesize_batch(tasks: Vec<ParTask>, jobs: usize) -> Vec<ParOutcome> {
    let names: Vec<(String, usize)> = tasks
        .iter()
        .map(|t| (t.spec.name().to_owned(), t.spec.examples().len()))
        .collect();
    // All tasks are submitted before any worker starts; the gap between
    // this instant and a worker's pickup is pure scheduling delay.
    let submitted = Instant::now();
    let results = run_pool(tasks, jobs, |_worker, _index, task| {
        let queue_wait = submitted.elapsed();
        let metrics = task.options.metrics;
        let (mut report, events) = run_task(&task);
        if metrics {
            report
                .stats
                .metrics
                .queue_wait_us
                .record(queue_wait.as_micros() as u64);
        }
        (report, events, queue_wait)
    });
    results
        .into_iter()
        .zip(names)
        .map(|(item, (name, examples))| match item.result {
            Ok((report, events, queue_wait)) => ParOutcome {
                worker: item.worker,
                name,
                examples,
                result: Ok(report),
                events,
                queue_wait,
            },
            Err(msg) => ParOutcome {
                worker: item.worker,
                name,
                examples,
                result: Err(msg),
                events: Vec::new(),
                queue_wait: Duration::ZERO,
            },
        })
        .collect()
}

/// Runs one task on the current thread (panics propagate to the pool's
/// per-item isolation).
fn run_task(task: &ParTask) -> (SearchReport, Vec<TraceEvent>) {
    let problem = &task.spec;
    let mut tracer = CollectTracer::default();
    let mut noop = NoopTracer;
    let report = match task.engine {
        ParEngine::Search => {
            let synthesizer = Synthesizer::with_options(task.options.clone());
            let tr: &mut dyn Tracer = if task.collect_trace {
                &mut tracer
            } else {
                &mut noop
            };
            if task.portfolio {
                portfolio_report_traced(problem, synthesizer.options(), tr)
            } else {
                synthesizer.synthesize_report_traced(problem, tr)
            }
        }
        ParEngine::Baseline => {
            let bopts = BaselineOptions {
                timeout: task.options.timeout,
                max_cost: task.options.max_cost,
                ..BaselineOptions::default()
            };
            let budget = Budget::new(task.options.timeout, task.options.max_overshoot);
            let start = Instant::now();
            let outcome = synthesize_baseline_within(problem, &bopts, &budget);
            let elapsed = start.elapsed();
            let stats = outcome
                .as_ref()
                .map(|s| s.stats.clone())
                .unwrap_or_default();
            SearchReport {
                attempts: vec![Attempt {
                    rung: Rung::Baseline,
                    error: outcome.as_ref().err().cloned(),
                    elapsed,
                }],
                outcome,
                frontier: Vec::new(),
                stats,
                elapsed,
                budget: budget.snapshot(),
            }
        }
    };
    (report, tracer.events)
}

/// Tags one trace event with the problem and worker that produced it —
/// the per-event JSON object gains leading `problem` and `worker` fields,
/// so merged multi-problem JSONL streams stay attributable.
pub fn tagged_event_json(event: &TraceEvent, problem: &str, worker: usize) -> Json {
    match event.to_json() {
        Json::Obj(mut pairs) => {
            pairs.insert(0, ("worker".to_owned(), worker.into()));
            pairs.insert(0, ("problem".to_owned(), Json::str(problem)));
            Json::Obj(pairs)
        }
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Within-problem portfolio racing.
// ---------------------------------------------------------------------------

/// One rung's complete result, shipped back from its racing thread.
struct RungRun {
    report: SearchReport,
    events: Vec<TraceEvent>,
    panic: Option<String>,
}

/// [`portfolio_report_traced`] without telemetry.
pub fn portfolio_report(problem: &Problem, options: &SearchOptions) -> SearchReport {
    portfolio_report_traced(problem, options, &mut NoopTracer)
}

/// Races the retry ladder's three rungs — the caller's options, the
/// shared [`SearchOptions::degraded`] caps, and the enumerative baseline —
/// on concurrent threads, each under its own [`Budget`] wired to a shared
/// [`CancelToken`].
///
/// **Winner selection preserves the sequential answer.** The rungs are
/// consulted in ladder priority order, not finish order: the full rung's
/// verdict always decides first (its success — the minimal-cost program —
/// or a non-resource failure ends the race outright); the degraded rung
/// matters only if the full rung failed on a resource limit; the baseline
/// only if the degraded rung also failed. Lower rungs can therefore never
/// outrun the full configuration into the report, and the returned
/// program, cost, attempt log, and merged stats are identical to
/// `Synthesizer::synthesize_report` with `retry_ladder` enabled — rungs
/// the sequential ladder would not have run are cancelled and their
/// partial results discarded, never merged. Only wall-clock time differs:
/// the race costs at most one deadline instead of three.
///
/// Trace events from the winning path are replayed into `tracer` in
/// ladder order after the race, so traces are deterministic too.
pub fn portfolio_report_traced(
    problem: &Problem,
    options: &SearchOptions,
    tracer: &mut dyn Tracer,
) -> SearchReport {
    let overall = Instant::now();
    let collect = tracer.enabled();
    let full_options = SearchOptions {
        retry_ladder: false,
        ..options.clone()
    };
    let degraded_options = options.degraded();
    let tokens: [CancelToken; 3] = [CancelToken::new(), CancelToken::new(), CancelToken::new()];
    let mut runs: [Option<RungRun>; 3] = [None, None, None];

    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, RungRun)>();
        for (i, rung) in [Rung::Full, Rung::Degraded, Rung::Baseline]
            .into_iter()
            .enumerate()
        {
            let tx = tx.clone();
            let token = tokens[i].clone();
            let rung_options = match rung {
                Rung::Full => &full_options,
                Rung::Degraded => &degraded_options,
                Rung::Baseline => options,
            };
            scope.spawn(move || {
                let run = run_rung(problem, rung, rung_options, &token, collect);
                let _ = tx.send((i, run));
            });
        }
        drop(tx);
        while let Ok((i, run)) = rx.recv() {
            runs[i] = Some(run);
            // A successful degraded rung makes the baseline irrelevant no
            // matter what the full rung does: either the full rung wins
            // outright, or the ladder stops at the degraded success.
            if runs[1]
                .as_ref()
                .is_some_and(|d| d.panic.is_none() && d.report.outcome.is_ok())
            {
                tokens[2].cancel();
            }
            // Once the full rung reports anything but a retryable resource
            // failure, the race is decided: cancel both fallback lanes.
            if let Some(full) = &runs[0] {
                let retryable = full.panic.is_none()
                    && matches!(&full.report.outcome, Err(e) if e.is_resource_limit());
                if !retryable {
                    tokens[1].cancel();
                    tokens[2].cancel();
                }
            }
        }
    });

    let full = runs[0].as_ref().expect("full rung always reports");
    let retryable =
        full.panic.is_none() && matches!(&full.report.outcome, Err(e) if e.is_resource_limit());

    // The rung path the sequential ladder would have walked.
    let mut path: Vec<(usize, Rung)> = vec![(0, Rung::Full)];
    if retryable {
        path.push((1, Rung::Degraded));
        let degraded = runs[1].as_ref().expect("degraded rung always reports");
        if degraded.panic.is_some() || degraded.report.outcome.is_err() {
            path.push((2, Rung::Baseline));
        }
    }

    // Replay the winning path's telemetry in ladder order (deterministic,
    // identical to the sequential trace), then propagate any panic on the
    // path — exactly where the sequential ladder would have crashed.
    if collect {
        for (i, _) in &path {
            for event in &runs[*i].as_ref().expect("path rung reported").events {
                tracer.emit(event.clone());
            }
        }
    }
    for (i, _) in &path {
        if let Some(msg) = &runs[*i].as_ref().expect("path rung reported").panic {
            panic!("{}", msg.clone());
        }
    }

    // Merge stats and the attempt log along the path, mirroring the
    // sequential ladder (which skips a failed baseline's stats).
    let mut stats = Stats::default();
    let mut attempts = Vec::new();
    for (i, rung) in &path {
        let run = runs[*i].as_ref().expect("path rung reported");
        if *rung != Rung::Baseline || run.report.outcome.is_ok() {
            stats.merge(&run.report.stats);
        }
        attempts.push(Attempt {
            rung: *rung,
            error: run.report.outcome.as_ref().err().cloned(),
            elapsed: run.report.elapsed,
        });
    }

    // The winner is the first rung in priority order that succeeded; if
    // none did, the full rung's error and frontier describe the failure.
    let winner = path
        .iter()
        .find(|(i, _)| {
            runs[*i]
                .as_ref()
                .expect("path rung reported")
                .report
                .outcome
                .is_ok()
        })
        .map(|(i, _)| *i);
    let (outcome, frontier) = match winner {
        Some(i) => {
            let run = runs[i].as_ref().expect("winner reported");
            let win: &Synthesis = run.report.outcome.as_ref().expect("winner succeeded");
            (Ok(win.clone()), Vec::new())
        }
        None => (
            Err(full
                .report
                .outcome
                .as_ref()
                .err()
                .cloned()
                .expect("no winner implies the full rung failed")),
            full.report.frontier.clone(),
        ),
    };

    SearchReport {
        outcome,
        frontier,
        stats,
        elapsed: overall.elapsed(),
        budget: full.report.budget,
        attempts,
    }
}

/// Runs one rung of the portfolio on the current thread, catching panics
/// into the result so the coordinator can decide whether they matter
/// (a cancelled loser's crash is discarded; a winner-path crash
/// propagates).
fn run_rung(
    problem: &Problem,
    rung: Rung,
    options: &SearchOptions,
    token: &CancelToken,
    collect: bool,
) -> RungRun {
    let start = Instant::now();
    let caught = catch_unwind(AssertUnwindSafe(|| match rung {
        Rung::Full | Rung::Degraded => {
            let budget = Budget::for_search(options).with_cancel(token);
            let mut tracer = CollectTracer::default();
            let mut noop = NoopTracer;
            let report = {
                let tr: &mut dyn Tracer = if collect { &mut tracer } else { &mut noop };
                search_governed(problem, options, &budget, tr)
            };
            RungRun {
                report,
                events: tracer.events,
                panic: None,
            }
        }
        Rung::Baseline => {
            // Mirrors the sequential ladder's third rung: wall-clock
            // and fuel budgets only, defaults otherwise.
            let bopts = BaselineOptions {
                timeout: options.timeout,
                eval_fuel: options.eval_fuel,
                ..BaselineOptions::default()
            };
            let budget = Budget::new(options.timeout, options.max_overshoot).with_cancel(token);
            let outcome = synthesize_baseline_within(problem, &bopts, &budget);
            let elapsed = start.elapsed();
            RungRun {
                report: SearchReport {
                    stats: outcome
                        .as_ref()
                        .map(|s| s.stats.clone())
                        .unwrap_or_default(),
                    outcome,
                    frontier: Vec::new(),
                    elapsed,
                    budget: budget.snapshot(),
                    attempts: Vec::new(),
                },
                events: Vec::new(),
                panic: None,
            }
        }
    }));
    caught.unwrap_or_else(|payload| RungRun {
        // Placeholder report; the coordinator checks `panic` first and
        // never reads a panicked rung's outcome.
        report: SearchReport {
            outcome: Err(crate::search::SynthError::Cancelled),
            frontier: Vec::new(),
            stats: Stats::default(),
            elapsed: start.elapsed(),
            budget: Budget::unlimited().snapshot(),
            attempts: Vec::new(),
        },
        events: Vec::new(),
        panic: Some(panic_message(&*payload)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_problem() -> Problem {
        Problem::builder("sum")
            .param("l", "[int]")
            .returns("int")
            .example(&["[]"], "0")
            .example(&["[1]"], "1")
            .example(&["[1 2]"], "3")
            .example(&["[1 2 3]"], "6")
            .build()
            .unwrap()
    }

    #[test]
    fn pool_preserves_order_and_isolates_panics() {
        let items: Vec<u32> = (0..16).collect();
        let results = run_pool(items, 4, |_w, _i, x| {
            if x == 7 {
                panic!("boom at {x}");
            }
            x * 2
        });
        assert_eq!(results.len(), 16);
        for (i, item) in results.iter().enumerate() {
            if i == 7 {
                assert_eq!(item.result.as_ref().unwrap_err(), "boom at 7");
            } else {
                assert_eq!(*item.result.as_ref().unwrap(), 2 * i as u32);
            }
        }
    }

    #[test]
    fn effective_jobs_resolves_zero_to_a_positive_count() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn batch_matches_direct_synthesis() {
        let p = sum_problem();
        let direct = Synthesizer::default().synthesize(&p).expect("solves");
        let task = ParTask {
            spec: p.clone(),
            options: SearchOptions::default(),
            engine: ParEngine::Search,
            portfolio: false,
            collect_trace: false,
        };
        let outcomes = synthesize_batch(vec![task], 2);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].name, "sum");
        let report = outcomes[0].result.as_ref().expect("no panic");
        let win = report.outcome.as_ref().expect("solved");
        assert_eq!(win.program.to_string(), direct.program.to_string());
        assert_eq!(win.cost, direct.cost);
        assert_eq!(win.stats.popped, direct.stats.popped);
        assert_eq!(win.stats.enumerated_terms, direct.stats.enumerated_terms);
    }

    #[test]
    fn portfolio_matches_sequential_when_the_full_rung_wins() {
        let p = sum_problem();
        let sequential = Synthesizer::default()
            .retry_ladder(true)
            .synthesize_report(&p);
        let report = portfolio_report(&p, &SearchOptions::default());
        let (s_win, p_win) = (
            sequential.outcome.as_ref().expect("solved"),
            report.outcome.as_ref().expect("solved"),
        );
        assert_eq!(p_win.program.to_string(), s_win.program.to_string());
        assert_eq!(p_win.cost, s_win.cost);
        assert_eq!(report.attempts.len(), 1);
        assert_eq!(report.attempts[0].rung, Rung::Full);
        assert_eq!(report.stats.popped, sequential.stats.popped);
    }

    #[test]
    fn tagged_events_carry_problem_and_worker() {
        let e = TraceEvent::Fault {
            site: "verify.candidate",
            detail: "boom".into(),
        };
        let j = tagged_event_json(&e, "sum", 3);
        assert_eq!(j.get("problem").and_then(|v| v.as_str()), Some("sum"));
        assert_eq!(j.get("worker").and_then(|v| v.as_i64()), Some(3));
    }
}
