//! The serve wire protocol: JSON requests and responses.
//!
//! One frame (see [`super::frame`]) carries one JSON document. Requests
//! name an operation (`synth`, `ping`, `stats`, `shutdown`) and, for
//! `synth`, a problem in either `.l2` surface syntax (`"problem"`) or a
//! structured JSON form (`"problem_json"`). Responses always carry a
//! `"status"` field; every request — including malformed ones — gets
//! exactly one response, so clients never hang on bad input.
//!
//! The parser is total: any byte sequence produces either a [`Request`]
//! or a rendered error, never a panic. Unknown fields are ignored
//! (forward compatibility); an unknown `"v"` or `"op"` is an error.

use crate::govern::{Attempt, SearchReport};
use crate::obs::json::{self, Json};
use crate::problem::Problem;

/// Protocol version spoken by this build. Mismatched requests are
/// rejected with a structured error, not dropped.
pub const PROTO_VERSION: u64 = 1;

/// The operation a request asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqOp {
    /// Synthesize a program for the carried problem.
    Synth,
    /// Liveness probe.
    Ping,
    /// Server counters snapshot.
    Stats,
    /// Begin a graceful drain.
    Shutdown,
}

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// The operation.
    pub op: ReqOp,
    /// Client-assigned correlation id, echoed verbatim in the response.
    pub id: Option<String>,
    /// `.l2` source of the problem (`synth` only).
    pub problem_source: Option<String>,
    /// Structured problem (`synth` only), mutually exclusive with
    /// `problem_source`.
    pub problem_json: Option<JsonProblem>,
    /// Per-request deadline; the server caps it at its own maximum.
    pub timeout_ms: Option<u64>,
    /// Race the retry-ladder rungs concurrently.
    pub portfolio: bool,
    /// Test hook: a failpoint site to arm (Panic, one fire) before the
    /// search runs. Honored only in builds with the `failpoints` feature;
    /// ignored otherwise.
    pub failpoint: Option<String>,
}

/// A problem in structured JSON form: every value rendered in the surface
/// syntax the parser round-trips.
#[derive(Clone, Debug)]
pub struct JsonProblem {
    /// Problem name.
    pub name: String,
    /// `(name, rendered type)` parameter list.
    pub params: Vec<(String, String)>,
    /// Rendered return type.
    pub returns: String,
    /// `(rendered inputs, rendered output)` examples.
    pub examples: Vec<(Vec<String>, String)>,
}

impl JsonProblem {
    /// Runs the problem builder's full validation.
    ///
    /// # Errors
    ///
    /// The first builder error, rendered.
    pub fn build(&self) -> Result<Problem, String> {
        let mut b = Problem::builder(self.name.as_str());
        for (name, ty) in &self.params {
            b = b.param(name, ty);
        }
        b = b.returns(&self.returns);
        for (inputs, output) in &self.examples {
            let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
            b = b.example(&refs, output);
        }
        b.build().map_err(|e| e.to_string())
    }
}

/// Parses one request frame.
///
/// # Errors
///
/// A rendered message describing the first problem found — invalid UTF-8,
/// invalid JSON, a non-object document, a missing/unknown `op`, a version
/// mismatch, or a malformed `problem_json`.
pub fn parse_request(payload: &[u8]) -> Result<Request, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
    let doc = json::parse(text).map_err(|e| format!("payload is not valid JSON: {e}"))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err("request must be a JSON object".into());
    }
    if let Some(v) = doc.get("v") {
        match v.as_u64() {
            Some(PROTO_VERSION) => {}
            Some(other) => {
                return Err(format!(
                    "unsupported protocol version {other} (this server speaks {PROTO_VERSION})"
                ))
            }
            None => return Err("\"v\" must be an integer".into()),
        }
    }
    let op = match doc.get("op").and_then(Json::as_str) {
        Some("synth") => ReqOp::Synth,
        Some("ping") => ReqOp::Ping,
        Some("stats") => ReqOp::Stats,
        Some("shutdown") => ReqOp::Shutdown,
        Some(other) => return Err(format!("unknown op \"{other}\"")),
        None => return Err("request has no \"op\" field".into()),
    };
    let id = doc.get("id").and_then(Json::as_str).map(ToOwned::to_owned);
    if doc.get("problem").is_some() && doc.get("problem_json").is_some() {
        return Err("\"problem\" and \"problem_json\" are mutually exclusive".into());
    }
    let problem_source = doc
        .get("problem")
        .and_then(Json::as_str)
        .map(ToOwned::to_owned);
    let problem_json = match doc.get("problem_json") {
        Some(j) => Some(parse_json_problem(j)?),
        None => None,
    };
    if op == ReqOp::Synth && problem_source.is_none() && problem_json.is_none() {
        return Err("synth request carries neither \"problem\" nor \"problem_json\"".into());
    }
    Ok(Request {
        op,
        id,
        problem_source,
        problem_json,
        timeout_ms: doc.get("timeout_ms").and_then(Json::as_u64),
        portfolio: doc
            .get("portfolio")
            .and_then(Json::as_bool)
            .unwrap_or(false),
        failpoint: doc
            .get("failpoint")
            .and_then(Json::as_str)
            .map(ToOwned::to_owned),
    })
}

fn parse_json_problem(j: &Json) -> Result<JsonProblem, String> {
    let name = j
        .get("name")
        .and_then(Json::as_str)
        .ok_or("problem_json has no \"name\"")?
        .to_owned();
    let mut params = Vec::new();
    for p in j
        .get("params")
        .and_then(Json::as_arr)
        .ok_or("problem_json has no \"params\" array")?
    {
        let pair = p.as_arr().ok_or("each param must be [name, type]")?;
        let [n, t] = pair else {
            return Err("each param must be [name, type]".into());
        };
        params.push((
            n.as_str().ok_or("param name must be a string")?.to_owned(),
            t.as_str().ok_or("param type must be a string")?.to_owned(),
        ));
    }
    let returns = j
        .get("returns")
        .and_then(Json::as_str)
        .ok_or("problem_json has no \"returns\"")?
        .to_owned();
    let mut examples = Vec::new();
    for e in j
        .get("examples")
        .and_then(Json::as_arr)
        .ok_or("problem_json has no \"examples\" array")?
    {
        let inputs = e
            .get("inputs")
            .and_then(Json::as_arr)
            .ok_or("each example needs an \"inputs\" array")?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(ToOwned::to_owned)
                    .ok_or("example inputs must be rendered strings")
            })
            .collect::<Result<Vec<String>, _>>()?;
        let output = e
            .get("output")
            .and_then(Json::as_str)
            .ok_or("each example needs an \"output\" string")?
            .to_owned();
        examples.push((inputs, output));
    }
    Ok(JsonProblem {
        name,
        params,
        returns,
        examples,
    })
}

/// Response statuses, as wire strings.
pub mod status {
    /// Request handled; for `synth`, a program was found.
    pub const OK: &str = "ok";
    /// Synthesis terminated without a program (timeout, exhaustion, …).
    pub const UNSOLVED: &str = "unsolved";
    /// The request itself failed: malformed, rejected, or crashed.
    pub const ERROR: &str = "error";
    /// Load-shed at admission; retry after the carried hint.
    pub const OVERLOADED: &str = "overloaded";
    /// The server is draining and accepts no new work.
    pub const SHUTTING_DOWN: &str = "shutting_down";
}

fn base(status: &str, id: Option<&str>) -> Vec<(String, Json)> {
    vec![
        ("v".to_owned(), PROTO_VERSION.into()),
        ("status".to_owned(), status.into()),
        (
            "id".to_owned(),
            match id {
                Some(s) => s.into(),
                None => Json::Null,
            },
        ),
    ]
}

/// Builds an `error` response.
pub fn resp_error(id: Option<&str>, message: &str) -> Json {
    let mut pairs = base(status::ERROR, id);
    pairs.push(("error".to_owned(), message.into()));
    Json::Obj(pairs)
}

/// Builds an `overloaded` load-shed response with a retry hint.
pub fn resp_overloaded(id: Option<&str>, retry_after_ms: u64, queue_depth: usize) -> Json {
    let mut pairs = base(status::OVERLOADED, id);
    pairs.push(("retry_after_ms".to_owned(), retry_after_ms.into()));
    pairs.push(("queue_depth".to_owned(), queue_depth.into()));
    Json::Obj(pairs)
}

/// Builds a `shutting_down` rejection.
pub fn resp_shutting_down(id: Option<&str>) -> Json {
    Json::Obj(base(status::SHUTTING_DOWN, id))
}

/// Builds the `ping` reply.
pub fn resp_pong(id: Option<&str>) -> Json {
    let mut pairs = base(status::OK, id);
    pairs.push(("pong".to_owned(), true.into()));
    Json::Obj(pairs)
}

/// Builds an `ok` acknowledgment for a `shutdown` request.
pub fn resp_draining(id: Option<&str>) -> Json {
    let mut pairs = base(status::OK, id);
    pairs.push(("draining".to_owned(), true.into()));
    Json::Obj(pairs)
}

/// Builds an `ok` envelope around a server-counters object.
pub fn resp_stats(id: Option<&str>, server: Json) -> Json {
    let mut pairs = base(status::OK, id);
    pairs.push(("server".to_owned(), server));
    Json::Obj(pairs)
}

/// Stamps the server-assigned request ID onto a response object.
///
/// Distinct from the client-assigned `"id"` correlation field: `req_id`
/// is minted by the server (`c<conn>-r<n>`), appears on *every* reply,
/// and is the join key for the access log, per-served-job corpus records,
/// and slow-trace filenames. Applied once at the connection loop so no
/// response builder can forget it. Non-object responses (which the
/// protocol never produces) pass through untouched.
pub fn tag_req_id(resp: Json, req_id: &str) -> Json {
    match resp {
        Json::Obj(mut pairs) => {
            pairs.push(("req_id".to_owned(), req_id.into()));
            Json::Obj(pairs)
        }
        other => other,
    }
}

fn attempts_json(report: &SearchReport) -> Json {
    Json::Arr(report.attempts.iter().map(Attempt::to_json).collect())
}

/// Builds the response for a finished synthesis: `ok` with the program
/// when solved, `unsolved` with the terminal error otherwise. Either way
/// the attempt ladder, merged stats, and queueing delay ride along — the
/// fields the determinism bridge and p99 attribution need.
pub fn resp_report(id: Option<&str>, report: &SearchReport, queue_wait_ms: f64) -> Json {
    let mut pairs = match &report.outcome {
        Ok(s) => {
            let mut p = base(status::OK, id);
            p.push(("program".to_owned(), s.program.to_string().into()));
            p.push(("cost".to_owned(), s.cost.into()));
            p
        }
        Err(e) => {
            let mut p = base(status::UNSOLVED, id);
            p.push(("error".to_owned(), e.to_string().into()));
            p
        }
    };
    pairs.push((
        "elapsed_ms".to_owned(),
        Json::Float(report.elapsed.as_secs_f64() * 1e3),
    ));
    pairs.push(("queue_wait_ms".to_owned(), Json::Float(queue_wait_ms)));
    pairs.push(("attempts".to_owned(), attempts_json(report)));
    pairs.push(("stats".to_owned(), report.stats.to_json()));
    Json::Obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_synth_request() {
        let req = parse_request(
            br#"{"v":1,"op":"synth","id":"r1","problem":"(problem p)","timeout_ms":250}"#,
        )
        .unwrap();
        assert_eq!(req.op, ReqOp::Synth);
        assert_eq!(req.id.as_deref(), Some("r1"));
        assert_eq!(req.problem_source.as_deref(), Some("(problem p)"));
        assert_eq!(req.timeout_ms, Some(250));
        assert!(!req.portfolio);
    }

    #[test]
    fn parses_a_json_problem() {
        let req = parse_request(
            br#"{"op":"synth","problem_json":{"name":"evens","params":[["l","[int]"]],
                 "returns":"[int]","examples":[{"inputs":["[1 2 3 4]"],"output":"[2 4]"},
                 {"inputs":["[]"],"output":"[]"},{"inputs":["[5 6]"],"output":"[6]"}]}}"#,
        )
        .unwrap();
        let jp = req.problem_json.expect("structured problem");
        assert_eq!(jp.name, "evens");
        let problem = jp.build().unwrap();
        assert_eq!(problem.examples().len(), 3);
    }

    #[test]
    fn rejects_malformed_requests_with_messages() {
        for (payload, needle) in [
            (&b"\xff\xfe"[..], "UTF-8"),
            (b"not json", "JSON"),
            (b"[1,2]", "object"),
            (br#"{"op":"dance"}"#, "unknown op"),
            (br#"{"v":9,"op":"ping"}"#, "version"),
            (br#"{"op":"synth"}"#, "neither"),
            (
                br#"{"op":"synth","problem":"x","problem_json":{}}"#,
                "mutually exclusive",
            ),
            (br#"{}"#, "no \"op\""),
        ] {
            let err = parse_request(payload).unwrap_err();
            assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        }
    }

    #[test]
    fn req_id_tagging_is_additive_and_distinct_from_client_id() {
        let tagged = tag_req_id(resp_pong(Some("client-7")), "c3-r2");
        assert_eq!(tagged.get("req_id").unwrap().as_str(), Some("c3-r2"));
        assert_eq!(tagged.get("id").unwrap().as_str(), Some("client-7"));
        let parsed = json::parse(&tagged.to_string()).unwrap();
        assert_eq!(parsed.get("req_id").unwrap().as_str(), Some("c3-r2"));
        assert_eq!(tag_req_id(Json::Null, "c1-r1"), Json::Null);
    }

    #[test]
    fn responses_are_parseable_and_carry_status() {
        let r = resp_overloaded(Some("q"), 120, 8);
        let parsed = json::parse(&r.to_string()).unwrap();
        assert_eq!(parsed.get("status").unwrap().as_str(), Some("overloaded"));
        assert_eq!(parsed.get("retry_after_ms").unwrap().as_u64(), Some(120));
        assert_eq!(parsed.get("queue_depth").unwrap().as_u64(), Some(8));
        let e = resp_error(None, "boom");
        assert_eq!(e.get("id"), Some(&Json::Null));
        assert_eq!(e.get("error").unwrap().as_str(), Some("boom"));
        assert_eq!(
            resp_pong(Some("p")).get("pong").unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(
            resp_shutting_down(None).get("status").unwrap().as_str(),
            Some(status::SHUTTING_DOWN)
        );
    }
}
