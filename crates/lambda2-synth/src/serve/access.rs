//! The serve access log: one schema-versioned JSONL record per request,
//! plus the offline analyzer behind `l2 serve report`.
//!
//! The daemon's live counters answer "how is the server doing *now*";
//! the access log is the durable, per-request layer underneath: every
//! request — synthesis or not, admitted or shed, healthy or crashed —
//! appends exactly one [`AccessRecord`] line, keyed by the server-assigned
//! request ID that is also echoed in the wire reply (`req_id`) and stamped
//! into corpus [`RunRecord`](crate::obs::corpus::RunRecord)s and
//! slow-trace filenames. One ID ties the whole observability story for a
//! request together.
//!
//! Design constraints carried over from the rest of the tree:
//!
//! * **Schema-versioned** — every line leads with `"v"`
//!   ([`crate::obs::SCHEMA_VERSION`]); the loader refuses versions it
//!   does not understand, exactly like the trace and corpus parsers.
//! * **Crash-tolerant** — the writer emits one `write_all` + flush per
//!   line under a mutex, so concurrent workers can never tear a record
//!   and a crash corrupts at most the final, in-flight line — which
//!   [`load_access_log`] skips with a warning, mirroring the corpus
//!   loader.
//! * **Observation-only** — nothing in this module feeds back into
//!   admission, scheduling, or search; the differential test in
//!   `tests/serve.rs` proves served programs/costs/ladders are
//!   byte-identical with the log on or off.
//!
//! The one *volatile* field is `t_ms`: milliseconds since the daemon
//! started (monotonic, never wall-clock), used by the analyzer to compute
//! throughput over the logged span.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::obs::json::{self, Json};
use crate::obs::metrics::{Histogram, EXP2_BOUNDS};
use crate::obs::SCHEMA_VERSION;

/// Structured failure of an access-log operation, mirroring
/// [`CorpusError`](crate::obs::corpus::CorpusError): every variant names
/// the file involved so batch tooling can say which input was bad.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AccessError {
    /// Filesystem failure (open, create, read, write).
    Io {
        /// The file involved.
        path: PathBuf,
        /// The rendered OS error.
        message: String,
    },
    /// A line was not valid JSON or not record-shaped.
    Parse {
        /// The file involved.
        path: PathBuf,
        /// 1-based line number.
        line: u64,
        /// What was wrong.
        message: String,
    },
    /// A line carried a schema version this build does not understand.
    Version {
        /// The file involved.
        path: PathBuf,
        /// 1-based line number.
        line: u64,
        /// The version found (`None` when the field is missing entirely).
        found: Option<i64>,
    },
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::Io { path, message } => write!(f, "{}: {message}", path.display()),
            AccessError::Parse {
                path,
                line,
                message,
            } => write!(f, "{}:{line}: {message}", path.display()),
            AccessError::Version { path, line, found } => match found {
                Some(v) => write!(
                    f,
                    "{}:{line}: unsupported access-log schema version {v} (this build reads v{SCHEMA_VERSION})",
                    path.display()
                ),
                None => write!(
                    f,
                    "{}:{line}: access record has no schema version field \"v\"",
                    path.display()
                ),
            },
        }
    }
}

impl std::error::Error for AccessError {}

/// One access-log line: the complete server-side account of one request.
#[derive(Clone, Debug, PartialEq)]
pub struct AccessRecord {
    /// Milliseconds since the daemon started (monotonic; the record's one
    /// volatile field — analyzers use it only for spans, never identity).
    pub t_ms: f64,
    /// Server-assigned request ID (`c<conn>-r<n>`), echoed in the wire
    /// reply and reused as the corpus key and slow-trace filename.
    pub req_id: String,
    /// Request op (`synth`, `ping`, `stats`, `shutdown`), or `invalid`
    /// when the payload never parsed far enough to name one.
    pub op: String,
    /// Client peer: the TCP source IP, `unix` for Unix-domain sockets.
    pub peer: String,
    /// Outcome status, exactly as sent on the wire (`ok`, `unsolved`,
    /// `error`, `overloaded`, `shutting_down`).
    pub status: String,
    /// Request frame payload size in bytes.
    pub frame_bytes: u64,
    /// Time the job waited in the admission queue (admitted jobs only).
    pub queue_wait_ms: Option<f64>,
    /// Time the job spent executing on a worker (executed jobs only).
    pub service_ms: Option<f64>,
    /// Warm-cache hits this job's search recorded (executed jobs only) —
    /// the cache-effectiveness signal, per request.
    pub warm_hits: Option<u64>,
    /// Load-shed marker: the request was answered `overloaded` at
    /// admission and never consumed a queue slot.
    pub shed: bool,
    /// Crash marker: the search panicked under the unwind guard and was
    /// answered with a structured `error`.
    pub crashed: bool,
    /// Problem name (synthesis requests whose problem parsed).
    pub problem: Option<String>,
    /// [`options_fingerprint`](crate::obs::corpus::options_fingerprint)
    /// of the effective options the job ran under (executed jobs only) —
    /// the same key corpus records carry, so log lines and corpus lines
    /// join on (`problem`, `fingerprint`).
    pub fingerprint: Option<String>,
}

impl AccessRecord {
    /// Serializes the record to its JSONL line form. Optional fields are
    /// omitted when absent, so non-synthesis lines stay compact.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("v".to_owned(), SCHEMA_VERSION.into()),
            ("t_ms".to_owned(), Json::Float(self.t_ms)),
            ("req_id".to_owned(), self.req_id.as_str().into()),
            ("op".to_owned(), self.op.as_str().into()),
            ("peer".to_owned(), self.peer.as_str().into()),
            ("status".to_owned(), self.status.as_str().into()),
            ("frame_bytes".to_owned(), self.frame_bytes.into()),
        ];
        if let Some(ms) = self.queue_wait_ms {
            pairs.push(("queue_wait_ms".to_owned(), Json::Float(ms)));
        }
        if let Some(ms) = self.service_ms {
            pairs.push(("service_ms".to_owned(), Json::Float(ms)));
        }
        if let Some(hits) = self.warm_hits {
            pairs.push(("warm_hits".to_owned(), hits.into()));
        }
        pairs.push(("shed".to_owned(), self.shed.into()));
        pairs.push(("crashed".to_owned(), self.crashed.into()));
        if let Some(problem) = &self.problem {
            pairs.push(("problem".to_owned(), problem.as_str().into()));
        }
        if let Some(fp) = &self.fingerprint {
            pairs.push(("fingerprint".to_owned(), fp.as_str().into()));
        }
        Json::Obj(pairs)
    }

    fn from_json(j: &Json, path: &Path, line: u64) -> Result<AccessRecord, AccessError> {
        let version = |found| AccessError::Version {
            path: path.to_owned(),
            line,
            found,
        };
        match j.get("v") {
            None => return Err(version(None)),
            Some(v) if v.as_u64() != Some(SCHEMA_VERSION) => return Err(version(v.as_i64())),
            Some(_) => {}
        }
        let field = |key: &str| -> Result<String, AccessError> {
            j.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| AccessError::Parse {
                    path: path.to_owned(),
                    line,
                    message: format!("access record missing string field {key:?}"),
                })
        };
        Ok(AccessRecord {
            t_ms: j.get("t_ms").and_then(Json::as_f64).unwrap_or(0.0),
            req_id: field("req_id")?,
            op: field("op")?,
            peer: field("peer")?,
            status: field("status")?,
            frame_bytes: j.get("frame_bytes").and_then(Json::as_u64).unwrap_or(0),
            queue_wait_ms: j.get("queue_wait_ms").and_then(Json::as_f64),
            service_ms: j.get("service_ms").and_then(Json::as_f64),
            warm_hits: j.get("warm_hits").and_then(Json::as_u64),
            shed: j.get("shed").and_then(Json::as_bool).unwrap_or(false),
            crashed: j.get("crashed").and_then(Json::as_bool).unwrap_or(false),
            problem: j.get("problem").and_then(Json::as_str).map(str::to_owned),
            fingerprint: j
                .get("fingerprint")
                .and_then(Json::as_str)
                .map(str::to_owned),
        })
    }
}

/// The append-only access-log writer shared by every connection and
/// worker thread of one daemon.
///
/// Each [`append`](AccessLog::append) renders the record to one line and
/// issues a single `write_all` + flush while holding the internal mutex:
/// concurrent writers interleave *whole lines only* (the saturation test
/// in `tests/serve.rs` parses every line of a loaded run to prove it),
/// and a crash can corrupt at most the final, in-flight line.
#[derive(Debug)]
pub struct AccessLog {
    path: PathBuf,
    file: Mutex<fs::File>,
}

impl AccessLog {
    /// Opens (creating or appending to) the log at `path`.
    ///
    /// # Errors
    ///
    /// [`AccessError::Io`] when the file cannot be opened for append.
    pub fn open(path: &Path) -> Result<AccessLog, AccessError> {
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| AccessError::Io {
                path: path.to_owned(),
                message: e.to_string(),
            })?;
        Ok(AccessLog {
            path: path.to_owned(),
            file: Mutex::new(file),
        })
    }

    /// The log file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record as one line.
    ///
    /// # Errors
    ///
    /// [`AccessError::Io`] on any write failure. Callers in the serve hot
    /// path report the error and keep serving — telemetry must never
    /// take down a request.
    pub fn append(&self, record: &AccessRecord) -> Result<(), AccessError> {
        let mut line = record.to_json().to_string();
        line.push('\n');
        let io_err = |e: std::io::Error| AccessError::Io {
            path: self.path.clone(),
            message: e.to_string(),
        };
        // A poisoned lock means another thread panicked while appending;
        // the file is still line-consistent (single write per line), so
        // recover rather than wedge every later request.
        let mut file = self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        file.write_all(line.as_bytes()).map_err(io_err)?;
        file.flush().map_err(io_err)
    }
}

/// Parses an access-log file in append order. Version-validated per line;
/// an unparseable *final* line of an unterminated file is the signature
/// of a writer that crashed mid-append and is skipped with a warning
/// (mid-file garbage still errors — that is corruption, not a truncated
/// tail), exactly like the corpus loader.
///
/// # Errors
///
/// [`AccessError`] on IO, parse, or schema-version failure.
pub fn load_access_log(path: &Path) -> Result<Vec<AccessRecord>, AccessError> {
    let text = fs::read_to_string(path).map_err(|e| AccessError::Io {
        path: path.to_owned(),
        message: e.to_string(),
    })?;
    let terminated = text.ends_with('\n');
    let lines: Vec<&str> = text.lines().collect();
    let mut records = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let line_no = i as u64 + 1;
        if line.trim().is_empty() {
            continue;
        }
        let parsed = json::parse(line)
            .map_err(|message| AccessError::Parse {
                path: path.to_owned(),
                line: line_no,
                message,
            })
            .and_then(|j| AccessRecord::from_json(&j, path, line_no));
        match parsed {
            Ok(record) => records.push(record),
            Err(err) if !terminated && i + 1 == lines.len() => {
                eprintln!(
                    "warning: {}: skipping unterminated trailing record at line {line_no}: {err}",
                    path.display()
                );
            }
            Err(err) => return Err(err),
        }
    }
    Ok(records)
}

/// Per-client request breakdown inside an [`AccessReport`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests this peer issued.
    pub requests: u64,
    /// Requests answered `ok`.
    pub ok: u64,
    /// Requests shed with `overloaded`.
    pub shed: u64,
}

/// The offline analysis of one access log: what `l2 serve report` prints
/// and renders as a dashboard.
#[derive(Clone, Debug)]
pub struct AccessReport {
    /// Total records analyzed.
    pub requests: u64,
    /// Logged span in milliseconds (max `t_ms` − min `t_ms`).
    pub span_ms: f64,
    /// Requests shed with `overloaded`.
    pub shed: u64,
    /// Requests whose search crashed under the unwind guard.
    pub crashed: u64,
    /// Requests per outcome status.
    pub statuses: BTreeMap<String, u64>,
    /// Requests per op.
    pub ops: BTreeMap<String, u64>,
    /// Per-peer breakdowns.
    pub clients: BTreeMap<String, ClientStats>,
    /// Requests per problem name (synthesis requests only).
    pub problems: BTreeMap<String, u64>,
    /// Service-time distribution, microseconds (executed jobs only).
    pub service_us: Histogram,
    /// Queue-wait distribution, microseconds (admitted jobs only).
    pub queue_wait_us: Histogram,
    /// Warm-cache hits summed over executed jobs.
    pub warm_hits: u64,
}

impl AccessReport {
    /// Analyzes a loaded log.
    pub fn analyze(records: &[AccessRecord]) -> AccessReport {
        let mut report = AccessReport {
            requests: records.len() as u64,
            span_ms: 0.0,
            shed: 0,
            crashed: 0,
            statuses: BTreeMap::new(),
            ops: BTreeMap::new(),
            clients: BTreeMap::new(),
            problems: BTreeMap::new(),
            service_us: Histogram::new(EXP2_BOUNDS),
            queue_wait_us: Histogram::new(EXP2_BOUNDS),
            warm_hits: 0,
        };
        let (mut t_lo, mut t_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for r in records {
            t_lo = t_lo.min(r.t_ms);
            t_hi = t_hi.max(r.t_ms);
            *report.statuses.entry(r.status.clone()).or_default() += 1;
            *report.ops.entry(r.op.clone()).or_default() += 1;
            let client = report.clients.entry(r.peer.clone()).or_default();
            client.requests += 1;
            if r.status == "ok" {
                client.ok += 1;
            }
            if r.shed {
                client.shed += 1;
                report.shed += 1;
            }
            if r.crashed {
                report.crashed += 1;
            }
            if let Some(problem) = &r.problem {
                *report.problems.entry(problem.clone()).or_default() += 1;
            }
            if let Some(ms) = r.service_ms {
                report.service_us.record((ms * 1e3).max(0.0) as u64);
            }
            if let Some(ms) = r.queue_wait_ms {
                report.queue_wait_us.record((ms * 1e3).max(0.0) as u64);
            }
            report.warm_hits += r.warm_hits.unwrap_or(0);
        }
        if report.requests > 0 {
            report.span_ms = (t_hi - t_lo).max(0.0);
        }
        report
    }

    /// Shed rate over all requests (0.0 for an empty log).
    pub fn shed_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.shed as f64 / self.requests as f64
        }
    }

    /// Requests per second over the logged span. A single-record (or
    /// zero-span) log reports 0 — there is no meaningful rate.
    pub fn throughput_rps(&self) -> f64 {
        if self.span_ms <= 0.0 {
            0.0
        } else {
            self.requests as f64 / (self.span_ms / 1e3)
        }
    }

    /// A service-time quantile in milliseconds (histogram bucket
    /// resolution; 0 when no job was timed).
    pub fn service_ms(&self, q: f64) -> f64 {
        self.service_us.quantile(q).unwrap_or(0) as f64 / 1e3
    }

    /// A queue-wait quantile in milliseconds.
    pub fn queue_wait_ms(&self, q: f64) -> f64 {
        self.queue_wait_us.quantile(q).unwrap_or(0) as f64 / 1e3
    }

    /// Serializes the report for `l2 serve report --json`.
    pub fn to_json(&self) -> Json {
        let count_map = |m: &BTreeMap<String, u64>| {
            Json::Obj(
                m.iter()
                    .map(|(k, v)| (k.clone(), (*v).into()))
                    .collect::<Vec<_>>(),
            )
        };
        Json::obj([
            ("v", SCHEMA_VERSION.into()),
            ("requests", self.requests.into()),
            ("span_ms", Json::Float(self.span_ms)),
            ("throughput_rps", Json::Float(self.throughput_rps())),
            ("shed", self.shed.into()),
            ("shed_rate", Json::Float(self.shed_rate())),
            ("crashed", self.crashed.into()),
            ("warm_hits", self.warm_hits.into()),
            ("service_p50_ms", Json::Float(self.service_ms(0.5))),
            ("service_p99_ms", Json::Float(self.service_ms(0.99))),
            ("queue_wait_p50_ms", Json::Float(self.queue_wait_ms(0.5))),
            ("queue_wait_p99_ms", Json::Float(self.queue_wait_ms(0.99))),
            ("statuses", count_map(&self.statuses)),
            ("ops", count_map(&self.ops)),
            (
                "clients",
                Json::Obj(
                    self.clients
                        .iter()
                        .map(|(peer, c)| {
                            (
                                peer.clone(),
                                Json::obj([
                                    ("requests", c.requests.into()),
                                    ("ok", c.ok.into()),
                                    ("shed", c.shed.into()),
                                ]),
                            )
                        })
                        .collect::<Vec<_>>(),
                ),
            ),
            ("problems", count_map(&self.problems)),
            ("service_us", self.service_us.to_json()),
            ("queue_wait_us", self.queue_wait_us.to_json()),
        ])
    }

    /// Renders the human-readable summary `l2 serve report` prints.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} request(s) over {:.1} s ({:.1} req/s)",
            self.requests,
            self.span_ms / 1e3,
            self.throughput_rps()
        );
        let _ = writeln!(
            out,
            "sheds {} ({:.1}%), crashes {}, warm-cache hits {}",
            self.shed,
            self.shed_rate() * 100.0,
            self.crashed,
            self.warm_hits
        );
        let _ = writeln!(
            out,
            "service    p50 {:8.1} ms  p99 {:8.1} ms  max {:8.1} ms  ({} timed)",
            self.service_ms(0.5),
            self.service_ms(0.99),
            self.service_us.max().unwrap_or(0) as f64 / 1e3,
            self.service_us.count()
        );
        let _ = writeln!(
            out,
            "queue wait p50 {:8.1} ms  p99 {:8.1} ms  max {:8.1} ms  ({} queued)",
            self.queue_wait_ms(0.5),
            self.queue_wait_ms(0.99),
            self.queue_wait_us.max().unwrap_or(0) as f64 / 1e3,
            self.queue_wait_us.count()
        );
        let join = |m: &BTreeMap<String, u64>| {
            m.iter()
                .map(|(k, v)| format!("{k} {v}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(out, "by status:  {}", join(&self.statuses));
        let _ = writeln!(out, "by op:      {}", join(&self.ops));
        for (peer, c) in &self.clients {
            let _ = writeln!(
                out,
                "client {peer:20} {:5} request(s)  {:5} ok  {:5} shed",
                c.requests, c.ok, c.shed
            );
        }
        if !self.problems.is_empty() {
            let _ = writeln!(out, "by problem: {}", join(&self.problems));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(req_id: &str, status: &str, service_ms: Option<f64>) -> AccessRecord {
        AccessRecord {
            t_ms: 10.0,
            req_id: req_id.to_owned(),
            op: "synth".to_owned(),
            peer: "127.0.0.1".to_owned(),
            status: status.to_owned(),
            frame_bytes: 120,
            queue_wait_ms: service_ms.map(|_| 0.4),
            service_ms,
            warm_hits: service_ms.map(|_| 2),
            shed: status == "overloaded",
            crashed: false,
            problem: Some("evens".to_owned()),
            fingerprint: Some("deadbeefdeadbeef".to_owned()),
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("lambda2-access-{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn record_round_trips_through_jsonl() {
        let path = temp_path("roundtrip");
        let _ = fs::remove_file(&path);
        let log = AccessLog::open(&path).unwrap();
        let a = record("c1-r1", "ok", Some(12.5));
        let b = AccessRecord {
            queue_wait_ms: None,
            service_ms: None,
            warm_hits: None,
            problem: None,
            fingerprint: None,
            op: "ping".to_owned(),
            ..record("c1-r2", "ok", None)
        };
        log.append(&a).unwrap();
        log.append(&b).unwrap();
        let loaded = load_access_log(&path).unwrap();
        assert_eq!(loaded, vec![a, b]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn loader_rejects_garbage_and_wrong_versions() {
        let path = temp_path("reject");
        fs::write(&path, "not json\n").unwrap();
        assert!(matches!(
            load_access_log(&path),
            Err(AccessError::Parse { line: 1, .. })
        ));
        fs::write(&path, "{\"v\":99,\"req_id\":\"x\"}\n").unwrap();
        assert!(matches!(
            load_access_log(&path),
            Err(AccessError::Version {
                line: 1,
                found: Some(99),
                ..
            })
        ));
        fs::write(&path, "{\"req_id\":\"x\"}\n").unwrap();
        assert!(matches!(
            load_access_log(&path),
            Err(AccessError::Version {
                line: 1,
                found: None,
                ..
            })
        ));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn loader_skips_an_unterminated_trailing_line_only() {
        let path = temp_path("tail");
        let line = record("c1-r1", "ok", Some(3.0)).to_json().to_string();
        // A crash mid-append: complete line, then a truncated one with no
        // terminating newline — loaded minus the tail.
        fs::write(&path, format!("{line}\n{{\"v\":1,\"req_id\"")).unwrap();
        let loaded = load_access_log(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        // The same garbage mid-file (newline-terminated) is corruption.
        fs::write(&path, format!("{{\"v\":1,\"req_id\"\n{line}\n")).unwrap();
        assert!(matches!(
            load_access_log(&path),
            Err(AccessError::Parse { line: 1, .. })
        ));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn analyzer_summarizes_and_orders_quantiles() {
        let mut records = vec![
            record("c1-r1", "ok", Some(5.0)),
            record("c1-r2", "ok", Some(50.0)),
            record("c2-r1", "unsolved", Some(400.0)),
            record("c2-r2", "overloaded", None),
        ];
        records[3].t_ms = 2010.0;
        let report = AccessReport::analyze(&records);
        assert_eq!(report.requests, 4);
        assert_eq!(report.shed, 1);
        assert_eq!(report.crashed, 0);
        assert_eq!(report.statuses.get("ok"), Some(&2));
        assert_eq!(report.ops.get("synth"), Some(&4));
        assert_eq!(report.problems.get("evens"), Some(&4));
        assert!(report.shed_rate() > 0.24 && report.shed_rate() < 0.26);
        assert!(report.span_ms >= 2000.0, "{}", report.span_ms);
        assert!(report.throughput_rps() > 0.0);
        assert!(
            report.service_ms(0.5) <= report.service_ms(0.99),
            "p50 {} must not exceed p99 {}",
            report.service_ms(0.5),
            report.service_ms(0.99)
        );
        assert_eq!(report.warm_hits, 6);
        let client = report.clients.get("127.0.0.1").unwrap();
        assert_eq!((client.requests, client.ok, client.shed), (4, 2, 1));
        // JSON and text renderings agree on the headline numbers.
        let j = report.to_json();
        assert_eq!(j.get("requests").and_then(Json::as_u64), Some(4));
        assert_eq!(j.get("shed").and_then(Json::as_u64), Some(1));
        assert!(report.render_text().contains("4 request(s)"));
    }

    #[test]
    fn empty_log_analyzes_to_zeros() {
        let report = AccessReport::analyze(&[]);
        assert_eq!(report.requests, 0);
        assert_eq!(report.throughput_rps(), 0.0);
        assert_eq!(report.shed_rate(), 0.0);
        assert_eq!(report.service_ms(0.99), 0.0);
    }
}
