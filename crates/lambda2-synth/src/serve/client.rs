//! Client side of the serve protocol: framing, calls, and seeded
//! jittered retry.
//!
//! [`Client`] is a thin connection wrapper (one frame out, one frame
//! back, strictly sequential). [`request_with_retry`] layers the
//! robustness policy on top: reconnect-per-attempt, exponential backoff
//! with deterministic jitter (seeded xorshift — reproducible load tests,
//! no thundering herd), and respect for the server's `retry_after_ms`
//! hint on `overloaded` sheds. The final attempt's `overloaded` response
//! is returned — not swallowed — so callers can surface a distinct
//! exit code for "the daemon is healthy but saturated".

use std::io::{self};
use std::net::TcpStream;
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::net::UnixStream;

use crate::obs::json::{self, Json};

use super::frame::{write_frame, FrameReader, MAX_FRAME_BYTES};
use super::proto::status;

/// Client-side failure of one request attempt.
#[derive(Clone, Debug)]
pub enum ClientError {
    /// Could not connect or the transport failed mid-call.
    Io(String),
    /// The reply was not a valid frame/JSON document.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

enum ClientConn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl io::Read for ClientConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientConn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ClientConn::Unix(s) => s.read(buf),
        }
    }
}

impl io::Write for ClientConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ClientConn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ClientConn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            ClientConn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            ClientConn::Unix(s) => s.flush(),
        }
    }
}

/// One connection to a serve daemon.
pub struct Client {
    conn: ClientConn,
    reader: FrameReader,
}

impl Client {
    /// Connects to `host:port`, or `unix:/path` on Unix targets.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on connect failure (including `unix:` on a
    /// non-Unix target).
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let conn = if let Some(path) = addr.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                ClientConn::Unix(
                    UnixStream::connect(path)
                        .map_err(|e| ClientError::Io(format!("connect {addr}: {e}")))?,
                )
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(ClientError::Io(
                    "unix: addresses need a Unix target".to_owned(),
                ));
            }
        } else {
            ClientConn::Tcp(
                TcpStream::connect(addr)
                    .map_err(|e| ClientError::Io(format!("connect {addr}: {e}")))?,
            )
        };
        Ok(Client {
            conn,
            reader: FrameReader::new(MAX_FRAME_BYTES),
        })
    }

    /// Sends one request document and blocks for its reply.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure, [`ClientError::Protocol`]
    /// when the server closes without replying or replies with a
    /// non-JSON payload.
    pub fn call(&mut self, request: &Json) -> Result<Json, ClientError> {
        write_frame(&mut self.conn, request.to_string().as_bytes())
            .map_err(|e| ClientError::Io(e.to_string()))?;
        match self.reader.read_frame(&mut self.conn) {
            Ok(Some(payload)) => {
                let text = std::str::from_utf8(&payload)
                    .map_err(|e| ClientError::Protocol(format!("reply is not UTF-8: {e}")))?;
                json::parse(text)
                    .map_err(|e| ClientError::Protocol(format!("reply is not JSON: {e}")))
            }
            Ok(None) => Err(ClientError::Protocol(
                "server closed the connection without replying".to_owned(),
            )),
            Err(e) => Err(ClientError::Io(e.to_string())),
        }
    }
}

/// Exponential backoff with deterministic jitter. Delay for attempt `n`
/// is drawn uniformly from `[base·2ⁿ/2, base·2ⁿ]` (capped), and never
/// below the server's `retry_after_ms` hint when one was given — the
/// server knows its queue better than the client does.
#[derive(Clone, Debug)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    state: u64,
}

impl Backoff {
    /// A policy with the given base delay, cap, and jitter seed.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff {
            base_ms: (base.as_millis() as u64).max(1),
            cap_ms: (cap.as_millis() as u64).max(1),
            // xorshift has a zero fixed point; displace it.
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next(&mut self) -> u64 {
        // xorshift64* — deterministic, dependency-free.
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// The delay before retry number `attempt` (0-based), honoring an
    /// optional server hint.
    pub fn delay(&mut self, attempt: u32, hint_ms: Option<u64>) -> Duration {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.cap_ms);
        let lo = exp / 2;
        let jittered = lo + self.next() % (exp - lo + 1);
        Duration::from_millis(jittered.max(hint_ms.unwrap_or(0)))
    }
}

/// Sends `request`, retrying up to `retries` times on transport failure
/// or `overloaded` sheds (fresh connection per attempt). Returns the
/// first conclusive response; after the last attempt, an `overloaded`
/// response is returned as-is so the caller can distinguish saturation
/// from failure.
///
/// # Errors
///
/// The last attempt's [`ClientError`] when every attempt failed at the
/// transport/protocol layer.
pub fn request_with_retry(
    addr: &str,
    request: &Json,
    retries: u32,
    backoff: &mut Backoff,
) -> Result<Json, ClientError> {
    let mut attempt = 0u32;
    loop {
        let outcome = Client::connect(addr).and_then(|mut c| c.call(request));
        match outcome {
            Ok(resp) => {
                let overloaded =
                    resp.get("status").and_then(Json::as_str) == Some(status::OVERLOADED);
                if !overloaded || attempt >= retries {
                    return Ok(resp);
                }
                let hint = resp.get("retry_after_ms").and_then(Json::as_u64);
                std::thread::sleep(backoff.delay(attempt, hint));
            }
            Err(e) => {
                if attempt >= retries {
                    return Err(e);
                }
                std::thread::sleep(backoff.delay(attempt, None));
            }
        }
        attempt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_for_a_seed() {
        let mut a = Backoff::new(Duration::from_millis(10), Duration::from_secs(5), 42);
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_secs(5), 42);
        for attempt in 0..8 {
            assert_eq!(a.delay(attempt, None), b.delay(attempt, None));
        }
    }

    #[test]
    fn backoff_grows_and_respects_cap_and_hint() {
        let mut p = Backoff::new(Duration::from_millis(10), Duration::from_millis(100), 7);
        for attempt in 0..12 {
            let d = p.delay(attempt, None).as_millis() as u64;
            let exp = 10u64.saturating_mul(1 << attempt).min(100);
            assert!(d >= exp / 2 && d <= exp, "attempt {attempt}: {d} vs {exp}");
        }
        // A server hint floors the delay.
        let d = p.delay(0, Some(500));
        assert!(d >= Duration::from_millis(500));
    }

    #[test]
    fn connect_to_nowhere_is_a_structured_error() {
        // Reserved port 1 on localhost is essentially never listening.
        match Client::connect("127.0.0.1:1") {
            Err(ClientError::Io(_)) => {}
            Err(e) => panic!("expected Io error, got {e}"),
            Ok(_) => panic!("connect to port 1 unexpectedly succeeded"),
        }
    }
}
