//! The synthesis daemon: listener, admission queue, worker pool, drain.
//!
//! # Architecture
//!
//! ```text
//!  clients ──TCP/Unix──▶ connection threads ──try_send──▶ bounded queue
//!                          │  (parse, validate,             │
//!                          │   shed when full)              ▼
//!                          │                          worker threads
//!                          ◀────────reply channel──── (catch_unwind,
//!                                                      warm stores,
//!                                                      cancel tokens)
//! ```
//!
//! Three robustness invariants hold by construction:
//!
//! * **Every admitted request gets exactly one reply.** Workers answer on
//!   a per-job channel on every path — success, unsolved, crash, drain —
//!   and a dropped channel (worker death outside the panic guard) turns
//!   into a structured error at the connection.
//! * **Memory is bounded.** The admission queue is a
//!   [`std::sync::mpsc::sync_channel`] of fixed capacity; when it is full
//!   the connection thread replies `overloaded` with a retry hint instead
//!   of queueing. Frames are capped before allocation; warm stores are
//!   LRU-evicted under a byte budget.
//! * **A crashing request cannot take the daemon down.** The search runs
//!   under [`catch_unwind`]; a panic yields a structured `error` response
//!   and the worker loops on to the next job. (The shared warm-store
//!   cache may lose entries mid-panic — they are deterministic caches and
//!   rebuild on demand.)
//!
//! # Determinism
//!
//! Workers call [`Synthesizer::synthesize_report_warm`] — the same retry
//! ladder `l2 synth` uses — so a problem served here returns the same
//! program, cost, and attempt ladder as a local run with the same
//! [`SearchOptions`], warm cache on or off (only cache-effectiveness
//! counters differ). The pool shares one mutex-guarded [`WarmCache`], so
//! a store warmed by any worker serves every later request for the same
//! signature, and the byte budget bounds the pool's total footprint.
//! Portfolio requests route to [`portfolio_report_traced`] and skip the
//! warm cache (their rungs race on private threads).
//!
//! # Drain
//!
//! Setting the control flag (a `shutdown` request, or the CLI's SIGTERM
//! handler flipping [`Server::control`]) starts a drain: the accept loop
//! stops, connection threads close at their next read-timeout poll,
//! queued-but-unstarted jobs are answered `shutting_down`, in-flight jobs
//! get [`ServeConfig::drain_grace`] to finish and are then cancelled via
//! their [`CancelToken`]s. Corpus writes flush per record, so there is
//! nothing left to lose at exit.
//!
//! # Observability
//!
//! Every request is assigned a stable server-side ID (`c<conn>-r<n>`,
//! echoed in the reply as `req_id`) and accounted exactly once:
//!
//! * **Access log** ([`ServeConfig::access_log`]) — one
//!   [`AccessRecord`] JSONL line per request, written by whichever side
//!   *decides* the request: the connection thread for non-synthesis ops
//!   and admission rejections (parse errors, invalid problems, sheds,
//!   drain refusals), the worker for every admitted job (it alone knows
//!   queue wait, service time, warm-cache hits, and crash outcome).
//! * **Live histograms** — queue wait, service time, and frame sizes,
//!   plus per-op and per-client request counts, kept in [`Shared`] and
//!   surfaced through the `stats` op and the final [`ServeSummary`].
//! * **Slow-trace capture** ([`ServeConfig::slow_trace_ms`] +
//!   [`ServeConfig::slow_trace_dir`]) — jobs at or over the threshold
//!   have their full JSONL search trace (buffered in memory during the
//!   run) written to `<dir>/<req_id>.jsonl`, readable by `l2 profile`.
//! * **Corpus records** — with [`ServeConfig::corpus_dir`] set, each
//!   finished job appends a [`RunRecord`] keyed by `req_id`, so
//!   `l2 corpus regress` gates served traffic like local runs.
//!
//! All of it is observation-only: the engine runs identically with every
//! layer on or off (tracing is emit-only by construction; the access log
//! and histograms read outcomes, never influence them), and the
//! differential test in `tests/serve.rs` holds served replies
//! byte-identical either way.

use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};

use crate::enumerate::WarmCache;
use crate::govern::{CancelToken, SearchReport};
use crate::l2file;
use crate::obs::corpus::{options_fingerprint, Corpus, RunRecord};
use crate::obs::json::Json;
use crate::obs::metrics::{Histogram, EXP2_BOUNDS};
use crate::obs::{JsonlTracer, NoopTracer, Tracer};
use crate::par::portfolio_report_traced;
use crate::problem::Problem;
use crate::search::SearchOptions;
use crate::stats::Measurement;
use crate::synthesizer::Synthesizer;

use super::access::{AccessLog, AccessRecord};
use super::frame::{write_frame, FrameError, FrameReader, MAX_FRAME_BYTES};
use super::proto::{self, ReqOp, Request};

/// Daemon tunables. The defaults suit tests and light local use; the CLI
/// exposes each as a flag.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address: `host:port` for TCP, or `unix:/path/to.sock` for a
    /// Unix-domain socket (Unix targets only). Port 0 binds ephemerally;
    /// read the real address back from [`Server::local_addr`].
    pub addr: String,
    /// Worker threads executing synthesis jobs.
    pub workers: usize,
    /// Admission-queue capacity. Requests beyond `workers + queue` are
    /// shed with `overloaded` — the daemon's memory stays bounded no
    /// matter the offered load.
    pub queue_capacity: usize,
    /// Per-frame payload cap (see [`MAX_FRAME_BYTES`]).
    pub max_frame_bytes: usize,
    /// Timeout applied to requests that carry none.
    pub default_timeout: Duration,
    /// Hard cap on any request's timeout; larger asks are clamped so one
    /// client cannot monopolize a worker.
    pub max_timeout: Duration,
    /// Byte budget for the warm term-store cache shared by the whole
    /// worker pool (one [`WarmCache`], one budget — not per worker); 0
    /// disables warm reuse.
    pub warm_cache_bytes: usize,
    /// How long in-flight jobs get to finish during drain before their
    /// budgets are cancelled.
    pub drain_grace: Duration,
    /// Socket read timeout; doubles as the shutdown-poll cadence for idle
    /// connections, so drains complete within roughly this bound after
    /// in-flight work ends.
    pub read_timeout: Duration,
    /// Base search options; per-request timeouts override
    /// [`SearchOptions::timeout`].
    pub options: SearchOptions,
    /// When set, every finished synthesis is appended to this run-corpus
    /// directory (same records `l2 bench --corpus` writes), keyed by the
    /// server-assigned request ID.
    pub corpus_dir: Option<PathBuf>,
    /// When set, every request appends one [`AccessRecord`] JSONL line
    /// to this file (created if absent, appended to otherwise).
    pub access_log: Option<PathBuf>,
    /// Service-time threshold (milliseconds) at or above which a job's
    /// full search trace is kept; requires [`ServeConfig::slow_trace_dir`].
    /// `Some(0)` captures every job.
    pub slow_trace_ms: Option<u64>,
    /// Directory receiving `<req_id>.jsonl` slow traces (created on
    /// startup); requires [`ServeConfig::slow_trace_ms`].
    pub slow_trace_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_capacity: 16,
            max_frame_bytes: MAX_FRAME_BYTES,
            default_timeout: Duration::from_secs(2),
            max_timeout: Duration::from_secs(30),
            warm_cache_bytes: 32 << 20,
            drain_grace: Duration::from_secs(1),
            read_timeout: Duration::from_millis(50),
            options: SearchOptions::default(),
            corpus_dir: None,
            access_log: None,
            slow_trace_ms: None,
            slow_trace_dir: None,
        }
    }
}

enum ListenerKind {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn set_read_timeout(&self, t: Duration) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(Some(t)),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(Some(t)),
        }
    }

    /// The client's identity for per-client accounting: the source IP
    /// (port stripped — one host, one bucket) for TCP, `unix` for
    /// Unix-domain sockets.
    fn peer(&self) -> String {
        match self {
            Conn::Tcp(s) => s
                .peer_addr()
                .map(|a| a.ip().to_string())
                .unwrap_or_else(|_| "unknown".to_owned()),
            #[cfg(unix)]
            Conn::Unix(_) => "unix".to_owned(),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Live request-shape distributions, mutex-guarded in [`Shared`]: the
/// instruments behind the enriched `stats` op. Lock traffic is one short
/// critical section per request (plus one per completed job), far off
/// any search hot path.
struct ServeMetrics {
    /// Queue wait of every executed job, microseconds.
    queue_wait_us: Histogram,
    /// Service time of every executed job (crashed included),
    /// microseconds.
    service_us: Histogram,
    /// Request frame payload sizes, bytes.
    frame_bytes: Histogram,
    /// Requests per op (`synth`, `ping`, `stats`, `shutdown`, `invalid`).
    ops: BTreeMap<String, u64>,
    /// Requests per client peer (IP for TCP, `unix` for sockets).
    clients: BTreeMap<String, u64>,
}

impl ServeMetrics {
    fn new() -> ServeMetrics {
        ServeMetrics {
            queue_wait_us: Histogram::new(EXP2_BOUNDS),
            service_us: Histogram::new(EXP2_BOUNDS),
            frame_bytes: Histogram::new(EXP2_BOUNDS),
            ops: BTreeMap::new(),
            clients: BTreeMap::new(),
        }
    }
}

fn count_map_json(m: &BTreeMap<String, u64>) -> Json {
    Json::Obj(m.iter().map(|(k, v)| (k.clone(), (*v).into())).collect())
}

/// Counters the daemon keeps while serving; snapshotted by the `stats`
/// op and folded into the final [`ServeSummary`].
struct Shared {
    /// Jobs sitting in the admission queue (approximate; for hints).
    depth: AtomicUsize,
    /// Jobs currently executing on a worker.
    in_flight: AtomicUsize,
    /// Connections ever accepted.
    connections: AtomicU64,
    /// Synthesis jobs admitted to the queue.
    accepted: AtomicU64,
    /// Jobs that ran to a report (solved or not).
    completed: AtomicU64,
    /// Completed jobs whose outcome was a program.
    solved: AtomicU64,
    /// Jobs shed at admission with `overloaded`.
    shed: AtomicU64,
    /// Jobs that panicked under the unwind guard.
    crashed: AtomicU64,
    /// Malformed requests (bad frame payloads, invalid problems).
    rejected: AtomicU64,
    /// Queued-but-unstarted jobs answered `shutting_down` during drain.
    drained: AtomicU64,
    /// Warm-cache hits summed across workers.
    warm_hits: AtomicU64,
    /// Exponentially-weighted mean service time, microseconds.
    ewma_us: AtomicU64,
    /// Job sequence numbers (cancel-registry keys).
    seq: AtomicU64,
    /// Slow traces captured to [`ServeConfig::slow_trace_dir`].
    slow_traces: AtomicU64,
    /// Cancel tokens of in-flight jobs, for drain.
    cancels: Mutex<HashMap<u64, CancelToken>>,
    /// Live request-shape histograms and per-op/per-client counts.
    metrics: Mutex<ServeMetrics>,
    started: Instant,
}

impl Shared {
    fn new() -> Shared {
        Shared {
            depth: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            connections: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            solved: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            crashed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            ewma_us: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            slow_traces: AtomicU64::new(0),
            cancels: Mutex::new(HashMap::new()),
            metrics: Mutex::new(ServeMetrics::new()),
            started: Instant::now(),
        }
    }

    /// Milliseconds since the daemon started — the access log's clock.
    fn t_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }

    /// Locks the live metrics, recovering from a poisoned lock (a panic
    /// while holding it leaves counters merely stale, never corrupt
    /// enough to justify wedging every later request).
    fn metrics(&self) -> std::sync::MutexGuard<'_, ServeMetrics> {
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Accounts one inbound request's shape (called once per request on
    /// the connection thread, before dispatch).
    fn record_request_shape(&self, op: &str, peer: &str, frame_bytes: u64) {
        let mut m = self.metrics();
        m.frame_bytes.record(frame_bytes);
        *m.ops.entry(op.to_owned()).or_default() += 1;
        *m.clients.entry(peer.to_owned()).or_default() += 1;
    }

    /// Accounts one executed job's latencies.
    fn record_timings(&self, queue_wait: Duration, service: Duration) {
        let mut m = self.metrics();
        m.queue_wait_us
            .record(queue_wait.as_micros().min(u128::from(u64::MAX)) as u64);
        m.service_us
            .record(service.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    fn register_cancel(&self, seq: u64, token: CancelToken) {
        if let Ok(mut map) = self.cancels.lock() {
            map.insert(seq, token);
        }
    }

    fn unregister_cancel(&self, seq: u64) {
        if let Ok(mut map) = self.cancels.lock() {
            map.remove(&seq);
        }
    }

    fn cancel_all(&self) {
        if let Ok(map) = self.cancels.lock() {
            for token in map.values() {
                token.cancel();
            }
        }
    }

    /// Folds a completed job's service time into the EWMA (α = 1/8).
    /// Racy read-modify-write is fine — this feeds a retry *hint*.
    fn record_service(&self, elapsed: Duration) {
        let sample = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let old = self.ewma_us.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample
        } else {
            old - old / 8 + sample / 8
        };
        self.ewma_us.store(new, Ordering::Relaxed);
    }

    /// How long a shed client should wait before retrying — see
    /// [`retry_hint_ms`] for the computation and its clamps.
    fn retry_after_ms(&self, workers: usize) -> u64 {
        retry_hint_ms(
            self.ewma_us.load(Ordering::Relaxed),
            self.depth.load(Ordering::Relaxed),
            workers,
        )
    }

    fn snapshot_json(&self, config: &ServeConfig, warm: &WarmCache) -> Json {
        let (warm_lookups_hit, warm_lookups_miss, warm_evictions) = warm.counters();
        let m = self.metrics();
        Json::obj([
            (
                "uptime_ms",
                Json::Float(self.started.elapsed().as_secs_f64() * 1e3),
            ),
            ("workers", config.workers.into()),
            ("queue_capacity", config.queue_capacity.into()),
            ("queue_depth", self.depth.load(Ordering::Relaxed).into()),
            ("in_flight", self.in_flight.load(Ordering::Relaxed).into()),
            (
                "connections",
                self.connections.load(Ordering::Relaxed).into(),
            ),
            ("accepted", self.accepted.load(Ordering::Relaxed).into()),
            ("completed", self.completed.load(Ordering::Relaxed).into()),
            ("solved", self.solved.load(Ordering::Relaxed).into()),
            ("shed", self.shed.load(Ordering::Relaxed).into()),
            ("crashed", self.crashed.load(Ordering::Relaxed).into()),
            ("rejected", self.rejected.load(Ordering::Relaxed).into()),
            ("drained", self.drained.load(Ordering::Relaxed).into()),
            ("warm_hits", self.warm_hits.load(Ordering::Relaxed).into()),
            (
                "ewma_service_us",
                self.ewma_us.load(Ordering::Relaxed).into(),
            ),
            (
                "slow_traces",
                self.slow_traces.load(Ordering::Relaxed).into(),
            ),
            ("warm_cache_entries", warm.len().into()),
            ("warm_cache_bytes", warm.approx_bytes().into()),
            ("warm_cache_lookup_hits", warm_lookups_hit.into()),
            ("warm_cache_lookup_misses", warm_lookups_miss.into()),
            ("warm_cache_evictions", warm_evictions.into()),
            ("queue_wait_us", m.queue_wait_us.summary_json()),
            ("service_us", m.service_us.summary_json()),
            ("frame_bytes", m.frame_bytes.summary_json()),
            ("ops", count_map_json(&m.ops)),
            ("clients", count_map_json(&m.clients)),
        ])
    }
}

/// Final accounting returned by [`Server::run`] after a drain.
#[derive(Clone, Debug)]
pub struct ServeSummary {
    /// Connections ever accepted.
    pub connections: u64,
    /// Synthesis jobs admitted.
    pub accepted: u64,
    /// Jobs that ran to a report.
    pub completed: u64,
    /// Jobs solved with a program.
    pub solved: u64,
    /// Jobs shed with `overloaded`.
    pub shed: u64,
    /// Jobs that panicked (and were answered structurally).
    pub crashed: u64,
    /// Malformed requests.
    pub rejected: u64,
    /// Queued jobs answered `shutting_down` at drain.
    pub drained: u64,
    /// Slow traces captured.
    pub slow_traces: u64,
    /// Wall-clock from drain start to full stop.
    pub drain_elapsed: Duration,
    /// Queue-wait distribution over every executed job, microseconds.
    pub queue_wait_us: Histogram,
    /// Service-time distribution over every executed job, microseconds.
    pub service_us: Histogram,
}

impl ServeSummary {
    /// Serializes the summary as a JSON object, latency summaries
    /// included — a clean shutdown leaves a usable one-line capacity
    /// record, not just counts.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("connections", self.connections.into()),
            ("accepted", self.accepted.into()),
            ("completed", self.completed.into()),
            ("solved", self.solved.into()),
            ("shed", self.shed.into()),
            ("crashed", self.crashed.into()),
            ("rejected", self.rejected.into()),
            ("drained", self.drained.into()),
            ("slow_traces", self.slow_traces.into()),
            (
                "drain_elapsed_ms",
                Json::Float(self.drain_elapsed.as_secs_f64() * 1e3),
            ),
            ("queue_wait_us", self.queue_wait_us.summary_json()),
            ("service_us", self.service_us.summary_json()),
        ])
    }

    /// A latency quantile in milliseconds (0 when no job was timed):
    /// `service` selects service time, otherwise queue wait. Backs the
    /// CLI's one-line drain record.
    pub fn latency_ms(&self, service: bool, q: f64) -> f64 {
        let h = if service {
            &self.service_us
        } else {
            &self.queue_wait_us
        };
        h.quantile(q).unwrap_or(0) as f64 / 1e3
    }
}

/// Floor for the shed-retry hint. Queue depth is read racily and can be
/// transiently 0 at shed time (workers just drained it) while the daemon
/// is still saturated; without a floor the hint would be 0 ms and invite
/// a client tight-retry loop.
const RETRY_HINT_FLOOR_MS: u64 = 10;

/// Ceiling for the shed-retry hint: a long queue of slow jobs should not
/// tell clients to go away for minutes — the backlog estimate is an
/// EWMA-based guess, not a promise.
const RETRY_HINT_CEILING_MS: u64 = 30_000;

/// Service time assumed before the first job completes (the EWMA is
/// still 0 at startup): 20 ms, a typical quick-catalog synthesis.
const RETRY_HINT_MIN_SERVICE_US: u64 = 20_000;

/// How long a shed client should wait before retrying: the EWMA service
/// time multiplied by the queue ahead of it (plus the client's own job),
/// spread across the workers, clamped to
/// [[`RETRY_HINT_FLOOR_MS`], [`RETRY_HINT_CEILING_MS`]]. Pure so the
/// admission-control arithmetic is unit-testable without a daemon.
fn retry_hint_ms(ewma_us: u64, depth: usize, workers: usize) -> u64 {
    let ewma_us = ewma_us.max(RETRY_HINT_MIN_SERVICE_US);
    let waiting = (depth as u64).saturating_add(1);
    let ms = ewma_us.saturating_mul(waiting) / (workers.max(1) as u64) / 1_000;
    ms.clamp(RETRY_HINT_FLOOR_MS, RETRY_HINT_CEILING_MS)
}

/// One admitted synthesis job crossing from a connection thread to a
/// worker: the parsed [`Problem`] (the `Arc` spine is `Send`, so it
/// crosses directly) and a reply channel the worker answers exactly once.
struct Job {
    seq: u64,
    /// Server-assigned request ID (`c<conn>-r<n>`): the access-log key,
    /// corpus key, and slow-trace filename.
    req_id: String,
    /// Client peer, carried for the worker-side access record.
    peer: String,
    /// Request frame payload size, carried for the access record.
    frame_bytes: u64,
    id: Option<String>,
    spec: Problem,
    timeout: Duration,
    portfolio: bool,
    #[cfg_attr(not(feature = "failpoints"), allow(dead_code))]
    failpoint: Option<String>,
    enqueued: Instant,
    reply: mpsc::Sender<Json>,
}

/// A bound daemon, ready to [`run`](Server::run).
pub struct Server {
    config: ServeConfig,
    listener: ListenerKind,
    local_addr: String,
    control: Arc<AtomicBool>,
}

impl Server {
    /// Binds the configured address (TCP `host:port`, or `unix:/path` on
    /// Unix targets; a stale socket file at that path is removed first).
    ///
    /// # Errors
    ///
    /// Any bind/listen failure, or `unix:` on a non-Unix target.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let (listener, local_addr) = if let Some(path) = config.addr.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                (ListenerKind::Unix(l), config.addr.clone())
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix: addresses need a Unix target",
                ));
            }
        } else {
            let l = TcpListener::bind(&config.addr)?;
            let addr = l.local_addr()?.to_string();
            (ListenerKind::Tcp(l), addr)
        };
        Ok(Server {
            config,
            listener,
            local_addr,
            control: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actually-bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> &str {
        &self.local_addr
    }

    /// The drain flag. Setting it to `true` (from a signal handler, a
    /// watchdog, or a test) starts a graceful shutdown; the `shutdown`
    /// protocol op sets the same flag.
    pub fn control(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.control)
    }

    /// Serves until the control flag is set, then drains and returns the
    /// final accounting.
    ///
    /// # Errors
    ///
    /// Fatal listener errors only — per-connection and per-request
    /// failures are answered structurally and never stop the daemon.
    pub fn run(self) -> io::Result<ServeSummary> {
        let Server {
            config,
            listener,
            control,
            ..
        } = self;
        match &listener {
            ListenerKind::Tcp(l) => l.set_nonblocking(true)?,
            #[cfg(unix)]
            ListenerKind::Unix(l) => l.set_nonblocking(true)?,
        }
        let corpus = match &config.corpus_dir {
            Some(dir) => Some(Corpus::open(dir).map_err(|e| io::Error::other(e.to_string()))?),
            None => None,
        };
        let access = match &config.access_log {
            Some(path) => Some(AccessLog::open(path).map_err(|e| io::Error::other(e.to_string()))?),
            None => None,
        };
        if let Some(dir) = &config.slow_trace_dir {
            std::fs::create_dir_all(dir)?;
        }
        let shared = Shared::new();
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(config.queue_capacity);
        let job_rx = Mutex::new(job_rx);
        // One warm cache for the whole pool: any worker's finished search
        // seeds any other worker's next one, under a single byte budget.
        let warm = WarmCache::new(config.warm_cache_bytes);
        let mut listen_error: Option<io::Error> = None;
        let mut drain_started_at: Option<Instant> = None;

        thread::scope(|scope| {
            for _ in 0..config.workers.max(1) {
                scope.spawn(|| {
                    worker_loop(
                        &config,
                        &shared,
                        &control,
                        &job_rx,
                        &warm,
                        corpus.as_ref(),
                        access.as_ref(),
                    )
                });
            }
            while !control.load(Ordering::SeqCst) {
                let accepted = match &listener {
                    ListenerKind::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
                    #[cfg(unix)]
                    ListenerKind::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
                };
                match accepted {
                    Ok(conn) => {
                        let conn_no = shared.connections.fetch_add(1, Ordering::Relaxed) + 1;
                        let tx = job_tx.clone();
                        let (config, shared, control) = (&config, &shared, &control);
                        let (warm, access) = (&warm, access.as_ref());
                        scope.spawn(move || {
                            connection_loop(
                                conn, conn_no, config, shared, control, tx, warm, access,
                            )
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        listen_error = Some(e);
                        control.store(true, Ordering::SeqCst);
                    }
                }
            }
            // Drain: give in-flight jobs their grace, then cancel them.
            let drain_started = Instant::now();
            while shared.in_flight.load(Ordering::SeqCst) > 0
                && drain_started.elapsed() < config.drain_grace
            {
                thread::sleep(Duration::from_millis(5));
            }
            shared.cancel_all();
            drop(job_tx);
            // The scope's implicit join waits for workers (queue empty +
            // flag set) and connections (next read-timeout poll).
            drain_started_at = Some(drain_started);
        });

        if let Some(e) = listen_error {
            return Err(e);
        }
        let (queue_wait_us, service_us) = {
            let m = shared.metrics();
            (m.queue_wait_us.clone(), m.service_us.clone())
        };
        Ok(ServeSummary {
            connections: shared.connections.load(Ordering::Relaxed),
            accepted: shared.accepted.load(Ordering::Relaxed),
            completed: shared.completed.load(Ordering::Relaxed),
            solved: shared.solved.load(Ordering::Relaxed),
            shed: shared.shed.load(Ordering::Relaxed),
            crashed: shared.crashed.load(Ordering::Relaxed),
            rejected: shared.rejected.load(Ordering::Relaxed),
            drained: shared.drained.load(Ordering::Relaxed),
            slow_traces: shared.slow_traces.load(Ordering::Relaxed),
            drain_elapsed: drain_started_at.map_or(Duration::ZERO, |t| t.elapsed()),
            queue_wait_us,
            service_us,
        })
    }
}

/// Per-request context a connection thread hands to the dispatchers:
/// the minted request ID, the client identity, and the access log.
struct RequestCtx<'a> {
    req_id: String,
    peer: &'a str,
    frame_bytes: u64,
    access: Option<&'a AccessLog>,
}

impl RequestCtx<'_> {
    /// A record skeleton for requests decided on the connection thread
    /// (non-synthesis ops and admission rejections): no queue wait, no
    /// service time — the request never reached a worker.
    fn record(&self, shared: &Shared, op: &str, status: &str) -> AccessRecord {
        AccessRecord {
            t_ms: shared.t_ms(),
            req_id: self.req_id.clone(),
            op: op.to_owned(),
            peer: self.peer.to_owned(),
            status: status.to_owned(),
            frame_bytes: self.frame_bytes,
            queue_wait_ms: None,
            service_ms: None,
            warm_hits: None,
            shed: false,
            crashed: false,
            problem: None,
            fingerprint: None,
        }
    }
}

/// Appends one access record, reporting (never propagating) failures:
/// telemetry must not take down a request.
fn append_access(access: Option<&AccessLog>, record: &AccessRecord) {
    if let Some(log) = access {
        if let Err(e) = log.append(record) {
            eprintln!("warning: access-log append failed: {e}");
        }
    }
}

/// Serves one connection: strictly sequential frames, one reply per
/// request. Framing errors close the connection; *protocol* errors
/// (bad JSON, invalid problems) are answered structurally and the
/// connection keeps going — the framing layer is still in sync.
///
/// Every request is stamped with a server-assigned ID (`c<conn>-r<n>`)
/// before dispatch; the reply carries it back as `req_id`.
#[allow(clippy::too_many_arguments)]
fn connection_loop(
    mut conn: Conn,
    conn_no: u64,
    config: &ServeConfig,
    shared: &Shared,
    control: &AtomicBool,
    job_tx: mpsc::SyncSender<Job>,
    warm: &WarmCache,
    access: Option<&AccessLog>,
) {
    if conn.set_read_timeout(config.read_timeout).is_err() {
        return;
    }
    let peer = conn.peer();
    let mut reader = FrameReader::new(config.max_frame_bytes);
    let mut req_no = 0u64;
    loop {
        let payload = match reader.read_frame(&mut conn) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(FrameError::TimedOut) => {
                if control.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        req_no += 1;
        let ctx = RequestCtx {
            req_id: format!("c{conn_no}-r{req_no}"),
            peer: &peer,
            frame_bytes: payload.len() as u64,
            access,
        };
        let reply = handle_payload(&payload, config, shared, control, &job_tx, warm, &ctx);
        let reply = proto::tag_req_id(reply, &ctx.req_id);
        if write_frame(&mut conn, reply.to_string().as_bytes()).is_err() {
            return;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_payload(
    payload: &[u8],
    config: &ServeConfig,
    shared: &Shared,
    control: &AtomicBool,
    job_tx: &mpsc::SyncSender<Job>,
    warm: &WarmCache,
    ctx: &RequestCtx<'_>,
) -> Json {
    let req = match proto::parse_request(payload) {
        Ok(r) => r,
        Err(msg) => {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            shared.record_request_shape("invalid", ctx.peer, ctx.frame_bytes);
            append_access(ctx.access, &ctx.record(shared, "invalid", "error"));
            return proto::resp_error(None, &msg);
        }
    };
    let op = match req.op {
        ReqOp::Ping => "ping",
        ReqOp::Stats => "stats",
        ReqOp::Shutdown => "shutdown",
        ReqOp::Synth => "synth",
    };
    shared.record_request_shape(op, ctx.peer, ctx.frame_bytes);
    let id = req.id.clone();
    match req.op {
        ReqOp::Ping => {
            append_access(ctx.access, &ctx.record(shared, op, "ok"));
            proto::resp_pong(id.as_deref())
        }
        ReqOp::Stats => {
            append_access(ctx.access, &ctx.record(shared, op, "ok"));
            proto::resp_stats(id.as_deref(), shared.snapshot_json(config, warm))
        }
        ReqOp::Shutdown => {
            control.store(true, Ordering::SeqCst);
            append_access(ctx.access, &ctx.record(shared, op, "ok"));
            proto::resp_draining(id.as_deref())
        }
        ReqOp::Synth => admit_synth(req, config, shared, control, job_tx, ctx),
    }
}

/// Validates a synth request on the connection thread (cheap, and bad
/// problems never consume a queue slot), then runs admission control.
///
/// Access-record discipline: this function writes the record for every
/// request it *decides* (drain refusal, invalid problem, shed,
/// disconnected queue); an admitted job's record is written by the
/// worker, which alone knows queue wait, service time, and outcome.
fn admit_synth(
    req: Request,
    config: &ServeConfig,
    shared: &Shared,
    control: &AtomicBool,
    job_tx: &mpsc::SyncSender<Job>,
    ctx: &RequestCtx<'_>,
) -> Json {
    let id = req.id.clone();
    if control.load(Ordering::SeqCst) {
        append_access(ctx.access, &ctx.record(shared, "synth", "shutting_down"));
        return proto::resp_shutting_down(id.as_deref());
    }
    let problem: Result<Problem, String> = match (&req.problem_source, &req.problem_json) {
        (Some(src), _) => l2file::parse_problem(src),
        (None, Some(jp)) => jp.build(),
        (None, None) => unreachable!("parse_request requires a problem for synth"),
    };
    let problem = match problem {
        Ok(p) => p,
        Err(msg) => {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            append_access(ctx.access, &ctx.record(shared, "synth", "error"));
            return proto::resp_error(id.as_deref(), &format!("invalid problem: {msg}"));
        }
    };
    let timeout = req
        .timeout_ms
        .map(Duration::from_millis)
        .unwrap_or(config.default_timeout)
        .min(config.max_timeout);
    let (reply_tx, reply_rx) = mpsc::channel();
    let problem_name = problem.name().to_owned();
    let job = Job {
        seq: shared.seq.fetch_add(1, Ordering::Relaxed),
        req_id: ctx.req_id.clone(),
        peer: ctx.peer.to_owned(),
        frame_bytes: ctx.frame_bytes,
        id: id.clone(),
        spec: problem,
        timeout,
        portfolio: req.portfolio,
        failpoint: req.failpoint,
        enqueued: Instant::now(),
        reply: reply_tx,
    };
    match job_tx.try_send(job) {
        Ok(()) => {
            shared.depth.fetch_add(1, Ordering::SeqCst);
            shared.accepted.fetch_add(1, Ordering::Relaxed);
            // The worker answers exactly once on every path; a dropped
            // channel means the worker died outside its panic guard.
            match reply_rx.recv() {
                Ok(json) => json,
                Err(_) => proto::resp_error(id.as_deref(), "worker disappeared mid-request"),
            }
        }
        Err(TrySendError::Full(_)) => {
            shared.shed.fetch_add(1, Ordering::Relaxed);
            let mut record = ctx.record(shared, "synth", "overloaded");
            record.shed = true;
            record.problem = Some(problem_name);
            append_access(ctx.access, &record);
            proto::resp_overloaded(
                id.as_deref(),
                shared.retry_after_ms(config.workers),
                shared.depth.load(Ordering::Relaxed),
            )
        }
        Err(TrySendError::Disconnected(_)) => {
            append_access(ctx.access, &ctx.record(shared, "synth", "shutting_down"));
            proto::resp_shutting_down(id.as_deref())
        }
    }
}

fn worker_loop(
    config: &ServeConfig,
    shared: &Shared,
    control: &AtomicBool,
    job_rx: &Mutex<mpsc::Receiver<Job>>,
    warm: &WarmCache,
    corpus: Option<&Corpus>,
    access: Option<&AccessLog>,
) {
    loop {
        let next = {
            let rx = match job_rx.lock() {
                Ok(rx) => rx,
                Err(_) => return,
            };
            rx.recv_timeout(Duration::from_millis(25))
        };
        match next {
            Ok(job) => {
                shared.depth.fetch_sub(1, Ordering::SeqCst);
                if control.load(Ordering::SeqCst) {
                    shared.drained.fetch_add(1, Ordering::Relaxed);
                    append_access(
                        access,
                        &AccessRecord {
                            t_ms: shared.t_ms(),
                            req_id: job.req_id.clone(),
                            op: "synth".to_owned(),
                            peer: job.peer.clone(),
                            status: "shutting_down".to_owned(),
                            frame_bytes: job.frame_bytes,
                            queue_wait_ms: Some(job.enqueued.elapsed().as_secs_f64() * 1e3),
                            service_ms: None,
                            warm_hits: None,
                            shed: false,
                            crashed: false,
                            problem: Some(job.spec.name().to_owned()),
                            fingerprint: None,
                        },
                    );
                    let _ = job.reply.send(proto::resp_shutting_down(job.id.as_deref()));
                    continue;
                }
                execute(job, config, shared, warm, corpus, access);
            }
            Err(RecvTimeoutError::Timeout) => {
                if control.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// An in-memory byte sink for per-request trace capture: the
/// [`JsonlTracer`] writes into it during the search, and the buffer is
/// persisted to `<slow_trace_dir>/<req_id>.jsonl` afterwards only when
/// the job proved slow — capture cost without the decision having to be
/// made up front.
#[derive(Clone, Default)]
struct TraceBuf(Arc<Mutex<Vec<u8>>>);

impl TraceBuf {
    fn take(&self) -> Vec<u8> {
        std::mem::take(&mut *self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

impl Write for TraceBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Runs one job under the unwind guard and answers its reply channel
/// exactly once. The receiver may have hung up (connection died); the
/// job is still executed and accounted, so send results are ignored.
fn execute(
    job: Job,
    config: &ServeConfig,
    shared: &Shared,
    warm: &WarmCache,
    corpus: Option<&Corpus>,
    access: Option<&AccessLog>,
) {
    let queue_wait = job.enqueued.elapsed();
    let queue_wait_ms = queue_wait.as_secs_f64() * 1e3;
    let problem = job.spec;
    let mut options = config.options.clone();
    options.timeout = Some(job.timeout);
    let token = CancelToken::new();
    shared.register_cancel(job.seq, token.clone());
    shared.in_flight.fetch_add(1, Ordering::SeqCst);
    #[cfg(feature = "failpoints")]
    if let Some(site) = &job.failpoint {
        if !arm_failpoint(site) {
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            shared.unregister_cancel(job.seq);
            let _ = job.reply.send(proto::resp_error(
                job.id.as_deref(),
                &format!("unknown failpoint site `{site}`"),
            ));
            return;
        }
    }
    // Slow-trace capture: when configured, the search runs against a
    // JSONL tracer writing into an in-memory buffer; the buffer is kept
    // only if the job proves slow. Tracing is emit-only by construction
    // (the engine never reads events), so the dyn swap cannot perturb
    // the search — the differential test in `tests/serve.rs` enforces it.
    let slow_capture = config.slow_trace_ms.is_some() && config.slow_trace_dir.is_some();
    let trace_buf = TraceBuf::default();
    let mut slow_tracer = slow_capture.then(|| JsonlTracer::new(trace_buf.clone()));
    let mut noop = NoopTracer;
    let tracer: &mut dyn Tracer = match slow_tracer.as_mut() {
        Some(t) => t,
        None => &mut noop,
    };
    let started = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        // The one failpoint site that models an *unguarded* engine panic
        // — deeper sites (verify.candidate, deduce.plan) are absorbed by
        // the engine's own per-candidate isolation and never reach this
        // guard. Compiles to nothing without the `failpoints` feature.
        if let Some(crate::failpoints::FailAction::Panic) =
            crate::failpoints::check("serve.request")
        {
            panic!("injected panic at serve.request");
        }
        if job.portfolio {
            // Portfolio rungs race on their own threads with their own
            // budgets and skip the warm cache.
            portfolio_report_traced(&problem, &options, tracer)
        } else {
            Synthesizer::with_options(options.clone()).synthesize_report_warm(
                &problem,
                tracer,
                Some(&token),
                Some(warm),
            )
        }
    }));
    let elapsed = started.elapsed();
    #[cfg(feature = "failpoints")]
    crate::failpoints::reset();
    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    shared.unregister_cancel(job.seq);
    shared.completed.fetch_add(1, Ordering::Relaxed);
    shared.record_timings(queue_wait, elapsed);
    if let Some(tracer) = slow_tracer {
        let _ = tracer.finish();
        if let Some(dir) = &config.slow_trace_dir {
            if elapsed.as_millis() as u64 >= config.slow_trace_ms.unwrap_or(0) {
                let path = dir.join(format!("{}.jsonl", job.req_id));
                match std::fs::write(&path, trace_buf.take()) {
                    Ok(()) => {
                        shared.slow_traces.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => eprintln!(
                        "warning: slow-trace write to {} failed: {e}",
                        path.display()
                    ),
                }
            }
        }
    }
    let fingerprint = (access.is_some() || corpus.is_some()).then(|| options_fingerprint(&options));
    let mut record = AccessRecord {
        t_ms: shared.t_ms(),
        req_id: job.req_id.clone(),
        op: "synth".to_owned(),
        peer: job.peer.clone(),
        status: String::new(),
        frame_bytes: job.frame_bytes,
        queue_wait_ms: Some(queue_wait_ms),
        service_ms: Some(elapsed.as_secs_f64() * 1e3),
        warm_hits: None,
        shed: false,
        crashed: false,
        problem: Some(problem.name().to_owned()),
        fingerprint: fingerprint.clone(),
    };
    let reply = match result {
        Ok(report) => {
            shared
                .warm_hits
                .fetch_add(report.stats.warm_hits, Ordering::Relaxed);
            if report.outcome.is_ok() {
                shared.solved.fetch_add(1, Ordering::Relaxed);
            }
            shared.record_service(elapsed);
            record.status = if report.outcome.is_ok() {
                "ok".to_owned()
            } else {
                "unsolved".to_owned()
            };
            record.warm_hits = Some(report.stats.warm_hits);
            if let Some(corpus) = corpus {
                let m = measurement_of_report(&problem, &report);
                let run = RunRecord::of_served_request(
                    &m,
                    fingerprint.as_deref().unwrap_or_default(),
                    &job.req_id,
                );
                if let Err(e) = corpus.append(&[run]) {
                    eprintln!("warning: corpus append failed: {e}");
                }
            }
            proto::resp_report(job.id.as_deref(), &report, queue_wait_ms)
        }
        Err(payload) => {
            shared.crashed.fetch_add(1, Ordering::Relaxed);
            record.status = "error".to_owned();
            record.crashed = true;
            proto::resp_error(
                job.id.as_deref(),
                &format!("synthesis crashed: {}", panic_message(payload.as_ref())),
            )
        }
    };
    append_access(access, &record);
    let _ = job.reply.send(reply);
}

#[cfg(feature = "failpoints")]
fn arm_failpoint(site: &str) -> bool {
    use crate::failpoints::{arm, FailAction};
    // Sites must be `&'static str`; map through the known list.
    for known in [
        "serve.request",
        "search.pop",
        "verify.candidate",
        "deduce.plan",
        "enumerate.level",
        "store.evict",
    ] {
        if known == site {
            arm(known, FailAction::Panic, 1);
            return true;
        }
    }
    false
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

fn measurement_of_report(problem: &Problem, report: &SearchReport) -> Measurement {
    match &report.outcome {
        Ok(s) => Measurement {
            name: problem.name().to_owned(),
            elapsed: report.elapsed,
            solved: true,
            cost: s.cost,
            size: s.program.body().size(),
            program: s.program.to_string(),
            examples: problem.examples().len(),
            stats: report.stats.clone(),
            error: None,
        },
        Err(e) => Measurement {
            name: problem.name().to_owned(),
            elapsed: report.elapsed,
            solved: false,
            cost: 0,
            size: 0,
            program: String::new(),
            examples: problem.examples().len(),
            stats: report.stats.clone(),
            error: Some(e.to_string()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_hint_never_invites_a_tight_loop() {
        // Transiently empty queue (depth 0, tiny EWMA): the floor holds.
        assert_eq!(retry_hint_ms(1, 0, 4), RETRY_HINT_FLOOR_MS);
        assert_eq!(retry_hint_ms(0, 0, 1), RETRY_HINT_MIN_SERVICE_US / 1_000);
        for depth in 0..8 {
            for workers in 1..8 {
                assert!(retry_hint_ms(0, depth, workers) >= RETRY_HINT_FLOOR_MS);
            }
        }
    }

    #[test]
    fn retry_hint_uses_assumed_service_time_at_startup() {
        // Before any job completes the EWMA is 0; the hint falls back to
        // the assumed minimum service time rather than hinting 0.
        assert_eq!(
            retry_hint_ms(0, 3, 2),
            RETRY_HINT_MIN_SERVICE_US * 4 / 2 / 1_000
        );
    }

    #[test]
    fn retry_hint_scales_with_backlog_per_worker() {
        // 100ms EWMA, 9 queued ahead + this client, 2 workers -> 500ms.
        assert_eq!(retry_hint_ms(100_000, 9, 2), 500);
        // Same backlog, more workers -> proportionally sooner.
        assert_eq!(retry_hint_ms(100_000, 9, 5), 200);
        // Degenerate worker count is treated as one worker.
        assert_eq!(retry_hint_ms(100_000, 9, 0), 1_000);
    }

    #[test]
    fn retry_hint_saturates_at_the_ceiling() {
        assert_eq!(
            retry_hint_ms(u64::MAX, usize::MAX, 1),
            RETRY_HINT_CEILING_MS
        );
        assert_eq!(retry_hint_ms(60_000_000, 100, 1), RETRY_HINT_CEILING_MS);
    }
}
