//! `l2 serve`: a crash-isolated synthesis daemon.
//!
//! Turns the synthesizer into a long-lived service without giving up the
//! engine's determinism or the process's stability:
//!
//! * [`frame`] — length-prefixed wire framing that survives garbage
//!   bytes, truncation, and hostile length prefixes.
//! * [`proto`] — JSON requests/responses; every request gets exactly one
//!   structured reply (`ok`, `unsolved`, `error`, `overloaded`,
//!   `shutting_down`).
//! * [`server`] — bounded admission queue with load shedding, a worker
//!   pool with per-request budgets/cancellation, `catch_unwind` crash
//!   isolation, per-worker warm term-store caches, and graceful drain.
//! * [`client`] — connection + call helpers and seeded jittered retry.
//! * [`access`] — per-request observability: every request gets a stable
//!   server-assigned ID (`c<conn>-r<n>`, echoed in the reply as
//!   `req_id`), and with `--access-log` each is accounted by one
//!   schema-versioned JSONL [`AccessRecord`](access::AccessRecord) line;
//!   the offline [`AccessReport`](access::AccessReport) analyzer backs
//!   `l2 serve report`. All of it is observation-only — the differential
//!   test in `tests/serve.rs` proves replies are byte-identical with the
//!   whole layer on or off.
//!
//! The daemon and `l2 synth` share one code path
//! ([`crate::Synthesizer::synthesize_report_warm`]), so a served problem
//! returns the same program, cost, and attempt ladder as a local run
//! under the same options — the differential tests in `tests/serve.rs`
//! hold the bridge.

pub mod access;
pub mod client;
pub mod frame;
pub mod proto;
pub mod server;

pub use access::{load_access_log, AccessError, AccessLog, AccessRecord, AccessReport};
pub use client::{request_with_retry, Backoff, Client, ClientError};
pub use frame::{write_frame, FrameError, FrameReader, MAX_FRAME_BYTES};
pub use proto::{parse_request, JsonProblem, ReqOp, Request, PROTO_VERSION};
pub use server::{ServeConfig, ServeSummary, Server};
