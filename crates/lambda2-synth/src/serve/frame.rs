//! Length-prefixed wire framing for the serve protocol.
//!
//! A frame is a 4-byte big-endian payload length followed by that many
//! payload bytes (UTF-8 JSON at the protocol layer; the framing itself is
//! byte-agnostic). The reader is built to survive hostile input: garbage
//! bytes, truncated frames, and absurd length prefixes all surface as
//! structured [`FrameError`]s — never a panic, never unbounded buffering
//! (the length cap is checked *before* any payload allocation).
//!
//! [`FrameReader`] is an incremental state machine: a read timeout
//! mid-frame returns [`FrameError::TimedOut`] with the partial bytes
//! retained, so a server can poll its shutdown flag between socket
//! timeouts and resume the same frame afterwards.

use std::fmt;
use std::io::{ErrorKind, Read, Write};

/// Default cap on a single frame's payload (4 MiB) — generous for any
/// real problem file, small enough that a hostile length prefix cannot
/// balloon memory.
pub const MAX_FRAME_BYTES: usize = 4 << 20;

/// Read-side failure of the framing layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The peer announced a payload larger than the configured cap. The
    /// connection cannot be resynchronized and should be closed.
    Oversized {
        /// Announced payload length.
        len: usize,
        /// Configured cap.
        max: usize,
    },
    /// The stream ended mid-frame (`got` bytes buffered).
    Truncated {
        /// Bytes received before EOF.
        got: usize,
    },
    /// The underlying read timed out (`WouldBlock`/`TimedOut`); frame
    /// state is retained and the read can be resumed.
    TimedOut,
    /// Any other I/O failure, rendered.
    Io(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Truncated { got } => {
                write!(f, "stream ended mid-frame ({got} bytes buffered)")
            }
            FrameError::TimedOut => write!(f, "read timed out"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame: 4-byte big-endian length, then the payload, then a
/// flush.
///
/// # Errors
///
/// Any I/O error from the writer; a payload over `u32::MAX` bytes is
/// reported as [`ErrorKind::InvalidInput`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(ErrorKind::InvalidInput, "frame payload exceeds u32::MAX")
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Incremental frame reader with a payload-length cap.
#[derive(Debug)]
pub struct FrameReader {
    max_len: usize,
    buf: Vec<u8>,
}

impl FrameReader {
    /// A reader rejecting payloads over `max_len` bytes.
    pub fn new(max_len: usize) -> FrameReader {
        FrameReader {
            max_len,
            buf: Vec::new(),
        }
    }

    /// Pulls bytes from `r` until one full frame is buffered, returning
    /// its payload. Returns `Ok(None)` on a clean EOF at a frame
    /// boundary. On [`FrameError::TimedOut`] the partially read frame is
    /// retained and the next call resumes it; every other error is
    /// terminal for the connection.
    ///
    /// # Errors
    ///
    /// See [`FrameError`].
    pub fn read_frame(&mut self, r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
        let mut chunk = [0u8; 8192];
        loop {
            if self.buf.len() >= 4 {
                let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]])
                    as usize;
                if len > self.max_len {
                    return Err(FrameError::Oversized {
                        len,
                        max: self.max_len,
                    });
                }
                if self.buf.len() >= 4 + len {
                    let payload = self.buf[4..4 + len].to_vec();
                    self.buf.drain(..4 + len);
                    return Ok(Some(payload));
                }
            }
            match r.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(FrameError::Truncated {
                            got: self.buf.len(),
                        })
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err(FrameError::TimedOut)
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(FrameError::Io(e.to_string())),
            }
        }
    }

    /// Bytes currently buffered toward an incomplete frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A reader that hands out its bytes one at a time — the worst-case
    /// fragmentation a socket can produce.
    struct TrickleReader {
        bytes: Vec<u8>,
        pos: usize,
    }

    impl Read for TrickleReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.bytes.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.bytes[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    fn frame_bytes(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for p in payloads {
            write_frame(&mut out, p).unwrap();
        }
        out
    }

    #[test]
    fn round_trips_frames_in_order() {
        let wire = frame_bytes(&[b"hello", b"", b"{\"op\":\"ping\"}"]);
        let mut r = Cursor::new(wire);
        let mut reader = FrameReader::new(MAX_FRAME_BYTES);
        assert_eq!(reader.read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(reader.read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(
            reader.read_frame(&mut r).unwrap().unwrap(),
            b"{\"op\":\"ping\"}"
        );
        assert_eq!(reader.read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn survives_byte_at_a_time_delivery() {
        let wire = frame_bytes(&[b"fragmented payload", b"x"]);
        let mut r = TrickleReader {
            bytes: wire,
            pos: 0,
        };
        let mut reader = FrameReader::new(MAX_FRAME_BYTES);
        assert_eq!(
            reader.read_frame(&mut r).unwrap().unwrap(),
            b"fragmented payload"
        );
        assert_eq!(reader.read_frame(&mut r).unwrap().unwrap(), b"x");
        assert_eq!(reader.read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        wire.extend_from_slice(b"whatever");
        let mut reader = FrameReader::new(1024);
        let err = reader.read_frame(&mut Cursor::new(wire)).unwrap_err();
        assert_eq!(
            err,
            FrameError::Oversized {
                len: u32::MAX as usize,
                max: 1024
            }
        );
    }

    #[test]
    fn truncated_frames_are_reported_not_hung() {
        // A frame announcing 100 bytes but delivering 3.
        let mut wire = Vec::new();
        wire.extend_from_slice(&100u32.to_be_bytes());
        wire.extend_from_slice(b"abc");
        let mut reader = FrameReader::new(MAX_FRAME_BYTES);
        let err = reader.read_frame(&mut Cursor::new(wire)).unwrap_err();
        assert_eq!(err, FrameError::Truncated { got: 7 });
    }

    #[test]
    fn timeout_retains_state_and_resumes() {
        struct OneShot {
            bytes: Vec<u8>,
            served: bool,
        }
        impl Read for OneShot {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.served {
                    return Err(std::io::Error::new(ErrorKind::WouldBlock, "later"));
                }
                self.served = true;
                let n = self.bytes.len().min(buf.len());
                buf[..n].copy_from_slice(&self.bytes[..n]);
                Ok(n)
            }
        }
        let wire = frame_bytes(&[b"split across timeouts"]);
        let (first, rest) = wire.split_at(7);
        let mut reader = FrameReader::new(MAX_FRAME_BYTES);
        let mut r1 = OneShot {
            bytes: first.to_vec(),
            served: false,
        };
        assert_eq!(
            reader.read_frame(&mut r1).unwrap_err(),
            FrameError::TimedOut
        );
        assert_eq!(reader.pending(), 7);
        let mut r2 = Cursor::new(rest.to_vec());
        assert_eq!(
            reader.read_frame(&mut r2).unwrap().unwrap(),
            b"split across timeouts"
        );
    }

    /// Fuzz-style property test: feed deterministic pseudo-random garbage
    /// to the reader under a small cap. Whatever happens — frames, errors,
    /// EOF — the reader must return (no panic, no hang, no runaway
    /// buffering past cap + header + one chunk).
    #[test]
    fn garbage_bytes_never_panic_or_balloon() {
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            // xorshift64* — deterministic, dependency-free.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        for round in 0..200 {
            let len = (next() % 512) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| (next() & 0xff) as u8).collect();
            let cap = 64;
            let mut reader = FrameReader::new(cap);
            let mut cursor = Cursor::new(bytes);
            // Drain until EOF or a terminal error; count iterations so a
            // hypothetical infinite loop fails the test instead of hanging.
            for _ in 0..1024 {
                match reader.read_frame(&mut cursor) {
                    Ok(Some(payload)) => assert!(payload.len() <= cap, "round {round}"),
                    Ok(None) => break,
                    Err(FrameError::TimedOut) => unreachable!("cursor never times out"),
                    Err(_) => break,
                }
            }
            assert!(reader.pending() <= cap + 4 + 8192, "round {round}");
        }
    }

    #[test]
    fn write_frame_rejects_oversized_payloads_gracefully() {
        // Can't allocate 4 GiB in a test; exercise the error path by
        // checking the guard is reachable only via try_from — a zero-len
        // payload round-trips.
        let mut out = Vec::new();
        write_frame(&mut out, b"").unwrap();
        assert_eq!(out, vec![0, 0, 0, 0]);
    }
}
