//! The public synthesizer façade.

use std::time::Duration;

use crate::obs::Tracer;
use crate::problem::Problem;
use crate::search::{search, search_traced, SearchOptions, SynthError, Synthesis};

/// Example-guided program synthesizer (the λ² algorithm).
///
/// Wraps [`SearchOptions`] behind a builder-style API.
///
/// # Examples
///
/// ```
/// use lambda2_synth::{Problem, Synthesizer};
///
/// let problem = Problem::builder("double")
///     .param("l", "[int]")
///     .returns("[int]")
///     .example(&["[]"], "[]")
///     .example(&["[1 2]"], "[2 4]")
///     .example(&["[5]"], "[10]")
///     .build()?;
/// let result = Synthesizer::default().synthesize(&problem).expect("solved");
/// // A minimal map over the list; exact argument order may vary.
/// assert!(result.program.body().to_string().starts_with("(map (lambda (x) "));
/// # use lambda2_lang::parser::parse_value;
/// let out = result.program.apply(&[parse_value("[3 4]").unwrap()]).unwrap();
/// assert_eq!(out, parse_value("[6 8]").unwrap());
/// # Ok::<(), lambda2_synth::ProblemError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Synthesizer {
    options: SearchOptions,
}

impl Synthesizer {
    /// Creates a synthesizer with default options.
    pub fn new() -> Synthesizer {
        Synthesizer::default()
    }

    /// Creates a synthesizer from explicit options.
    pub fn with_options(options: SearchOptions) -> Synthesizer {
        Synthesizer { options }
    }

    /// Sets the wall-clock budget (chainable).
    pub fn timeout(mut self, timeout: Duration) -> Synthesizer {
        self.options.timeout = Some(timeout);
        self
    }

    /// Removes the wall-clock budget (chainable).
    pub fn no_timeout(mut self) -> Synthesizer {
        self.options.timeout = None;
        self
    }

    /// Enables or disables deduction — the paper's key ablation (chainable).
    pub fn deduction(mut self, enabled: bool) -> Synthesizer {
        self.options.deduction = enabled;
        self
    }

    /// Sets the global cost ceiling (chainable).
    pub fn max_cost(mut self, max_cost: u32) -> Synthesizer {
        self.options.max_cost = max_cost;
        self
    }

    /// The active options.
    pub fn options(&self) -> &SearchOptions {
        &self.options
    }

    /// Synthesizes the minimal-cost program fitting `problem`'s examples.
    ///
    /// # Errors
    ///
    /// See [`SynthError`].
    pub fn synthesize(&self, problem: &Problem) -> Result<Synthesis, SynthError> {
        search(problem, &self.options)
    }

    /// [`Synthesizer::synthesize`], streaming telemetry into `tracer`
    /// (see [`crate::obs`]).
    ///
    /// # Errors
    ///
    /// See [`SynthError`].
    pub fn synthesize_traced(
        &self,
        problem: &Problem,
        tracer: &mut dyn Tracer,
    ) -> Result<Synthesis, SynthError> {
        search_traced(problem, &self.options, tracer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_set_options() {
        let s = Synthesizer::new()
            .timeout(Duration::from_secs(3))
            .deduction(false)
            .max_cost(17);
        assert_eq!(s.options().timeout, Some(Duration::from_secs(3)));
        assert!(!s.options().deduction);
        assert_eq!(s.options().max_cost, 17);
        let s = s.no_timeout();
        assert_eq!(s.options().timeout, None);
    }

    #[test]
    fn synthesize_smoke() {
        let p = Problem::builder("sum")
            .param("l", "[int]")
            .returns("int")
            .example(&["[]"], "0")
            .example(&["[1]"], "1")
            .example(&["[1 2]"], "3")
            .example(&["[1 2 3]"], "6")
            .build()
            .unwrap();
        let s = Synthesizer::new().synthesize(&p).unwrap();
        assert!(s.program.satisfies_problem(&p, 10_000));
        assert!(s.stats.popped > 0);
    }
}
