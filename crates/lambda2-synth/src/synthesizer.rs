//! The public synthesizer façade.

use std::time::{Duration, Instant};

use crate::baseline::{synthesize_baseline_within, BaselineOptions};
use crate::enumerate::WarmCache;
use crate::govern::{Attempt, Budget, CancelToken, Rung, SearchReport};
use crate::obs::{NoopTracer, Tracer};
use crate::problem::Problem;
use crate::search::{
    search, search_governed_warm, search_traced, SearchOptions, SynthError, Synthesis,
};

/// Example-guided program synthesizer (the λ² algorithm).
///
/// Wraps [`SearchOptions`] behind a builder-style API.
///
/// # Examples
///
/// ```
/// use lambda2_synth::{Problem, Synthesizer};
///
/// let problem = Problem::builder("double")
///     .param("l", "[int]")
///     .returns("[int]")
///     .example(&["[]"], "[]")
///     .example(&["[1 2]"], "[2 4]")
///     .example(&["[5]"], "[10]")
///     .build()?;
/// let result = Synthesizer::default().synthesize(&problem).expect("solved");
/// // A minimal map over the list; exact argument order may vary.
/// assert!(result.program.body().to_string().starts_with("(map (lambda (x) "));
/// # use lambda2_lang::parser::parse_value;
/// let out = result.program.apply(&[parse_value("[3 4]").unwrap()]).unwrap();
/// assert_eq!(out, parse_value("[6 8]").unwrap());
/// # Ok::<(), lambda2_synth::ProblemError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Synthesizer {
    options: SearchOptions,
}

impl Synthesizer {
    /// Creates a synthesizer with default options.
    pub fn new() -> Synthesizer {
        Synthesizer::default()
    }

    /// Creates a synthesizer from explicit options.
    pub fn with_options(options: SearchOptions) -> Synthesizer {
        Synthesizer { options }
    }

    /// Sets the wall-clock budget (chainable).
    pub fn timeout(mut self, timeout: Duration) -> Synthesizer {
        self.options.timeout = Some(timeout);
        self
    }

    /// Removes the wall-clock budget (chainable).
    pub fn no_timeout(mut self) -> Synthesizer {
        self.options.timeout = None;
        self
    }

    /// Enables or disables deduction — the paper's key ablation (chainable).
    pub fn deduction(mut self, enabled: bool) -> Synthesizer {
        self.options.deduction = enabled;
        self
    }

    /// Enables or disables the abstract-interpretation refutation pre-pass
    /// (chainable); see [`SearchOptions::static_analysis`]. Its
    /// attribution-tier domains never change the result — only refutation
    /// attribution in [`crate::Stats`] — while its pruning tier (gated
    /// separately by [`Synthesizer::static_prune`]) removes search work.
    pub fn static_analysis(mut self, enabled: bool) -> Synthesizer {
        self.options.static_analysis = enabled;
        self
    }

    /// Enables or disables the pruning tier of the static pre-pass
    /// (chainable); see [`SearchOptions::static_prune`]. Sound: the
    /// synthesized program and its cost are byte-identical either way
    /// (differentially tested); only the amount of enumeration and
    /// deduction work spent getting there changes.
    pub fn static_prune(mut self, enabled: bool) -> Synthesizer {
        self.options.static_prune = enabled;
        self
    }

    /// Sets the global cost ceiling (chainable).
    pub fn max_cost(mut self, max_cost: u32) -> Synthesizer {
        self.options.max_cost = max_cost;
        self
    }

    /// Sets the deadline-overshoot bound (chainable); see
    /// [`SearchOptions::max_overshoot`].
    pub fn max_overshoot(mut self, bound: Duration) -> Synthesizer {
        self.options.max_overshoot = bound;
        self
    }

    /// Enables or disables the degraded-options retry ladder used by
    /// [`Synthesizer::synthesize_report`] (chainable).
    pub fn retry_ladder(mut self, enabled: bool) -> Synthesizer {
        self.options.retry_ladder = enabled;
        self
    }

    /// The active options.
    pub fn options(&self) -> &SearchOptions {
        &self.options
    }

    /// Synthesizes the minimal-cost program fitting `problem`'s examples.
    ///
    /// # Errors
    ///
    /// See [`SynthError`].
    pub fn synthesize(&self, problem: &Problem) -> Result<Synthesis, SynthError> {
        search(problem, &self.options)
    }

    /// [`Synthesizer::synthesize`], streaming telemetry into `tracer`
    /// (see [`crate::obs`]).
    ///
    /// # Errors
    ///
    /// See [`SynthError`].
    pub fn synthesize_traced(
        &self,
        problem: &Problem,
        tracer: &mut dyn Tracer,
    ) -> Result<Synthesis, SynthError> {
        search_traced(problem, &self.options, tracer)
    }

    /// Fully governed synthesis: always returns a structured
    /// [`SearchReport`] — outcome, anytime frontier, merged stats, budget
    /// accounting, and the attempt log.
    ///
    /// When [`SearchOptions::retry_ladder`] is on and the primary attempt
    /// fails on a *resource* limit (timeout, pop cap, fuel cap — never
    /// exhaustion or inconsistent examples, which no retry can fix), the
    /// ladder re-runs with degraded options and finally the pure
    /// enumerative baseline, each under a fresh budget with the same
    /// deadline; worst-case wall time is therefore three deadlines. If
    /// every rung fails, the report keeps the primary rung's error and
    /// frontier.
    pub fn synthesize_report(&self, problem: &Problem) -> SearchReport {
        self.synthesize_report_traced(problem, &mut NoopTracer)
    }

    /// [`Synthesizer::synthesize_report`] with telemetry.
    pub fn synthesize_report_traced(
        &self,
        problem: &Problem,
        tracer: &mut dyn Tracer,
    ) -> SearchReport {
        self.synthesize_report_warm(problem, tracer, None, None)
    }

    /// [`Synthesizer::synthesize_report_traced`] for long-lived hosts (the
    /// serve daemon): optionally adopts an external [`CancelToken`] on
    /// every rung's budget (so a drain can cancel the request from
    /// outside) and seeds/harvests a shared cross-request [`WarmCache`]
    /// (see [`crate::search::search_governed_warm`]). With both `None`
    /// this is exactly [`Synthesizer::synthesize_report_traced`]; with
    /// either set, the synthesized program, cost, and attempt ladder are
    /// unchanged — cancellation only adds an exit path and the warm cache
    /// is semantically transparent.
    pub fn synthesize_report_warm(
        &self,
        problem: &Problem,
        tracer: &mut dyn Tracer,
        cancel: Option<&CancelToken>,
        warm: Option<&WarmCache>,
    ) -> SearchReport {
        let adopt = |mut budget: Budget| -> Budget {
            if let Some(token) = cancel {
                budget = budget.with_cancel(token);
            }
            budget
        };
        let overall = Instant::now();
        let budget = adopt(Budget::for_search(&self.options));
        let mut report = search_governed_warm(problem, &self.options, &budget, tracer, warm);
        report.attempts.push(Attempt {
            rung: Rung::Full,
            error: report.outcome.as_ref().err().cloned(),
            elapsed: report.elapsed,
        });
        let retryable = matches!(&report.outcome, Err(e) if e.is_resource_limit());
        if !self.options.retry_ladder || !retryable {
            report.elapsed = overall.elapsed();
            return report;
        }

        // Rung 2: tightened term-cost and global caps (shared with the
        // portfolio racer so both ladders run identical configurations).
        let degraded = self.options.degraded();
        let rung_budget = adopt(Budget::for_search(&degraded));
        let rung = search_governed_warm(problem, &degraded, &rung_budget, tracer, warm);
        report.stats.merge(&rung.stats);
        report.attempts.push(Attempt {
            rung: Rung::Degraded,
            error: rung.outcome.as_ref().err().cloned(),
            elapsed: rung.elapsed,
        });
        if rung.outcome.is_ok() {
            report.outcome = rung.outcome;
            report.frontier = Vec::new();
            report.elapsed = overall.elapsed();
            return report;
        }

        // Rung 3: the pure enumerative baseline — no hypotheses at all, so
        // it is immune to whatever made the main engine's space explode.
        let bopts = BaselineOptions {
            timeout: self.options.timeout,
            eval_fuel: self.options.eval_fuel,
            ..BaselineOptions::default()
        };
        let bbudget = adopt(Budget::new(
            self.options.timeout,
            self.options.max_overshoot,
        ));
        let rung_start = Instant::now();
        match synthesize_baseline_within(problem, &bopts, &bbudget) {
            Ok(s) => {
                report.stats.merge(&s.stats);
                report.attempts.push(Attempt {
                    rung: Rung::Baseline,
                    error: None,
                    elapsed: rung_start.elapsed(),
                });
                report.outcome = Ok(s);
                report.frontier = Vec::new();
            }
            Err(e) => {
                report.attempts.push(Attempt {
                    rung: Rung::Baseline,
                    error: Some(e),
                    elapsed: rung_start.elapsed(),
                });
                // All rungs failed: keep the primary rung's error and
                // frontier — they describe the most capable attempt.
            }
        }
        report.elapsed = overall.elapsed();
        report
    }

    /// [`Synthesizer::synthesize_report`] with the retry-ladder rungs
    /// raced concurrently instead of sequentially (see
    /// [`crate::par::portfolio_report_traced`] for the identity
    /// guarantee). Races the ladder whether or not
    /// [`SearchOptions::retry_ladder`] is set; the equivalence target is
    /// the sequential report *with* the ladder enabled.
    pub fn synthesize_report_portfolio(&self, problem: &Problem) -> SearchReport {
        crate::par::portfolio_report(problem, &self.options)
    }

    /// [`Synthesizer::synthesize_report_portfolio`] with telemetry; the
    /// winning path's events are replayed into `tracer` in ladder order.
    pub fn synthesize_report_portfolio_traced(
        &self,
        problem: &Problem,
        tracer: &mut dyn Tracer,
    ) -> SearchReport {
        crate::par::portfolio_report_traced(problem, &self.options, tracer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id_problem() -> Problem {
        Problem::builder("id")
            .param("l", "[int]")
            .returns("[int]")
            .example(&["[1 2]"], "[1 2]")
            .example(&["[]"], "[]")
            .example(&["[3]"], "[3]")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_methods_set_options() {
        let s = Synthesizer::new()
            .timeout(Duration::from_secs(3))
            .deduction(false)
            .static_analysis(false)
            .static_prune(false)
            .max_cost(17)
            .max_overshoot(Duration::from_millis(40))
            .retry_ladder(true);
        assert_eq!(s.options().timeout, Some(Duration::from_secs(3)));
        assert!(!s.options().deduction);
        assert!(!s.options().static_analysis);
        assert!(!s.options().static_prune);
        assert_eq!(s.options().max_cost, 17);
        assert_eq!(s.options().max_overshoot, Duration::from_millis(40));
        assert!(s.options().retry_ladder);
        let s = s.no_timeout();
        assert_eq!(s.options().timeout, None);
    }

    #[test]
    fn synthesize_smoke() {
        let p = Problem::builder("sum")
            .param("l", "[int]")
            .returns("int")
            .example(&["[]"], "0")
            .example(&["[1]"], "1")
            .example(&["[1 2]"], "3")
            .example(&["[1 2 3]"], "6")
            .build()
            .unwrap();
        let s = Synthesizer::new().synthesize(&p).unwrap();
        assert!(s.program.satisfies_problem(&p, 10_000));
        assert!(s.stats.popped > 0);
    }

    #[test]
    fn report_without_ladder_records_one_attempt() {
        let s = Synthesizer::with_options(SearchOptions {
            max_popped: 3,
            ..SearchOptions::default()
        });
        let report = s.synthesize_report(&id_problem());
        assert_eq!(report.outcome.unwrap_err(), SynthError::LimitReached);
        assert_eq!(report.attempts.len(), 1);
        assert_eq!(report.attempts[0].rung, Rung::Full);
        assert_eq!(report.attempts[0].error, Some(SynthError::LimitReached));
    }

    #[test]
    fn retry_ladder_falls_back_to_the_baseline() {
        // A 3-pop cap trips before the (trivially solvable) problem can be
        // answered by the main engine on both rungs; the pop-cap-free
        // baseline rung then solves it.
        let s = Synthesizer::with_options(SearchOptions {
            max_popped: 3,
            retry_ladder: true,
            ..SearchOptions::default()
        });
        let report = s.synthesize_report(&id_problem());
        let rungs: Vec<Rung> = report.attempts.iter().map(|a| a.rung).collect();
        assert_eq!(rungs, vec![Rung::Full, Rung::Degraded, Rung::Baseline]);
        assert_eq!(report.attempts[0].error, Some(SynthError::LimitReached));
        assert_eq!(report.attempts[2].error, None);
        let solved = report.outcome.expect("baseline rung solves identity");
        assert_eq!(solved.program.body().to_string(), "l");
        assert!(report.frontier.is_empty());
    }

    #[test]
    fn non_resource_failures_are_never_retried() {
        // Inconsistent examples: retrying cannot help, the ladder must not
        // spend two more deadlines discovering that.
        let p = Problem::builder("bad")
            .param("x", "int")
            .returns("int")
            .example(&["1"], "1")
            .example(&["1"], "2")
            .build()
            .unwrap();
        let s = Synthesizer::new().retry_ladder(true);
        let report = s.synthesize_report(&p);
        assert_eq!(
            report.outcome.unwrap_err(),
            SynthError::InconsistentExamples
        );
        assert_eq!(report.attempts.len(), 1);
    }
}
