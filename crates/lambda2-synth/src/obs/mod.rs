//! Search telemetry: structured trace events, tracer sinks, and phase
//! timing.
//!
//! The paper's claims are *search-behavior* claims — deduction refutes
//! hypotheses early, best-first order finds the least-cost program, hard
//! instances blow up in enumeration. This module is the window into that
//! behavior: the search loop, deduction-driven planner, enumeration
//! stores, and verifier emit [`TraceEvent`]s into a [`Tracer`], and the
//! search accounts wall-time per phase in [`PhaseTimes`].
//!
//! Design constraints:
//!
//! * **Zero heavy deps** — events serialize through the hand-rolled
//!   [`json`] module.
//! * **Free when off** — the default [`NoopTracer`] reports
//!   `enabled() == false`, and every call site that would render an
//!   expression or build a `String` checks that flag first, so the hot
//!   path pays one inlinable virtual call per event site at most.
//!
//! Sinks provided here: [`NoopTracer`] (default), [`CollectTracer`]
//! (in-memory, for tests and programmatic consumers), and [`JsonlTracer`]
//! (one JSON object per line, the `l2 --trace <path>` format).

pub mod corpus;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod report;

use std::io::{self, Write};
use std::time::{Duration, Instant};

use crate::govern::BudgetSnapshot;
use json::Json;

/// Version of the trace-event / stats-line JSON schema.
///
/// Every trace event, `--stats-json` line, and `BENCH_*.json` record
/// carries this as a `"v"` field; the `profile` tools refuse input whose
/// version they do not understand instead of misparsing it. Bump on any
/// breaking change to the serialized shapes.
pub const SCHEMA_VERSION: u64 = 1;

/// Which queue-item flavor a [`TraceEvent::Pop`] refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PopKind {
    /// A hypothesis (complete → verify; open → spawn expansions/closings).
    Hypothesis,
    /// A lazy combinator-expansion stream item.
    Apply,
    /// A closing-stream item at some term-cost tier.
    Close,
}

impl PopKind {
    fn name(self) -> &'static str {
        match self {
            PopKind::Hypothesis => "hyp",
            PopKind::Apply => "apply",
            PopKind::Close => "close",
        }
    }
}

/// Why the planner rejected a combinator expansion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefuteReason {
    /// A deduction rule proved no step function can exist.
    Deduction,
    /// The combinator cannot produce the hole's type here.
    IllTyped,
    /// A fold initial-value candidate disagreed with an
    /// empty-collection example row.
    InitMismatch,
}

impl RefuteReason {
    fn name(self) -> &'static str {
        match self {
            RefuteReason::Deduction => "deduction",
            RefuteReason::IllTyped => "ill-typed",
            RefuteReason::InitMismatch => "init-mismatch",
        }
    }
}

/// Lifecycle stage in a [`TraceEvent::Store`] event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreAction {
    /// A new enumeration store was materialized for a hole context.
    Create,
    /// An existing store was reused (scope + examples matched).
    Hit,
    /// A store was evicted by the LRU byte-budget sweep.
    Evict,
}

impl StoreAction {
    fn name(self) -> &'static str {
        match self {
            StoreAction::Create => "create",
            StoreAction::Hit => "hit",
            StoreAction::Evict => "evict",
        }
    }
}

/// One structured event emitted by the search.
///
/// The JSONL rendering of every variant carries an `"ev"` discriminator;
/// see [`TraceEvent::to_json`] for the exact schema (documented field by
/// field in DESIGN.md §Observability).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A queue item was popped.
    Pop {
        /// Running pop counter (1-based, matches `Stats::popped`).
        n: u64,
        /// Item flavor.
        kind: PopKind,
        /// Priority (admissible cost bound) of the item.
        cost: u32,
        /// Open holes in the underlying hypothesis.
        holes: usize,
        /// The hypothesis sketch, holes rendered as `?N`.
        sketch: String,
    },
    /// The planner admitted a combinator expansion for a hole context.
    Plan {
        /// Combinator name (`map`, `foldl`, …).
        comb: &'static str,
        /// Rendered collection argument.
        coll: String,
        /// Rendered initial-value candidate (folds only).
        init: Option<String>,
        /// Cost the expansion adds to the hypothesis.
        delta_cost: u32,
        /// Example rows deduction inferred for the expansion's body hole.
        rows: usize,
    },
    /// The planner refuted a combinator expansion.
    Refute {
        /// Combinator name.
        comb: &'static str,
        /// Rendered collection argument.
        coll: String,
        /// Rendered initial-value candidate (folds only).
        init: Option<String>,
        /// Why it was rejected.
        reason: RefuteReason,
    },
    /// The abstract-interpretation pre-pass ([`crate::analyze`]) refuted a
    /// combinator expansion before deduction ran.
    StaticRefute {
        /// Combinator name.
        comb: &'static str,
        /// Rendered collection argument.
        coll: String,
        /// Rendered initial-value candidate (folds only).
        init: Option<String>,
        /// Stable name of the abstract domain that proved the refutation
        /// (`shape`, `length`, `provenance`, `order`, `init`,
        /// `cardinality`, `congruence`).
        domain: &'static str,
        /// `true` for pruning-tier domains: the refutation removed work
        /// deduction would have kept (serialized only when set, so
        /// attribution-tier events keep their historical shape).
        pruned: bool,
    },
    /// A closing stream advanced to a new term-cost tier.
    Tier {
        /// The tier (exact term cost) that was just enumerated.
        tier: u32,
        /// Queue priority of the stream item.
        cost: u32,
        /// Spec-satisfying terms the tier produced for this hole.
        fills: usize,
    },
    /// An enumeration store was created, reused, or evicted.
    Store {
        /// What happened.
        action: StoreAction,
        /// Terms held by the store at event time.
        terms: usize,
        /// Approximate heap bytes held by the store at event time.
        bytes: usize,
    },
    /// A complete candidate program was checked against the examples.
    Verify {
        /// Whether it satisfied every example.
        ok: bool,
        /// Candidate cost.
        cost: u32,
        /// Rendered candidate body.
        program: String,
    },
    /// A panic was caught (and isolated) at a governed engine site; the
    /// offending candidate was counted and skipped, never fatal to the run.
    Fault {
        /// The isolation site (`verify.candidate`, `deduce.plan`, …).
        site: &'static str,
        /// The rendered panic payload.
        detail: String,
    },
    /// A periodic live-progress heartbeat ("the synthesizer's `top`"),
    /// emitted from the search loop on the governor's adaptive poll
    /// cadence — only when [`SearchOptions::progress`] is on, since its
    /// count and content are wall-clock driven and would make otherwise
    /// deterministic traces volatile. `profile diff` skips these events
    /// for the same reason it strips `t_us`.
    ///
    /// [`SearchOptions::progress`]: crate::search::SearchOptions::progress
    Progress {
        /// Budget accounting at heartbeat time.
        budget: BudgetSnapshot,
        /// Items in the search queue after the current pop.
        queue: usize,
        /// Priority of the current pop — best-first order makes this the
        /// cost frontier the search has reached.
        best_cost: u32,
        /// Cumulative per-phase wall time so far; consumers diff
        /// consecutive heartbeats for phase-time deltas.
        phases: PhaseTimes,
    },
}

impl TraceEvent {
    /// Serializes the event to its JSONL object form. Every object leads
    /// with the [`SCHEMA_VERSION`] as `"v"` and its `"ev"` discriminator.
    pub fn to_json(&self) -> Json {
        let v = ("v", SCHEMA_VERSION.into());
        match self {
            TraceEvent::Pop {
                n,
                kind,
                cost,
                holes,
                sketch,
            } => Json::obj([
                v,
                ("ev", "pop".into()),
                ("n", (*n).into()),
                ("kind", kind.name().into()),
                ("cost", (*cost).into()),
                ("holes", (*holes).into()),
                ("sketch", sketch.as_str().into()),
            ]),
            TraceEvent::Plan {
                comb,
                coll,
                init,
                delta_cost,
                rows,
            } => {
                let mut pairs = vec![
                    v,
                    ("ev", "plan".into()),
                    ("comb", (*comb).into()),
                    ("coll", coll.as_str().into()),
                ];
                if let Some(init) = init {
                    pairs.push(("init", init.as_str().into()));
                }
                pairs.push(("delta_cost", (*delta_cost).into()));
                pairs.push(("rows", (*rows).into()));
                Json::obj(pairs)
            }
            TraceEvent::Refute {
                comb,
                coll,
                init,
                reason,
            } => {
                let mut pairs = vec![
                    v,
                    ("ev", "refute".into()),
                    ("comb", (*comb).into()),
                    ("coll", coll.as_str().into()),
                ];
                if let Some(init) = init {
                    pairs.push(("init", init.as_str().into()));
                }
                pairs.push(("reason", reason.name().into()));
                Json::obj(pairs)
            }
            TraceEvent::StaticRefute {
                comb,
                coll,
                init,
                domain,
                pruned,
            } => {
                let mut pairs = vec![
                    v,
                    ("ev", "static-refute".into()),
                    ("comb", (*comb).into()),
                    ("coll", coll.as_str().into()),
                ];
                if let Some(init) = init {
                    pairs.push(("init", init.as_str().into()));
                }
                pairs.push(("domain", (*domain).into()));
                if *pruned {
                    pairs.push(("pruned", true.into()));
                }
                Json::obj(pairs)
            }
            TraceEvent::Tier { tier, cost, fills } => Json::obj([
                v,
                ("ev", "tier".into()),
                ("tier", (*tier).into()),
                ("cost", (*cost).into()),
                ("fills", (*fills).into()),
            ]),
            TraceEvent::Store {
                action,
                terms,
                bytes,
            } => Json::obj([
                v,
                ("ev", "store".into()),
                ("action", action.name().into()),
                ("terms", (*terms).into()),
                ("bytes", (*bytes).into()),
            ]),
            TraceEvent::Verify { ok, cost, program } => Json::obj([
                v,
                ("ev", "verify".into()),
                ("ok", (*ok).into()),
                ("cost", (*cost).into()),
                ("program", program.as_str().into()),
            ]),
            TraceEvent::Fault { site, detail } => Json::obj([
                v,
                ("ev", "fault".into()),
                ("site", (*site).into()),
                ("detail", detail.as_str().into()),
            ]),
            TraceEvent::Progress {
                budget,
                queue,
                best_cost,
                phases,
            } => Json::obj([
                v,
                ("ev", "progress".into()),
                ("queue", (*queue).into()),
                ("best_cost", (*best_cost).into()),
                ("budget", budget.to_json()),
                ("phases", phases.to_json()),
            ]),
        }
    }
}

/// A sink for [`TraceEvent`]s.
///
/// Implementations must keep [`Tracer::enabled`] cheap: the search calls
/// it before constructing any event whose payload requires rendering.
pub trait Tracer {
    /// Whether this tracer wants events at all. When `false`, callers
    /// skip event construction entirely, so tracing costs nothing.
    fn enabled(&self) -> bool {
        false
    }

    /// Receives one event. The default implementation drops it.
    fn emit(&mut self, event: TraceEvent) {
        let _ = event;
    }
}

/// The default tracer: drops everything, reports disabled.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {}

/// Collects events in memory — for tests and programmatic consumers.
#[derive(Debug, Default)]
pub struct CollectTracer {
    /// The events, in emission order.
    pub events: Vec<TraceEvent>,
}

impl Tracer for CollectTracer {
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// Streams events as JSON Lines: one compact object per line.
///
/// This is the sink behind `l2 --trace <path>`. Writes go through a
/// [`io::BufWriter`] and are flushed on [`JsonlTracer::finish`] or drop —
/// one syscall per buffer instead of per event, so trace-heavy runs don't
/// skew the phase timings the tracer itself reports. IO errors are
/// recorded (and reported by `finish`) rather than panicking mid-search —
/// telemetry must never take down a run.
///
/// Each line additionally carries a `t_us` field: microseconds since the
/// tracer was created. `t_us` is the one *volatile* field in the schema —
/// the `profile diff` alignment keys strip it.
pub struct JsonlTracer<W: Write> {
    // `Option` so both `finish` (by value) and `Drop` can take the writer.
    out: Option<io::BufWriter<W>>,
    start: Instant,
    lines: u64,
    error: Option<io::Error>,
}

impl JsonlTracer<std::fs::File> {
    /// Opens (truncating) a trace file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `File::create` failure.
    pub fn create(path: &std::path::Path) -> io::Result<JsonlTracer<std::fs::File>> {
        Ok(JsonlTracer::new(std::fs::File::create(path)?))
    }
}

impl<W: Write> JsonlTracer<W> {
    /// Wraps any writer.
    pub fn new(out: W) -> JsonlTracer<W> {
        JsonlTracer {
            out: Some(io::BufWriter::new(out)),
            start: Instant::now(),
            lines: 0,
            error: None,
        }
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the line count, or the first IO error
    /// encountered while writing.
    ///
    /// # Errors
    ///
    /// Returns the deferred write/flush error, if any.
    pub fn finish(mut self) -> io::Result<u64> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        if let Some(mut out) = self.out.take() {
            out.flush()?;
        }
        Ok(self.lines)
    }

    /// Flushes and hands back the inner buffered writer (tests).
    #[cfg(test)]
    fn into_writer(mut self) -> W {
        let mut out = self.out.take().expect("writer present");
        out.flush().expect("flush");
        match out.into_inner() {
            Ok(w) => w,
            Err(_) => unreachable!("flushed buffer cannot fail into_inner"),
        }
    }
}

impl<W: Write> Drop for JsonlTracer<W> {
    fn drop(&mut self) {
        // Best-effort flush for early-return paths that never reach
        // `finish` (errors there are already latched or unreportable).
        if let Some(mut out) = self.out.take() {
            let _ = out.flush();
        }
    }
}

impl<W: Write> Tracer for JsonlTracer<W> {
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&mut self, event: TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let Some(out) = self.out.as_mut() else {
            return;
        };
        let mut line = event.to_json();
        if let Json::Obj(pairs) = &mut line {
            let t_us = self.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
            pairs.insert(1, ("t_us".to_owned(), t_us.into()));
        }
        if let Err(e) = writeln!(out, "{line}") {
            self.error = Some(e);
            return;
        }
        self.lines += 1;
    }
}

/// Wall-time spent in each search phase during one run.
///
/// The four phases partition the instrumented regions of the search loop
/// (queue bookkeeping in between is unaccounted), so their sum is a lower
/// bound on — never exceeds — the run's elapsed time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Deduction: planning combinator expansions (refute + propagate).
    pub deduce: Duration,
    /// Enumeration: building term-store levels and collecting closings.
    pub enumerate: Duration,
    /// Expansion: instantiating planned templates into child hypotheses.
    pub expand: Duration,
    /// Verification: running complete candidates on the examples.
    pub verify: Duration,
}

impl PhaseTimes {
    /// Sum of all phases.
    pub fn total(&self) -> Duration {
        self.deduce + self.enumerate + self.expand + self.verify
    }

    /// Adds another run's phase times (suite aggregation).
    pub fn merge(&mut self, other: &PhaseTimes) {
        self.deduce += other.deduce;
        self.enumerate += other.enumerate;
        self.expand += other.expand;
        self.verify += other.verify;
    }

    /// Serializes as an object of millisecond floats.
    pub fn to_json(&self) -> Json {
        let ms = |d: Duration| Json::Float(d.as_secs_f64() * 1e3);
        Json::obj([
            ("deduce_ms", ms(self.deduce)),
            ("enumerate_ms", ms(self.enumerate)),
            ("expand_ms", ms(self.expand)),
            ("verify_ms", ms(self.verify)),
        ])
    }
}

impl std::fmt::Display for PhaseTimes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        write!(
            f,
            "deduce={:.1}ms enumerate={:.1}ms expand={:.1}ms verify={:.1}ms",
            ms(self.deduce),
            ms(self.enumerate),
            ms(self.expand),
            ms(self.verify)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_tracer_is_disabled_and_silent() {
        let mut t = NoopTracer;
        assert!(!t.enabled());
        t.emit(TraceEvent::Tier {
            tier: 1,
            cost: 2,
            fills: 0,
        });
    }

    #[test]
    fn collect_tracer_keeps_order() {
        let mut t = CollectTracer::default();
        assert!(t.enabled());
        t.emit(TraceEvent::Store {
            action: StoreAction::Create,
            terms: 3,
            bytes: 100,
        });
        t.emit(TraceEvent::Verify {
            ok: true,
            cost: 5,
            program: "l".into(),
        });
        assert_eq!(t.events.len(), 2);
        assert!(matches!(t.events[0], TraceEvent::Store { .. }));
    }

    #[test]
    fn jsonl_tracer_writes_one_parseable_object_per_line() {
        let mut t = JsonlTracer::new(Vec::new());
        t.emit(TraceEvent::Pop {
            n: 1,
            kind: PopKind::Hypothesis,
            cost: 3,
            holes: 1,
            sketch: "(map (lambda (x) ?1) l)".into(),
        });
        t.emit(TraceEvent::Refute {
            comb: "map",
            coll: "l".into(),
            init: None,
            reason: RefuteReason::Deduction,
        });
        assert_eq!(t.lines(), 2);
        let buf = String::from_utf8(t.into_writer()).unwrap();
        for line in buf.lines() {
            let v = json::parse(line).expect("parseable");
            assert_eq!(v.get("v").and_then(Json::as_u64), Some(SCHEMA_VERSION));
            assert!(v.get("t_us").and_then(Json::as_u64).is_some());
            assert!(v.get("ev").is_some());
        }
    }

    #[test]
    fn jsonl_tracer_flushes_on_drop() {
        use std::cell::RefCell;
        use std::rc::Rc;

        /// A writer that records everything flushed *through* to it.
        struct Shared(Rc<RefCell<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let sink = Rc::new(RefCell::new(Vec::new()));
        {
            let mut t = JsonlTracer::new(Shared(Rc::clone(&sink)));
            t.emit(TraceEvent::Tier {
                tier: 1,
                cost: 2,
                fills: 0,
            });
            // One small event: still sitting in the BufWriter.
            assert!(sink.borrow().is_empty());
        }
        // Dropping the tracer flushed it.
        let buf = sink.borrow();
        let text = std::str::from_utf8(&buf).unwrap();
        assert!(text.contains(r#""ev":"tier""#), "flushed on drop: {text}");
    }

    #[test]
    fn event_json_schema_is_stable() {
        let ev = TraceEvent::Plan {
            comb: "foldl",
            coll: "l".into(),
            init: Some("0".into()),
            delta_cost: 7,
            rows: 3,
        };
        assert_eq!(
            ev.to_json().to_string(),
            r#"{"v":1,"ev":"plan","comb":"foldl","coll":"l","init":"0","delta_cost":7,"rows":3}"#
        );
        let ev = TraceEvent::Store {
            action: StoreAction::Evict,
            terms: 10,
            bytes: 4096,
        };
        assert_eq!(
            ev.to_json().to_string(),
            r#"{"v":1,"ev":"store","action":"evict","terms":10,"bytes":4096}"#
        );
        let ev = TraceEvent::Fault {
            site: "verify.candidate",
            detail: "boom".into(),
        };
        assert_eq!(
            ev.to_json().to_string(),
            r#"{"v":1,"ev":"fault","site":"verify.candidate","detail":"boom"}"#
        );
        let ev = TraceEvent::StaticRefute {
            comb: "map",
            coll: "l".into(),
            init: None,
            domain: "length",
            pruned: false,
        };
        assert_eq!(
            ev.to_json().to_string(),
            r#"{"v":1,"ev":"static-refute","comb":"map","coll":"l","domain":"length"}"#
        );
        let ev = TraceEvent::StaticRefute {
            comb: "foldl",
            coll: "l".into(),
            init: Some("0".into()),
            domain: "init",
            pruned: false,
        };
        assert_eq!(
            ev.to_json().to_string(),
            r#"{"v":1,"ev":"static-refute","comb":"foldl","coll":"l","init":"0","domain":"init"}"#
        );
        let ev = TraceEvent::StaticRefute {
            comb: "filter",
            coll: "l".into(),
            init: None,
            domain: "cardinality",
            pruned: true,
        };
        assert_eq!(
            ev.to_json().to_string(),
            r#"{"v":1,"ev":"static-refute","comb":"filter","coll":"l","domain":"cardinality","pruned":true}"#
        );
        let ev = TraceEvent::Progress {
            budget: BudgetSnapshot {
                pops: 100,
                fuel_spent: 5,
                peak_store_bytes: 1024,
                ticks: 400,
                elapsed: Duration::from_millis(3),
                exceeded: None,
            },
            queue: 7,
            best_cost: 9,
            phases: PhaseTimes::default(),
        };
        assert_eq!(
            ev.to_json().to_string(),
            concat!(
                r#"{"v":1,"ev":"progress","queue":7,"best_cost":9,"#,
                r#""budget":{"pops":100,"fuel_spent":5,"peak_store_bytes":1024,"ticks":400,"elapsed_ms":3.0,"exceeded":null},"#,
                r#""phases":{"deduce_ms":0.0,"enumerate_ms":0.0,"expand_ms":0.0,"verify_ms":0.0}}"#
            )
        );
    }

    #[test]
    fn phase_times_total_and_merge() {
        let mut a = PhaseTimes {
            deduce: Duration::from_millis(10),
            enumerate: Duration::from_millis(20),
            expand: Duration::from_millis(30),
            verify: Duration::from_millis(40),
        };
        assert_eq!(a.total(), Duration::from_millis(100));
        let b = a;
        a.merge(&b);
        assert_eq!(a.total(), Duration::from_millis(200));
        let j = a.to_json();
        assert_eq!(j.get("deduce_ms").unwrap().as_f64(), Some(20.0));
    }
}
