//! Cross-run observability: a persistent corpus of run records and the
//! regression analysis over it.
//!
//! Per-run telemetry (traces, histograms, `l2 profile`) answers "what did
//! *this* search do"; nothing so far answered "is the system getting
//! slower *across* runs". This module is the durable layer underneath
//! that question: an append-only JSONL store of [`RunRecord`]s — one
//! [`Measurement`] per line, keyed by problem name, a canonical
//! [`options_fingerprint`] of the effective [`SearchOptions`], and a
//! build revision — plus aggregation ([`aggregate`]) and a regression
//! watchdog ([`regress`]) that compares fresh runs against the stored
//! baseline.
//!
//! Design constraints carried over from the rest of `obs`:
//!
//! * **Zero deps** — records serialize through the hand-rolled
//!   [`json`] module; the fingerprint hash is an inlined FNV-1a.
//! * **Hermetic** — the build revision comes from the
//!   `LAMBDA2_BUILD_REV` environment variable ([`build_rev`]), never
//!   from invoking `git` at runtime.
//! * **Schema-versioned** — every record line leads with `"v"` and
//!   loading refuses versions it does not understand, exactly like the
//!   trace parser.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::enumerate::EnumLimits;
use crate::obs::json::{self, Json};
use crate::obs::metrics::{Histogram, EXP2_BOUNDS};
use crate::obs::SCHEMA_VERSION;
use crate::search::SearchOptions;
use crate::stats::Measurement;

/// File name of the record store inside a corpus directory.
pub const CORPUS_FILE: &str = "runs.jsonl";

/// Structured failure of a corpus operation. Every variant names the file
/// involved, so batch tooling can report which of many inputs was bad.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CorpusError {
    /// Filesystem failure (open, create, read, write).
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The rendered OS error.
        message: String,
    },
    /// A line was not valid JSON or not record-shaped.
    Parse {
        /// The file involved.
        path: PathBuf,
        /// 1-based line number.
        line: u64,
        /// What was wrong.
        message: String,
    },
    /// A line carried a schema version this build does not understand.
    Version {
        /// The file involved.
        path: PathBuf,
        /// 1-based line number.
        line: u64,
        /// The version found (`None` when the field is missing entirely).
        found: Option<i64>,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io { path, message } => {
                write!(f, "{}: {message}", path.display())
            }
            CorpusError::Parse {
                path,
                line,
                message,
            } => write!(f, "{}:{line}: {message}", path.display()),
            CorpusError::Version { path, line, found } => match found {
                Some(v) => write!(
                    f,
                    "{}:{line}: unsupported record schema version {v} (this build reads v{SCHEMA_VERSION})",
                    path.display()
                ),
                None => write!(
                    f,
                    "{}:{line}: record has no schema version field \"v\"",
                    path.display()
                ),
            },
        }
    }
}

impl std::error::Error for CorpusError {}

/// 64-bit FNV-1a over a byte string — the corpus' stable, dependency-free
/// hash. Not cryptographic; collisions only risk conflating two option
/// sets, which the rendered key material makes astronomically unlikely.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonical fingerprint of the *effective* search configuration.
///
/// The fingerprint is the FNV-1a hash (16 hex digits) of a normalized
/// `key=value` rendering with a fixed key order, so it is stable across
/// CLI flag reordering and across unrelated code motion. Observation-only
/// knobs ([`SearchOptions::metrics`], [`SearchOptions::progress`]) are
/// deliberately excluded: they are proven (by differential test) not to
/// change programs, costs, or counters, so toggling them must not fork a
/// problem's baseline. Everything else — including
/// [`SearchOptions::static_analysis`], which moves refutations between
/// counters — is included.
///
/// The exhaustive destructuring below means adding a `SearchOptions`
/// field without deciding whether it belongs in the fingerprint is a
/// compile error, never a silent baseline fork.
pub fn options_fingerprint(options: &SearchOptions) -> String {
    let SearchOptions {
        deduction,
        static_analysis,
        static_prune,
        max_term_cost,
        max_term_cost_blind,
        max_collection_cost,
        max_init_cost,
        max_free_init_cost,
        max_cost,
        timeout,
        max_overshoot,
        max_popped,
        eval_fuel,
        max_total_fuel,
        retry_ladder,
        enum_limits,
        max_store_bytes,
        constructor_hypotheses,
        trace_probes,
        expand_blind_holes,
        jobs,
        metrics: _,  // observation-only: never forks a baseline
        progress: _, // observation-only: never forks a baseline
    } = options;
    let EnumLimits {
        max_level_terms,
        max_terms,
        synthetic_probes,
    } = enum_limits;
    let timeout_ms = match timeout {
        Some(d) => d.as_millis().to_string(),
        None => "none".to_owned(),
    };
    let mut material = String::new();
    let mut pairs = vec![
        ("constructor_hypotheses", constructor_hypotheses.to_string()),
        ("deduction", deduction.to_string()),
        ("eval_fuel", eval_fuel.to_string()),
        ("expand_blind_holes", expand_blind_holes.to_string()),
    ];
    // `jobs` is proven byte-identical to sequential (the determinism
    // suite), so jobs=1 — every record written before the field existed —
    // must keep its fingerprint; a non-default value is still rendered so
    // parallel runs fork their own baselines (their wall-clock
    // distributions differ even though counters do not).
    if *jobs != 1 {
        pairs.push(("jobs", jobs.to_string()));
    }
    // Pruning is proven (by differential test) to keep programs and costs
    // byte-identical, and it ships default-on — so the default keeps the
    // fingerprints of every record written before the flag existed, and
    // only the `--no-static-prune` ablation forks its own baseline (its
    // counters genuinely differ: pruned work comes back).
    if !*static_prune {
        pairs.push(("static_prune", static_prune.to_string()));
    }
    pairs.extend([
        ("max_collection_cost", max_collection_cost.to_string()),
        ("max_cost", max_cost.to_string()),
        ("max_free_init_cost", max_free_init_cost.to_string()),
        ("max_init_cost", max_init_cost.to_string()),
        ("max_level_terms", max_level_terms.to_string()),
        ("max_overshoot_ms", max_overshoot.as_millis().to_string()),
        ("max_popped", max_popped.to_string()),
        ("max_store_bytes", max_store_bytes.to_string()),
        ("max_term_cost", max_term_cost.to_string()),
        ("max_term_cost_blind", max_term_cost_blind.to_string()),
        ("max_terms", max_terms.to_string()),
        ("max_total_fuel", max_total_fuel.to_string()),
        ("retry_ladder", retry_ladder.to_string()),
        ("static_analysis", static_analysis.to_string()),
        ("synthetic_probes", synthetic_probes.to_string()),
        ("timeout_ms", timeout_ms),
        ("trace_probes", trace_probes.to_string()),
    ]);
    for (key, value) in pairs {
        material.push_str(key);
        material.push('=');
        material.push_str(&value);
        material.push('\n');
    }
    format!("{:016x}", fnv1a(material.as_bytes()))
}

/// Fingerprint for records ingested from files that no longer carry their
/// `SearchOptions` (legacy `BENCH_*.json`, bare `--stats-json` lines):
/// the hash of whatever configuration-describing key material the file
/// *does* carry, under an `ingest:` prefix so such baselines can never be
/// confused with first-class [`options_fingerprint`]s.
pub fn ingest_fingerprint(material: &str) -> String {
    format!("ingest:{:016x}", fnv1a(material.as_bytes()))
}

/// The build revision recorded with every run: the `LAMBDA2_BUILD_REV`
/// environment variable when set and non-empty (CI sets it to the commit
/// SHA), `"unknown"` otherwise. Hermetic — never shells out to `git`.
pub fn build_rev() -> String {
    match std::env::var("LAMBDA2_BUILD_REV") {
        Ok(rev) if !rev.is_empty() => rev,
        _ => "unknown".to_owned(),
    }
}

/// One corpus line: a [`Measurement`] plus the identity that makes it
/// comparable across runs.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Problem name (duplicates `run.name` for grouping without
    /// re-descending into the measurement).
    pub problem: String,
    /// [`options_fingerprint`] (or [`ingest_fingerprint`]) of the
    /// configuration that produced the run.
    pub fingerprint: String,
    /// Build revision (see [`build_rev`]).
    pub build_rev: String,
    /// The full measurement object, in [`Measurement::to_json`] shape —
    /// counters, phase times, and (when metrics were on) histograms.
    pub run: Json,
}

impl RunRecord {
    /// Wraps a fresh [`Measurement`] with the current build revision.
    pub fn of_measurement(m: &Measurement, fingerprint: &str) -> RunRecord {
        RunRecord {
            problem: m.name.clone(),
            fingerprint: fingerprint.to_owned(),
            build_rev: build_rev(),
            run: m.to_json(),
        }
    }

    /// Wraps a [`Measurement`] taken by the serve daemon, keyed by the
    /// server-assigned request ID: the ID is stored as a `req_id` string
    /// inside the run object, where it joins the record to the matching
    /// access-log line and slow-trace file without perturbing anything
    /// [`counters`](RunRecord::counters) reads (which keeps only
    /// integer-valued fields). `l2 corpus regress` therefore gates served
    /// traffic exactly like local runs.
    pub fn of_served_request(m: &Measurement, fingerprint: &str, req_id: &str) -> RunRecord {
        let mut record = RunRecord::of_measurement(m, fingerprint);
        if let Json::Obj(pairs) = &mut record.run {
            pairs.push(("req_id".to_owned(), req_id.into()));
        }
        record
    }

    /// The serve request ID this record was keyed by, when it came from
    /// [`of_served_request`](RunRecord::of_served_request).
    pub fn req_id(&self) -> Option<&str> {
        self.run.get("req_id").and_then(Json::as_str)
    }

    /// Serializes the record to its JSONL line form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("v", SCHEMA_VERSION.into()),
            ("problem", self.problem.as_str().into()),
            ("fingerprint", self.fingerprint.as_str().into()),
            ("build_rev", self.build_rev.as_str().into()),
            ("run", self.run.clone()),
        ])
    }

    fn from_json(j: &Json, path: &Path, line: u64) -> Result<RunRecord, CorpusError> {
        let version = |found| CorpusError::Version {
            path: path.to_owned(),
            line,
            found,
        };
        match j.get("v") {
            None => return Err(version(None)),
            Some(v) if v.as_u64() != Some(SCHEMA_VERSION) => {
                return Err(version(v.as_i64()));
            }
            Some(_) => {}
        }
        let field = |key: &str| -> Result<String, CorpusError> {
            j.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| CorpusError::Parse {
                    path: path.to_owned(),
                    line,
                    message: format!("record missing string field {key:?}"),
                })
        };
        let run = j.get("run").cloned().ok_or_else(|| CorpusError::Parse {
            path: path.to_owned(),
            line,
            message: "record missing field \"run\"".to_owned(),
        })?;
        Ok(RunRecord {
            problem: field("problem")?,
            fingerprint: field("fingerprint")?,
            build_rev: field("build_rev")?,
            run,
        })
    }

    /// Whether the run solved its problem.
    pub fn solved(&self) -> bool {
        self.run.get("solved").and_then(Json::as_bool) == Some(true)
    }

    /// Cost of the synthesized program (0 when unsolved).
    pub fn cost(&self) -> i64 {
        self.run.get("cost").and_then(Json::as_i64).unwrap_or(0)
    }

    /// Wall-clock time of the run in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.run
            .get("elapsed_ms")
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    }

    /// The determinism-backed search counters, in record order: every
    /// integer-valued field of the measurement's `stats` object (the
    /// nested `phases`/`metrics` objects carry wall times and are
    /// skipped). Reading the keys from the record instead of a hardcoded
    /// list means newly added counters join the regression contract
    /// automatically.
    pub fn counters(&self) -> Vec<(String, i64)> {
        let Some(Json::Obj(pairs)) = self.run.get("stats") else {
            return Vec::new();
        };
        pairs
            .iter()
            .filter_map(|(k, v)| v.as_i64().map(|n| (k.clone(), n)))
            .collect()
    }
}

/// Handle on one corpus directory (created on open).
#[derive(Clone, Debug)]
pub struct Corpus {
    dir: PathBuf,
}

impl Corpus {
    /// Opens (creating if needed) the corpus directory.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Io`] when the directory cannot be created.
    pub fn open(dir: &Path) -> Result<Corpus, CorpusError> {
        fs::create_dir_all(dir).map_err(|e| CorpusError::Io {
            path: dir.to_owned(),
            message: e.to_string(),
        })?;
        Ok(Corpus {
            dir: dir.to_owned(),
        })
    }

    /// The record store file inside the corpus directory.
    pub fn store_path(&self) -> PathBuf {
        self.dir.join(CORPUS_FILE)
    }

    /// Appends records to the store (one JSONL line each). Append-only by
    /// construction: history is the whole point of the corpus.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Io`] on any write failure.
    pub fn append(&self, records: &[RunRecord]) -> Result<(), CorpusError> {
        if records.is_empty() {
            return Ok(());
        }
        let path = self.store_path();
        let io_err = |e: std::io::Error| CorpusError::Io {
            path: path.clone(),
            message: e.to_string(),
        };
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(io_err)?;
        // One `write_all` + flush per record, no buffered writer: each
        // record reaches the OS as a single appended line before the next
        // begins, so a crash mid-batch can corrupt at most the final,
        // in-flight line — which loaders skip with a warning. A long-lived
        // multi-request writer (the serve daemon) relies on this.
        for record in records {
            let mut line = record.to_json().to_string();
            line.push('\n');
            file.write_all(line.as_bytes()).map_err(io_err)?;
            file.flush().map_err(io_err)?;
        }
        Ok(())
    }

    /// Loads every record in the store, in append order. A corpus whose
    /// store file does not exist yet is empty, not an error.
    ///
    /// # Errors
    ///
    /// [`CorpusError`] on IO, parse, or schema-version failure.
    pub fn load(&self) -> Result<Vec<RunRecord>, CorpusError> {
        let path = self.store_path();
        if !path.exists() {
            return Ok(Vec::new());
        }
        load_records(&path)
    }
}

/// Parses a JSONL record file (see [`Corpus::load`]).
///
/// # Errors
///
/// [`CorpusError`] on IO, parse, or schema-version failure.
pub fn load_records(path: &Path) -> Result<Vec<RunRecord>, CorpusError> {
    let text = fs::read_to_string(path).map_err(|e| CorpusError::Io {
        path: path.to_owned(),
        message: e.to_string(),
    })?;
    let terminated = text.ends_with('\n');
    let lines: Vec<&str> = text.lines().collect();
    let mut records = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let line_no = i as u64 + 1;
        if line.trim().is_empty() {
            continue;
        }
        let parsed = json::parse(line)
            .map_err(|message| CorpusError::Parse {
                path: path.to_owned(),
                line: line_no,
                message,
            })
            .and_then(|j| RunRecord::from_json(&j, path, line_no));
        match parsed {
            Ok(record) => records.push(record),
            // A final line with no terminating newline is the signature of
            // a writer that crashed mid-append (see `Corpus::append`): at
            // most that one record is lost. Skip it with a warning rather
            // than failing the whole load. Mid-file garbage still errors —
            // that is corruption, not a truncated tail.
            Err(err) if !terminated && i + 1 == lines.len() => {
                eprintln!(
                    "warning: {}: skipping unterminated trailing record at line {line_no}: {err}",
                    path.display()
                );
            }
            Err(err) => return Err(err),
        }
    }
    Ok(records)
}

/// Converts measurement-shaped JSON (a `--stats-json` line or one entry
/// of a `BENCH_*.json` `results` array) into a record under the given
/// fingerprint.
///
/// # Errors
///
/// A rendered message when the object is not measurement-shaped.
pub fn ingest_measurement(doc: &Json, fingerprint: &str) -> Result<RunRecord, String> {
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or("measurement has no \"name\" field")?;
    if doc.get("stats").is_none() {
        return Err("measurement has no \"stats\" field".to_owned());
    }
    Ok(RunRecord {
        problem: name.to_owned(),
        fingerprint: fingerprint.to_owned(),
        build_rev: build_rev(),
        run: doc.clone(),
    })
}

/// Converts a whole `BENCH_*.json` document into records. The fingerprint
/// is derived from the bench name, the document's scalar meta fields, and
/// each result's engine `label` — the closest available stand-in for the
/// options the harness actually ran (see [`ingest_fingerprint`]).
///
/// # Errors
///
/// A rendered message when the document is not bench-shaped.
pub fn ingest_bench(doc: &Json) -> Result<Vec<RunRecord>, String> {
    let Json::Obj(pairs) = doc else {
        return Err("bench document is not a JSON object".to_owned());
    };
    match doc.get("v").and_then(Json::as_u64) {
        Some(SCHEMA_VERSION) => {}
        Some(v) => return Err(format!("unsupported bench schema version {v}")),
        None => return Err("bench document has no schema version field \"v\"".to_owned()),
    }
    let results = match doc.get("results") {
        Some(Json::Arr(items)) => items,
        _ => return Err("bench document has no \"results\" array".to_owned()),
    };
    let mut meta = String::new();
    for (k, v) in pairs {
        if k != "results" {
            meta.push_str(&format!("{k}={v}\n"));
        }
    }
    let mut records = Vec::with_capacity(results.len());
    for (i, item) in results.iter().enumerate() {
        let label = item.get("label").and_then(Json::as_str).unwrap_or("");
        let fingerprint = ingest_fingerprint(&format!("{meta}label={label}\n"));
        records.push(
            ingest_measurement(item, &fingerprint).map_err(|e| format!("results[{i}]: {e}"))?,
        );
    }
    Ok(records)
}

/// Per-(problem, fingerprint) summary across every stored run.
#[derive(Clone, Debug)]
pub struct Aggregate {
    /// Problem name.
    pub problem: String,
    /// Configuration fingerprint.
    pub fingerprint: String,
    /// Runs recorded.
    pub runs: u64,
    /// Runs that solved the problem.
    pub solved: u64,
    /// Lowest program cost over solved runs (`None` when never solved).
    pub cost_lo: Option<i64>,
    /// Highest program cost over solved runs.
    pub cost_hi: Option<i64>,
    /// Whether every run's determinism-backed counters agree with the
    /// most recent run's. `false` flags a fork: same problem and options
    /// but diverging search behavior across the stored history (usually a
    /// code change without a new `LAMBDA2_BUILD_REV`).
    pub counters_agree: bool,
    /// Wall-time distribution (microseconds) over the stored runs —
    /// quantiles come from the histogram, at its bucket resolution.
    pub elapsed_us: Histogram,
}

impl Aggregate {
    /// A wall-time quantile in milliseconds (histogram bucket
    /// resolution; 0 for an empty group, which cannot happen for
    /// aggregates built by [`aggregate`]).
    pub fn wall_ms(&self, q: f64) -> f64 {
        self.elapsed_us.quantile(q).unwrap_or(0) as f64 / 1e3
    }

    /// Serializes the aggregate for `l2 corpus list/stats --json`.
    pub fn to_json(&self) -> Json {
        let cost = |c: Option<i64>| c.map(Json::Int).unwrap_or(Json::Null);
        Json::obj([
            ("v", SCHEMA_VERSION.into()),
            ("problem", self.problem.as_str().into()),
            ("fingerprint", self.fingerprint.as_str().into()),
            ("runs", self.runs.into()),
            ("solved", self.solved.into()),
            ("cost_lo", cost(self.cost_lo)),
            ("cost_hi", cost(self.cost_hi)),
            ("counters_agree", self.counters_agree.into()),
            ("wall_p50_ms", Json::Float(self.wall_ms(0.5))),
            ("wall_p90_ms", Json::Float(self.wall_ms(0.9))),
            ("wall_max_ms", Json::Float(self.wall_ms(1.0))),
        ])
    }
}

/// Groups records by (problem, fingerprint) and summarizes each group,
/// sorted by problem then fingerprint.
pub fn aggregate(records: &[RunRecord]) -> Vec<Aggregate> {
    let mut groups: BTreeMap<(String, String), Vec<&RunRecord>> = BTreeMap::new();
    for r in records {
        groups
            .entry((r.problem.clone(), r.fingerprint.clone()))
            .or_default()
            .push(r);
    }
    groups
        .into_iter()
        .map(|((problem, fingerprint), group)| {
            let mut elapsed_us = Histogram::new(EXP2_BOUNDS);
            let mut solved = 0u64;
            let mut cost_lo = None;
            let mut cost_hi = None;
            for r in &group {
                elapsed_us.record((r.elapsed_ms() * 1e3).max(0.0) as u64);
                if r.solved() {
                    solved += 1;
                    let c = r.cost();
                    cost_lo = Some(cost_lo.map_or(c, |lo: i64| lo.min(c)));
                    cost_hi = Some(cost_hi.map_or(c, |hi: i64| hi.max(c)));
                }
            }
            let reference = group.last().expect("groups are non-empty").counters();
            let counters_agree = group.iter().all(|r| r.counters() == reference);
            Aggregate {
                problem,
                fingerprint,
                runs: group.len() as u64,
                solved,
                cost_lo,
                cost_hi,
                counters_agree,
                elapsed_us,
            }
        })
        .collect()
}

/// Thresholds for the wall-time leg of [`regress`]. Counters and costs
/// are determinism-backed and always compared exactly; wall time is noisy
/// and compared relatively.
#[derive(Clone, Copy, Debug)]
pub struct RegressThresholds {
    /// A fresh run regresses when its wall time exceeds the baseline
    /// median by more than this factor...
    pub wall_ratio: f64,
    /// ...*and* by more than this absolute floor (milliseconds), so
    /// micro-runs measured in hundreds of microseconds can't trip the
    /// ratio on scheduler noise.
    pub wall_floor_ms: f64,
    /// Whether to check wall time at all. Off for cross-machine gating
    /// (CI compares a laptop-built baseline on other hardware), where
    /// only counters and costs are meaningful.
    pub check_wall: bool,
}

impl Default for RegressThresholds {
    fn default() -> RegressThresholds {
        RegressThresholds {
            wall_ratio: 1.5,
            wall_floor_ms: 100.0,
            check_wall: true,
        }
    }
}

/// Severity of one [`Finding`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FindingKind {
    /// A genuine divergence — `l2 corpus regress` exits 1.
    Regression,
    /// Informational (no baseline for a fresh run, an improvement, …) —
    /// never affects the exit code.
    Note,
}

impl FindingKind {
    /// The stable name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            FindingKind::Regression => "regression",
            FindingKind::Note => "note",
        }
    }
}

/// One conclusion of a [`regress`] comparison.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Problem name.
    pub problem: String,
    /// Configuration fingerprint the comparison ran under.
    pub fingerprint: String,
    /// Severity.
    pub kind: FindingKind,
    /// Human-readable description of what diverged (or what was noted).
    pub detail: String,
}

impl Finding {
    /// Serializes the finding for `l2 corpus regress --json`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("v", SCHEMA_VERSION.into()),
            ("problem", self.problem.as_str().into()),
            ("fingerprint", self.fingerprint.as_str().into()),
            ("kind", self.kind.name().into()),
            ("detail", self.detail.as_str().into()),
        ])
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    match xs.len() {
        0 => 0.0,
        n if n % 2 == 1 => xs[n / 2],
        n => (xs[n / 2 - 1] + xs[n / 2]) / 2.0,
    }
}

/// Compares fresh runs against the corpus baseline.
///
/// For each (problem, fingerprint) group in `fresh`, the latest fresh
/// record is compared against the baseline group with the same key:
/// solved status, program cost, and every determinism-backed counter
/// must match the latest baseline record *exactly*; wall time is
/// compared against the baseline median under `thresholds`. Fresh
/// groups with no baseline produce a [`FindingKind::Note`], as does a
/// fresh run that solves a problem the baseline did not (an
/// improvement — but one that deserves a new baseline).
pub fn regress(
    baseline: &[RunRecord],
    fresh: &[RunRecord],
    thresholds: &RegressThresholds,
) -> Vec<Finding> {
    let mut base_groups: BTreeMap<(&str, &str), Vec<&RunRecord>> = BTreeMap::new();
    for r in baseline {
        base_groups
            .entry((r.problem.as_str(), r.fingerprint.as_str()))
            .or_default()
            .push(r);
    }
    let mut fresh_latest: BTreeMap<(&str, &str), &RunRecord> = BTreeMap::new();
    for r in fresh {
        fresh_latest.insert((r.problem.as_str(), r.fingerprint.as_str()), r);
    }

    let mut findings = Vec::new();
    for ((problem, fingerprint), new) in fresh_latest {
        let mut finding = |kind, detail: String| {
            findings.push(Finding {
                problem: problem.to_owned(),
                fingerprint: fingerprint.to_owned(),
                kind,
                detail,
            });
        };
        let Some(base_group) = base_groups.get(&(problem, fingerprint)) else {
            finding(
                FindingKind::Note,
                "no baseline for this problem+fingerprint; run `l2 corpus ingest` or re-baseline"
                    .to_owned(),
            );
            continue;
        };
        let base = *base_group.last().expect("groups are non-empty");

        match (base.solved(), new.solved()) {
            (true, false) => {
                finding(
                    FindingKind::Regression,
                    format!(
                        "baseline solved, fresh run failed ({})",
                        new.run
                            .get("error")
                            .and_then(Json::as_str)
                            .unwrap_or("no error recorded")
                    ),
                );
                continue;
            }
            (false, true) => {
                finding(
                    FindingKind::Note,
                    "fresh run solved a problem the baseline did not — re-baseline to lock it in"
                        .to_owned(),
                );
                continue;
            }
            _ => {}
        }

        if base.cost() != new.cost() {
            finding(
                FindingKind::Regression,
                format!(
                    "program cost diverged: baseline {} vs fresh {}",
                    base.cost(),
                    new.cost()
                ),
            );
        }

        let base_counters: BTreeMap<String, i64> = base.counters().into_iter().collect();
        let new_counters: BTreeMap<String, i64> = new.counters().into_iter().collect();
        let mut diverged: Vec<String> = Vec::new();
        for (key, bv) in &base_counters {
            match new_counters.get(key) {
                Some(nv) if nv == bv => {}
                Some(nv) => diverged.push(format!("{key} {bv}->{nv}")),
                None => diverged.push(format!("{key} {bv}->missing")),
            }
        }
        for key in new_counters.keys() {
            if !base_counters.contains_key(key) {
                finding(
                    FindingKind::Note,
                    format!("counter {key:?} is new (absent from baseline)"),
                );
            }
        }
        if !diverged.is_empty() {
            finding(
                FindingKind::Regression,
                format!("counters diverged: {}", diverged.join(", ")),
            );
        }

        if thresholds.check_wall {
            let base_ms = median(base_group.iter().map(|r| r.elapsed_ms()).collect());
            let new_ms = new.elapsed_ms();
            if new_ms > base_ms * thresholds.wall_ratio
                && new_ms - base_ms > thresholds.wall_floor_ms
            {
                finding(
                    FindingKind::Regression,
                    format!(
                        "wall time regressed: baseline median {base_ms:.1}ms vs fresh {new_ms:.1}ms \
                         (threshold {:.2}x + {:.0}ms floor)",
                        thresholds.wall_ratio, thresholds.wall_floor_ms
                    ),
                );
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::PhaseTimes;
    use crate::stats::Stats;
    use std::time::Duration;

    fn measurement(name: &str, solved: bool, cost: u32, ms: u64, popped: u64) -> Measurement {
        Measurement {
            name: name.to_owned(),
            elapsed: Duration::from_millis(ms),
            solved,
            cost,
            size: 3,
            program: if solved {
                "(lambda (l) l)".into()
            } else {
                String::new()
            },
            examples: 3,
            stats: Stats {
                popped,
                expansions: 2,
                phases: PhaseTimes::default(),
                ..Stats::default()
            },
            error: (!solved).then(|| "synthesis timed out".to_owned()),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lambda2-corpus-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fingerprint_is_stable_and_ignores_observation_knobs() {
        let a = SearchOptions::default();
        let mut b = SearchOptions::default();
        assert_eq!(options_fingerprint(&a), options_fingerprint(&b));
        // Observation-only toggles do not fork baselines...
        b.metrics = false;
        b.progress = true;
        assert_eq!(options_fingerprint(&a), options_fingerprint(&b));
        // ...while anything search-relevant does.
        b.max_cost += 1;
        assert_ne!(options_fingerprint(&a), options_fingerprint(&b));
        assert_eq!(options_fingerprint(&a).len(), 16);
    }

    #[test]
    fn append_load_round_trip() {
        let dir = temp_dir("roundtrip");
        let corpus = Corpus::open(&dir).unwrap();
        assert_eq!(corpus.load().unwrap(), Vec::new());
        let fp = options_fingerprint(&SearchOptions::default());
        let r1 = RunRecord::of_measurement(&measurement("evens", true, 7, 12, 40), &fp);
        let r2 = RunRecord::of_measurement(&measurement("sum", false, 0, 900, 999), &fp);
        corpus.append(std::slice::from_ref(&r1)).unwrap();
        corpus.append(std::slice::from_ref(&r2)).unwrap();
        let loaded = corpus.load().unwrap();
        assert_eq!(loaded, vec![r1, r2]);
        assert!(loaded[0].solved());
        assert_eq!(loaded[0].cost(), 7);
        assert!(!loaded[1].solved());
        assert!(loaded[0]
            .counters()
            .iter()
            .any(|(k, v)| k == "popped" && *v == 40));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn served_records_round_trip_their_request_id_inertly() {
        let dir = temp_dir("served");
        let corpus = Corpus::open(&dir).unwrap();
        let fp = options_fingerprint(&SearchOptions::default());
        let m = measurement("evens", true, 7, 12, 40);
        let local = RunRecord::of_measurement(&m, &fp);
        let served = RunRecord::of_served_request(&m, &fp, "c3-r1");
        assert_eq!(served.req_id(), Some("c3-r1"));
        assert_eq!(local.req_id(), None);
        // The key is inert for regression gating: same counters, same
        // grouping identity.
        assert_eq!(served.counters(), local.counters());
        assert_eq!(served.problem, local.problem);
        assert_eq!(served.fingerprint, local.fingerprint);
        corpus.append(std::slice::from_ref(&served)).unwrap();
        let loaded = corpus.load().unwrap();
        assert_eq!(loaded, vec![served]);
        assert_eq!(loaded[0].req_id(), Some("c3-r1"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_garbage_and_wrong_versions() {
        let dir = temp_dir("reject");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CORPUS_FILE);
        fs::write(&path, "not json\n").unwrap();
        assert!(matches!(
            load_records(&path),
            Err(CorpusError::Parse { line: 1, .. })
        ));
        fs::write(&path, "{\"v\":99,\"problem\":\"x\"}\n").unwrap();
        assert!(matches!(
            load_records(&path),
            Err(CorpusError::Version {
                line: 1,
                found: Some(99),
                ..
            })
        ));
        fs::write(&path, "{\"problem\":\"x\"}\n").unwrap();
        assert!(matches!(
            load_records(&path),
            Err(CorpusError::Version {
                line: 1,
                found: None,
                ..
            })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn aggregate_groups_and_summarizes() {
        let fp = options_fingerprint(&SearchOptions::default());
        let records = vec![
            RunRecord::of_measurement(&measurement("evens", true, 7, 10, 40), &fp),
            RunRecord::of_measurement(&measurement("evens", true, 7, 14, 40), &fp),
            RunRecord::of_measurement(&measurement("sum", false, 0, 500, 99), &fp),
        ];
        let aggs = aggregate(&records);
        assert_eq!(aggs.len(), 2);
        let evens = &aggs[0];
        assert_eq!(evens.problem, "evens");
        assert_eq!((evens.runs, evens.solved), (2, 2));
        assert_eq!((evens.cost_lo, evens.cost_hi), (Some(7), Some(7)));
        assert!(evens.counters_agree);
        assert!(evens.wall_ms(1.0) >= 10.0);
        let sum = &aggs[1];
        assert_eq!((sum.runs, sum.solved), (1, 0));
        assert_eq!(sum.cost_lo, None);
        // A counter fork across stored runs is flagged.
        let forked = vec![
            RunRecord::of_measurement(&measurement("evens", true, 7, 10, 40), &fp),
            RunRecord::of_measurement(&measurement("evens", true, 7, 10, 41), &fp),
        ];
        assert!(!aggregate(&forked)[0].counters_agree);
    }

    #[test]
    fn regress_clean_perturbed_and_missing() {
        let fp = options_fingerprint(&SearchOptions::default());
        let base = vec![RunRecord::of_measurement(
            &measurement("evens", true, 7, 10, 40),
            &fp,
        )];
        let same = vec![RunRecord::of_measurement(
            &measurement("evens", true, 7, 11, 40),
            &fp,
        )];
        let t = RegressThresholds::default();
        assert!(regress(&base, &same, &t).is_empty());

        // A perturbed counter is a regression.
        let perturbed = vec![RunRecord::of_measurement(
            &measurement("evens", true, 7, 11, 41),
            &fp,
        )];
        let fs = regress(&base, &perturbed, &t);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].kind, FindingKind::Regression);
        assert!(fs[0].detail.contains("popped 40->41"), "{}", fs[0].detail);

        // A diverged cost is a regression.
        let cheaper = vec![RunRecord::of_measurement(
            &measurement("evens", true, 6, 11, 40),
            &fp,
        )];
        assert!(regress(&base, &cheaper, &t)
            .iter()
            .any(|f| f.kind == FindingKind::Regression && f.detail.contains("cost")));

        // No baseline: a note, never a regression.
        let other = vec![RunRecord::of_measurement(
            &measurement("reverse", true, 9, 10, 12),
            &fp,
        )];
        let fs = regress(&base, &other, &t);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].kind, FindingKind::Note);

        // Wall-time: must exceed ratio AND floor. 10ms -> 50ms is 5x
        // (over the 1.5x ratio) but only +40ms.
        let slow = vec![RunRecord::of_measurement(
            &measurement("evens", true, 7, 50, 40),
            &fp,
        )];
        let strict = RegressThresholds {
            wall_floor_ms: 20.0,
            ..RegressThresholds::default()
        };
        assert!(regress(&base, &slow, &strict)
            .iter()
            .any(|f| f.detail.contains("wall time regressed")));
        // ...and the floor suppresses micro-noise even at huge ratios.
        assert!(regress(&base, &slow, &RegressThresholds::default()).is_empty());
        // Cross-machine mode ignores wall time entirely.
        let no_wall = RegressThresholds {
            check_wall: false,
            ..strict
        };
        assert!(regress(&base, &slow, &no_wall).is_empty());
    }

    #[test]
    fn ingest_bench_document() {
        let doc = json::parse(concat!(
            r#"{"v":1,"bench":"table1","timeout_s":60,"results":["#,
            r#"{"label":"lambda2","v":1,"name":"evens","solved":true,"elapsed_ms":3.0,"cost":7,"size":5,"program":"p","examples":3,"error":null,"stats":{"popped":40}},"#,
            r#"{"label":"no-deduce","v":1,"name":"evens","solved":true,"elapsed_ms":9.0,"cost":7,"size":5,"program":"p","examples":3,"error":null,"stats":{"popped":90}}"#,
            r#"]}"#
        ))
        .unwrap();
        let records = ingest_bench(&doc).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].problem, "evens");
        // Same problem, different engine labels: distinct fingerprints.
        assert_ne!(records[0].fingerprint, records[1].fingerprint);
        assert!(records[0].fingerprint.starts_with("ingest:"));
        // Wrong version refuses.
        let bad = json::parse(r#"{"v":2,"bench":"x","results":[]}"#).unwrap();
        assert!(ingest_bench(&bad).is_err());
    }
}
