//! Self-contained HTML rendering of a trace profile.
//!
//! [`render_html`] turns one loaded [`Trace`] into a single HTML document
//! with the [`summarize`](profile::summarize) tables and histograms
//! inlined — no external stylesheets, scripts, images, or fonts, so the
//! file can be archived as a CI artifact or mailed around and will render
//! identically anywhere. Charts are plain `<div>` bars sized inline;
//! styling is one embedded `<style>` block.
//!
//! [`render_access_html`] renders the serve access-log analysis
//! ([`AccessReport`](crate::serve::access::AccessReport), `l2 serve
//! report`) as a dashboard under the same self-containment contract.

use std::fmt::Write as _;

use super::metrics::Histogram;
use super::profile::{self, Summary, Trace, Weight};
use crate::serve::access::AccessReport;

/// Escapes text for HTML element content and attribute values.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

/// One horizontal bar scaled against `max`, with its label and value.
fn bar_row(out: &mut String, label: &str, value: u64, max: u64) {
    let pct = if max == 0 {
        0.0
    } else {
        value as f64 * 100.0 / max as f64
    };
    let _ = writeln!(
        out,
        r#"<tr><td class="lbl">{}</td><td class="barcell"><div class="bar" style="width:{:.1}%"></div></td><td class="num">{}</td></tr>"#,
        esc(label),
        pct,
        value
    );
}

/// Opens a titled section.
fn section(out: &mut String, title: &str) {
    let _ = writeln!(out, "<h2>{}</h2>", esc(title));
}

/// Explicit, nonfatal stand-in for a section with nothing to show: a
/// trace from a barely instrumented run (tight options, a path that never
/// emitted this event family) renders a note instead of a bare header
/// over an empty table.
fn empty_note(out: &mut String, what: &str) {
    let _ = writeln!(
        out,
        r#"<p class="meta">No {} recorded in this trace.</p>"#,
        esc(what)
    );
}

const STYLE: &str = r#"
body { font: 14px/1.5 -apple-system, "Segoe UI", Roboto, sans-serif; margin: 2rem auto; max-width: 60rem; padding: 0 1rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #3b4a6b; padding-bottom: .3rem; }
h2 { font-size: 1.1rem; margin-top: 2rem; color: #3b4a6b; }
table { border-collapse: collapse; width: 100%; margin: .5rem 0; }
th, td { text-align: left; padding: .2rem .6rem; border-bottom: 1px solid #e3e6ee; }
th { background: #f2f4f9; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
td.lbl { white-space: nowrap; font-family: ui-monospace, monospace; font-size: 13px; }
td.barcell { width: 55%; }
div.bar { background: #6b8cce; height: .8rem; border-radius: 2px; min-width: 1px; }
code, pre { font-family: ui-monospace, monospace; font-size: 13px; background: #f2f4f9; border-radius: 3px; padding: .1rem .3rem; }
pre { padding: .6rem; overflow-x: auto; }
p.meta { color: #667; }
"#;

/// Renders one trace as a single self-contained HTML document.
///
/// `source` names the trace in the page header (typically its file path).
pub fn render_html(trace: &Trace, source: &str) -> String {
    let s = profile::summarize(trace);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>lambda2 profile: {}</title><style>{}</style></head><body>",
        esc(source),
        STYLE
    );
    let _ = writeln!(out, "<h1>λ² synthesis profile</h1>");
    let _ = writeln!(
        out,
        r#"<p class="meta">trace: <code>{}</code> — {} events</p>"#,
        esc(source),
        s.events
    );
    if let Some((program, cost)) = &s.solution {
        let _ = writeln!(
            out,
            "<p>solution (cost {cost}): <code>{}</code></p>",
            esc(program)
        );
    }

    render_time(&mut out, &s);
    render_pops(&mut out, &s);
    render_combs(&mut out, &s);
    render_refutations(&mut out, &s);
    render_pop_costs(&mut out, &s);
    render_stores(&mut out, &s);
    render_stacks(&mut out, trace);

    let _ = writeln!(out, "</body></html>");
    out
}

fn render_time(out: &mut String, s: &Summary) {
    let Some(t) = &s.time else {
        section(out, "Time attribution");
        let _ = writeln!(
            out,
            "<p>This trace carries no <code>t_us</code> timestamps (merged parallel \
             traces don't), so wall-time attribution is unavailable.</p>"
        );
        return;
    };
    section(out, "Time attribution");
    let _ = writeln!(
        out,
        "<p>{:.1} ms from first to last event, split by the category of the event \
         ending each gap:</p><table>",
        t.total_us as f64 / 1e3
    );
    let rows = [
        ("deduce", t.deduce_us),
        ("enumerate", t.enumerate_us),
        ("verify", t.verify_us),
        ("search/expand", t.search_us),
    ];
    let max = rows.iter().map(|(_, v)| *v).max().unwrap_or(0);
    for (label, us) in rows {
        bar_row(out, label, us, max);
    }
    let _ = writeln!(out, "</table>");
}

fn render_pops(out: &mut String, s: &Summary) {
    section(out, "Queue pops by kind");
    if s.pops_by_kind.is_empty() {
        empty_note(out, "queue pops");
        return;
    }
    let _ = writeln!(out, "<table>");
    let max = s.pops_by_kind.values().copied().max().unwrap_or(0);
    for (kind, n) in &s.pops_by_kind {
        bar_row(out, kind, *n, max);
    }
    let _ = writeln!(out, "</table>");
}

fn render_combs(out: &mut String, s: &Summary) {
    section(out, "Per-combinator attribution");
    if s.combs.is_empty() {
        empty_note(out, "per-combinator planner or deduction events");
        return;
    }
    let _ = writeln!(
        out,
        r#"<table><tr><th>comb</th><th class="num">plans</th><th class="num">rows inferred</th><th class="num">refuted</th><th class="num">static</th><th class="num">ill-typed</th><th class="num">init-mismatch</th></tr>"#
    );
    for (name, row) in &s.combs {
        let _ = writeln!(
            out,
            r#"<tr><td class="lbl">{}</td><td class="num">{}</td><td class="num">{}</td><td class="num">{}</td><td class="num">{}</td><td class="num">{}</td><td class="num">{}</td></tr>"#,
            esc(name),
            row.plans,
            row.rows_inferred,
            row.refuted,
            row.static_refuted,
            row.ill_typed,
            row.init_mismatch
        );
    }
    let _ = writeln!(out, "</table>");
}

fn render_refutations(out: &mut String, s: &Summary) {
    section(out, "Refutations by rule");
    if s.refute_reasons.is_empty() && s.static_domains.is_empty() {
        empty_note(out, "refutations");
        return;
    }
    let _ = writeln!(
        out,
        r#"<table><tr><th>rule</th><th class="num">refutations</th><th class="num">yield (/ms deduction)</th></tr>"#
    );
    let mut row = |label: &str, n: u64| {
        let yield_txt = match s.yield_per_ms(n) {
            Some(y) => format!("{y:.0}"),
            None => "—".to_owned(),
        };
        let _ = writeln!(
            out,
            r#"<tr><td class="lbl">{}</td><td class="num">{}</td><td class="num">{}</td></tr>"#,
            esc(label),
            n,
            yield_txt
        );
    };
    for (reason, n) in &s.refute_reasons {
        row(reason, *n);
    }
    for (domain, n) in &s.static_domains {
        row(&format!("static:{domain}"), *n);
    }
    let _ = writeln!(out, "</table>");
}

fn render_pop_costs(out: &mut String, s: &Summary) {
    section(out, "Popped-cost histogram");
    if s.pop_costs.is_empty() {
        empty_note(out, "popped-cost metrics");
        return;
    }
    let _ = writeln!(out, "<table>");
    let max = s.pop_costs.values().copied().max().unwrap_or(0);
    for (cost, n) in &s.pop_costs {
        bar_row(out, &format!("cost {cost}"), *n, max);
    }
    let _ = writeln!(out, "</table>");
}

fn render_stores(out: &mut String, s: &Summary) {
    section(out, "Enumeration & verification");
    let _ = writeln!(
        out,
        r#"<table><tr><th>counter</th><th class="num">value</th></tr>"#
    );
    for (label, n) in [
        ("stores created", s.store_creates),
        ("store cache hits", s.store_hits),
        ("stores evicted", s.store_evicts),
        ("closing tiers enumerated", s.tiers),
        ("closing fills produced", s.tier_fills),
        ("verifications passed", s.verify_ok),
        ("verifications failed", s.verify_fail),
        ("isolated faults", s.faults),
    ] {
        let _ = writeln!(
            out,
            r#"<tr><td class="lbl">{}</td><td class="num">{}</td></tr>"#,
            esc(label),
            n
        );
    }
    let _ = writeln!(out, "</table>");
}

/// Renders an access-log analysis as a single self-contained HTML
/// dashboard: headline throughput/shed/latency numbers, status and op
/// breakdowns as bar charts, latency quantile tables, and per-client and
/// per-problem tables. Same contract as [`render_html`]: no external
/// assets of any kind.
///
/// `source` names the log in the page header (typically its file path).
pub fn render_access_html(report: &AccessReport, source: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>lambda2 serve report: {}</title><style>{}</style></head><body>",
        esc(source),
        STYLE
    );
    let _ = writeln!(out, "<h1>λ² serve access report</h1>");
    let _ = writeln!(
        out,
        r#"<p class="meta">access log: <code>{}</code> — {} request(s) over {:.1} s</p>"#,
        esc(source),
        report.requests,
        report.span_ms / 1e3
    );
    let _ = writeln!(
        out,
        "<p>throughput <b>{:.1} req/s</b> · sheds <b>{}</b> ({:.1}%) · crashes <b>{}</b> \
         · warm-cache hits <b>{}</b></p>",
        report.throughput_rps(),
        report.shed,
        report.shed_rate() * 100.0,
        report.crashed,
        report.warm_hits
    );

    section(&mut out, "Latency");
    if report.service_us.is_empty() && report.queue_wait_us.is_empty() {
        empty_note(&mut out, "timed requests");
    } else {
        let _ = writeln!(
            out,
            r#"<table><tr><th>distribution</th><th class="num">count</th><th class="num">p50 ms</th><th class="num">p90 ms</th><th class="num">p99 ms</th><th class="num">max ms</th></tr>"#
        );
        let mut latency_row = |label: &str, h: &Histogram| {
            let ms = |q: f64| h.quantile(q).unwrap_or(0) as f64 / 1e3;
            let _ = writeln!(
                out,
                r#"<tr><td class="lbl">{}</td><td class="num">{}</td><td class="num">{:.1}</td><td class="num">{:.1}</td><td class="num">{:.1}</td><td class="num">{:.1}</td></tr>"#,
                esc(label),
                h.count(),
                ms(0.5),
                ms(0.9),
                ms(0.99),
                h.max().unwrap_or(0) as f64 / 1e3
            );
        };
        latency_row("service", &report.service_us);
        latency_row("queue wait", &report.queue_wait_us);
        let _ = writeln!(out, "</table>");
    }

    let count_section = |out: &mut String, title: &str, what: &str, m: &[(&String, &u64)]| {
        section(out, title);
        if m.is_empty() {
            empty_note(out, what);
            return;
        }
        let max = m.iter().map(|(_, &n)| n).max().unwrap_or(0);
        let _ = writeln!(out, "<table>");
        for (label, &n) in m {
            bar_row(out, label, n, max);
        }
        let _ = writeln!(out, "</table>");
    };
    count_section(
        &mut out,
        "Requests by status",
        "requests",
        &report.statuses.iter().collect::<Vec<_>>(),
    );
    count_section(
        &mut out,
        "Requests by op",
        "requests",
        &report.ops.iter().collect::<Vec<_>>(),
    );

    section(&mut out, "Clients");
    if report.clients.is_empty() {
        empty_note(&mut out, "clients");
    } else {
        let _ = writeln!(
            out,
            r#"<table><tr><th>peer</th><th class="num">requests</th><th class="num">ok</th><th class="num">shed</th></tr>"#
        );
        for (peer, c) in &report.clients {
            let _ = writeln!(
                out,
                r#"<tr><td class="lbl">{}</td><td class="num">{}</td><td class="num">{}</td><td class="num">{}</td></tr>"#,
                esc(peer),
                c.requests,
                c.ok,
                c.shed
            );
        }
        let _ = writeln!(out, "</table>");
    }

    count_section(
        &mut out,
        "Requests by problem",
        "named problems",
        &report.problems.iter().collect::<Vec<_>>(),
    );

    let _ = writeln!(out, "</body></html>");
    out
}

fn render_stacks(out: &mut String, trace: &Trace) {
    section(out, "Hot derivation stacks");
    // Pops-weighted collapse never fails.
    let mut stacks = profile::collapse_tree(trace, Weight::Pops).unwrap_or_default();
    if stacks.is_empty() {
        empty_note(out, "derivation stacks");
        return;
    }
    stacks.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let max = stacks.first().map(|(_, w)| *w).unwrap_or(0);
    let _ = writeln!(out, "<table>");
    for (stack, w) in stacks.iter().take(20) {
        bar_row(out, stack, *w, max);
    }
    let _ = writeln!(out, "</table>");
    let _ = writeln!(
        out,
        "<p>Collapsed-stack lines for flamegraph tooling come from \
         <code>l2 profile tree</code>.</p>"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::profile::parse_trace;

    fn sample() -> Trace {
        parse_trace(
            &[
                r#"{"v":1,"t_us":0,"ev":"pop","kind":"hyp","cost":1,"holes":1,"sketch":"?1"}"#,
                r#"{"v":1,"t_us":50,"ev":"plan","comb":"filter","coll":"l","delta_cost":4,"rows":3}"#,
                r#"{"v":1,"t_us":70,"ev":"refute","comb":"map","coll":"l","reason":"deduction"}"#,
                r#"{"v":1,"t_us":90,"ev":"pop","kind":"hyp","cost":5,"holes":1,"sketch":"(filter (lambda (x) ?2) l)"}"#,
                r#"{"v":1,"t_us":200,"ev":"verify","ok":true,"cost":7,"program":"(filter (lambda (x) (> x 0)) l)"}"#,
            ]
            .join("\n"),
        )
        .unwrap()
    }

    #[test]
    fn html_is_self_contained_and_escaped() {
        let html = render_html(&sample(), "runs/<evens>.jsonl");
        // Structure.
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</body></html>\n"));
        assert!(html.contains("<style>"));
        // No external assets of any kind.
        for needle in [
            "http://", "https://", "src=", "<link", "<script", "@import", "url(",
        ] {
            assert!(!html.contains(needle), "external reference: {needle}");
        }
        // The source name is escaped, content is present.
        assert!(html.contains("runs/&lt;evens&gt;.jsonl"));
        assert!(html.contains("filter"));
        assert!(html.contains("Per-combinator attribution"));
        assert!(html.contains("root;filter"));
        // Program text with operators is escaped.
        assert!(html.contains(&esc("(filter (lambda (x) (> x 0)) l)")));
    }

    #[test]
    fn html_degrades_cleanly_on_uninstrumented_traces() {
        // A trace with no pops, plans, refutations, or stacks renders an
        // explicit note per section instead of bare headers over nothing.
        let trace = parse_trace(r#"{"v":1,"ev":"fault","message":"isolated"}"#).unwrap();
        let html = render_html(&trace, "sparse.jsonl");
        assert!(html.contains("No queue pops recorded"));
        assert!(html.contains("No per-combinator planner or deduction events recorded"));
        assert!(html.contains("No refutations recorded"));
        assert!(html.contains("No popped-cost metrics recorded"));
        assert!(html.contains("No derivation stacks recorded"));
    }

    #[test]
    fn access_html_is_self_contained_and_escaped() {
        use crate::serve::access::{AccessRecord, AccessReport};
        let records = vec![
            AccessRecord {
                t_ms: 1.0,
                req_id: "c1-r1".to_owned(),
                op: "synth".to_owned(),
                peer: "10.0.0.<7>".to_owned(),
                status: "ok".to_owned(),
                frame_bytes: 64,
                queue_wait_ms: Some(0.2),
                service_ms: Some(7.5),
                warm_hits: Some(1),
                shed: false,
                crashed: false,
                problem: Some("evens<odd>".to_owned()),
                fingerprint: Some("cafe".to_owned()),
            },
            AccessRecord {
                t_ms: 900.0,
                req_id: "c2-r1".to_owned(),
                op: "synth".to_owned(),
                peer: "10.0.0.<7>".to_owned(),
                status: "overloaded".to_owned(),
                frame_bytes: 64,
                queue_wait_ms: None,
                service_ms: None,
                warm_hits: None,
                shed: true,
                crashed: false,
                problem: Some("evens<odd>".to_owned()),
                fingerprint: None,
            },
        ];
        let report = AccessReport::analyze(&records);
        let html = render_access_html(&report, "logs/<serve>.jsonl");
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</body></html>\n"));
        for needle in [
            "http://", "https://", "src=", "<link", "<script", "@import", "url(",
        ] {
            assert!(!html.contains(needle), "external reference: {needle}");
        }
        // Names flow through escaped.
        assert!(html.contains("logs/&lt;serve&gt;.jsonl"));
        assert!(html.contains("10.0.0.&lt;7&gt;"));
        assert!(html.contains("evens&lt;odd&gt;"));
        assert!(html.contains("Requests by status"));
        assert!(html.contains("overloaded"));
        // An empty log renders notes, not bare headers.
        let empty = render_access_html(&AccessReport::analyze(&[]), "empty.jsonl");
        assert!(empty.contains("No timed requests recorded"));
        assert!(empty.contains("No clients recorded"));
    }

    #[test]
    fn html_renders_untimed_traces_without_time_section_bars() {
        let trace =
            parse_trace(r#"{"v":1,"ev":"pop","kind":"hyp","cost":1,"holes":1,"sketch":"?1"}"#)
                .unwrap();
        let html = render_html(&trace, "t.jsonl");
        assert!(html.contains("no <code>t_us</code> timestamps"));
    }
}
