//! A minimal JSON value type, serializer, and parser.
//!
//! The telemetry layer ([`crate::obs`]) must stay dependency-free, so this
//! module hand-rolls the small amount of JSON the repo needs: one value
//! enum, a compact single-line serializer (used by the trace sink, the CLI
//! `--stats-json` flag, and the bench harness), and a strict
//! recursive-descent parser (used by tests and by downstream tooling that
//! diffs `BENCH_*.json` files across runs).

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float (serialized with enough precision to round-trip).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<I>(pairs: I) -> Json
    where
        I: IntoIterator<Item = (&'static str, Json)>,
    {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        // Counters beyond i64::MAX cannot occur in practice; saturate
        // rather than panic to keep telemetry non-fatal.
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Int(n as i64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

fn escape_into(out: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_str("\"")
}

impl fmt::Display for Json {
    /// Compact single-line serialization (no trailing newline).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Float(x) => {
                if x.is_finite() {
                    // `{}` on f64 prints the shortest round-trippable form;
                    // force a decimal marker so parsers see a float.
                    let s = format!("{x}");
                    if s.contains('.') || s.contains('e') || s.contains('E') {
                        f.write_str(&s)
                    } else {
                        write!(f, "{s}.0")
                    }
                } else {
                    // JSON has no Inf/NaN; degrade to null, keeping the
                    // stream parseable.
                    f.write_str("null")
                }
            }
            Json::Str(s) => escape_into(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape_into(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses one JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a message with a byte offset on malformed input.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogates are not paired here; traces never
                            // emit them. Replace rather than fail.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one UTF-8 scalar. The input came in as a
                    // &str, so decoding the leading-byte-determined chunk
                    // cannot fail; validating just that chunk keeps the
                    // loop linear (and the crate free of `unsafe`).
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or("unterminated string")?;
                    let c = std::str::from_utf8(chunk)
                        .map_err(|_| "bad utf-8 in string")?
                        .chars()
                        .next()
                        .ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_compactly() {
        let v = Json::obj([
            ("name", Json::str("evens")),
            ("solved", Json::Bool(true)),
            ("cost", Json::Int(7)),
            ("ms", Json::Float(1.5)),
            ("tags", Json::Arr(vec![Json::Int(1), Json::Null])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"evens","solved":true,"cost":7,"ms":1.5,"tags":[1,null]}"#
        );
    }

    #[test]
    fn floats_always_carry_a_decimal_marker() {
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(Json::Float(0.25).to_string(), "0.25");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let v = Json::str("a\"b\\c\nd\te\u{1}");
        let shown = v.to_string();
        assert_eq!(shown, r#""a\"b\\c\nd\te\u0001""#);
        assert_eq!(parse(&shown).unwrap(), v);
    }

    #[test]
    fn parse_round_trips_serializer_output() {
        let v = Json::obj([
            ("s", Json::str("x (λ ◻) — unicode")),
            ("n", Json::Int(-42)),
            ("f", Json::Float(0.125)),
            ("a", Json::Arr(vec![Json::Bool(false), Json::str("")])),
            ("o", Json::obj([("k", Json::Null)])),
        ]);
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"abc", "{a:1}"] {
            assert!(parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = parse(r#"{"a":{"b":[1,2.5,"x"]}}"#).unwrap();
        let arr = v.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
    }
}
