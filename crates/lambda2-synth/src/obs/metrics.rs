//! A zero-dependency metrics registry: counters, gauges, and cheap
//! fixed-bucket histograms.
//!
//! The search's scalar [`Stats`](crate::stats::Stats) counters answer "how
//! much", but not "how distributed": is the queue ten items deep or ten
//! million, are verification episodes uniformly cheap or dominated by a
//! few stragglers, do the enumeration stores stay small? This module keeps
//! those distributions with a few adds per observation:
//!
//! * [`Histogram`] — a fixed set of inclusive upper bounds plus an
//!   overflow bucket; recording is a binary search over a static slice
//!   and three integer adds. No allocation after construction.
//! * [`SearchMetrics`] — the registry of every histogram the engine
//!   records, embedded in `Stats` so snapshots ride along with the
//!   existing counters into `--stats-json` lines and `BENCH_*.json`
//!   reports.
//!
//! Bucket layouts are chosen per instrument (see the constants below):
//! powers of two for open-ended magnitudes (queue depth, microseconds,
//! bytes), unit-step linear for the small cost domain. DESIGN.md §14
//! documents the reasoning.

use super::json::Json;

/// Inclusive power-of-two upper bounds `1, 2, 4, …, 2^40` — for
/// open-ended magnitudes (queue depth, store terms/bytes, microsecond
/// latencies). 2^40 µs ≈ 13 days and 2^40 bytes = 1 TiB, so the overflow
/// bucket is unreachable in practice while the low buckets keep 2×
/// resolution where observations actually land.
pub const EXP2_BOUNDS: &[u64] = &{
    let mut bounds = [0u64; 41];
    let mut i = 0;
    while i < 41 {
        bounds[i] = 1u64 << i;
        i += 1;
    }
    bounds
};

/// Inclusive unit-step upper bounds `1, 2, …, 64` — for the hypothesis
/// cost domain, where the default global ceiling is 28 and every unit
/// matters (cost ties decide best-first order).
pub const COST_BOUNDS: &[u64] = &{
    let mut bounds = [0u64; 64];
    let mut i = 0;
    while i < 64 {
        bounds[i] = i as u64 + 1;
        i += 1;
    }
    bounds
};

/// Inclusive 5-step percentage bounds `5, 10, …, 100` — for ratio
/// instruments recorded as whole percentages (abstract-cache hit rate).
pub const PCT_BOUNDS: &[u64] = &{
    let mut bounds = [0u64; 20];
    let mut i = 0;
    while i < 20 {
        bounds[i] = (i as u64 + 1) * 5;
        i += 1;
    }
    bounds
};

/// A fixed-bucket histogram over `u64` observations.
///
/// Buckets are defined by a static slice of *inclusive* upper bounds in
/// strictly increasing order; observations above the last bound land in a
/// dedicated overflow bucket. Alongside the buckets the histogram keeps
/// exact `count`, `sum`, `min`, and `max`, so means are exact and only
/// quantiles are bucket-resolution approximations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bounds: &'static [u64],
    counts: Vec<u64>,
    /// Observations above the last bound.
    over: u64,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram over `bounds` (inclusive upper bounds, strictly
    /// increasing, non-empty).
    pub fn new(bounds: &'static [u64]) -> Histogram {
        debug_assert!(!bounds.is_empty());
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds,
            counts: vec![0; bounds.len()],
            over: 0,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        match self.bounds.binary_search(&value) {
            Ok(i) => self.counts[i] += 1,
            Err(i) if i < self.counts.len() => self.counts[i] += 1,
            Err(_) => self.over += 1,
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Records a `usize` observation (convenience for lengths).
    #[inline]
    pub fn record_usize(&mut self, value: usize) {
        self.record(value as u64);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bucket-resolution quantile: the inclusive upper bound of the first
    /// bucket at which the cumulative count reaches `q * count` (clamped
    /// to `[0, 1]`), using the exact `max` for the overflow bucket.
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report a quantile above the observed maximum —
                // wide buckets otherwise overstate small distributions.
                return Some(self.bounds[i].min(self.max));
            }
        }
        Some(self.max)
    }

    /// Merges another histogram recorded over the *same* bucket layout.
    pub fn merge(&mut self, other: &Histogram) {
        debug_assert_eq!(self.bounds, other.bounds, "bucket layouts differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.over += other.over;
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs,
    /// excluding the overflow bucket (see [`Histogram::over_count`]).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bounds
            .iter()
            .zip(&self.counts)
            .filter(|(_, &c)| c > 0)
            .map(|(&b, &c)| (b, c))
    }

    /// Observations above the last configured bound.
    pub fn over_count(&self) -> u64 {
        self.over
    }

    /// Serializes as a compact JSON object. Only non-empty buckets are
    /// listed (as `[upper_bound, count]` pairs), so empty histograms cost
    /// a few bytes and dense ones stay proportional to occupancy.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("count", self.count.into()), ("sum", self.sum.into())];
        if self.count > 0 {
            pairs.push(("min", self.min.into()));
            pairs.push(("max", self.max.into()));
        }
        pairs.push((
            "buckets",
            Json::Arr(
                self.nonzero_buckets()
                    .map(|(b, c)| Json::Arr(vec![b.into(), c.into()]))
                    .collect(),
            ),
        ));
        if self.over > 0 {
            pairs.push(("over", self.over.into()));
        }
        Json::obj(pairs)
    }

    /// Serializes a one-line summary — `count`, and when non-empty `p50`,
    /// `p99`, `mean`, `max` — for surfaces that want the headline numbers
    /// without the bucket table (the serve `stats` op, drain summaries).
    pub fn summary_json(&self) -> Json {
        let mut pairs = vec![("count", self.count.into())];
        if self.count > 0 {
            pairs.push(("p50", self.quantile(0.5).unwrap_or(0).into()));
            pairs.push(("p99", self.quantile(0.99).unwrap_or(0).into()));
            pairs.push(("mean", Json::Float(self.mean().unwrap_or(0.0))));
            pairs.push(("max", self.max.into()));
        }
        Json::obj(pairs)
    }
}

/// Every histogram the synthesis engine records, snapshotted into
/// [`Stats`](crate::stats::Stats) at the end of a run.
///
/// Recording is gated by `SearchOptions::metrics` (on by default) and by
/// construction never influences the search: the instruments observe
/// queue state, costs, and latencies but feed nothing back. The
/// differential test in `tests/profile.rs` holds the engine to that.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchMetrics {
    /// Queue length sampled at every pop (before the popped item's
    /// children are pushed).
    pub queue_depth: Histogram,
    /// Priority (admissible cost bound) of every popped queue item.
    pub pop_cost: Histogram,
    /// Per-episode deduction-planning latency, microseconds.
    pub deduce_us: Histogram,
    /// Per-episode enumeration latency, microseconds.
    pub enumerate_us: Histogram,
    /// Per-episode expansion-instantiation latency, microseconds.
    pub expand_us: Histogram,
    /// Per-episode verification latency, microseconds.
    pub verify_us: Histogram,
    /// Enumeration-store occupancy (terms) sampled at every store touch.
    pub store_terms: Histogram,
    /// Enumeration-store footprint (approximate bytes) at every touch.
    pub store_bytes: Histogram,
    /// Terms materialized per completed enumeration level (recorded by
    /// the stores themselves, folded in at eviction and at search end).
    pub level_terms: Histogram,
    /// Wall-clock gap between consecutive budget clock polls,
    /// microseconds — how tightly governance actually bounded overshoot
    /// (recorded by the [`Budget`](crate::govern::Budget)).
    pub poll_gap_us: Histogram,
    /// Time a task spent queued before a worker picked it up,
    /// microseconds — recorded by [`synthesize_batch`] and the serve
    /// admission queue, not by the search itself. Separates scheduling
    /// delay from search time in batch/daemon p99 attribution.
    ///
    /// [`synthesize_batch`]: crate::par::synthesize_batch
    pub queue_wait_us: Histogram,
    /// Abstract-value cache hit rate per planning sweep, as a whole
    /// percentage (hits / lookups × 100), recorded once per sweep that
    /// performed at least one lookup.
    pub abs_cache_hit_pct: Histogram,
    /// 1-based [`DOMAIN_ORDER`] index of the domain behind every static
    /// refutation — bucket `i` counts refutations proved by the `i`-th
    /// coarse-to-fine domain, giving per-domain refutation yield.
    ///
    /// [`DOMAIN_ORDER`]: crate::analyze::DOMAIN_ORDER
    pub static_refute_domain: Histogram,
}

impl SearchMetrics {
    /// Fresh, empty instruments.
    pub fn new() -> SearchMetrics {
        SearchMetrics {
            queue_depth: Histogram::new(EXP2_BOUNDS),
            pop_cost: Histogram::new(COST_BOUNDS),
            deduce_us: Histogram::new(EXP2_BOUNDS),
            enumerate_us: Histogram::new(EXP2_BOUNDS),
            expand_us: Histogram::new(EXP2_BOUNDS),
            verify_us: Histogram::new(EXP2_BOUNDS),
            store_terms: Histogram::new(EXP2_BOUNDS),
            store_bytes: Histogram::new(EXP2_BOUNDS),
            level_terms: Histogram::new(EXP2_BOUNDS),
            poll_gap_us: Histogram::new(EXP2_BOUNDS),
            queue_wait_us: Histogram::new(EXP2_BOUNDS),
            abs_cache_hit_pct: Histogram::new(PCT_BOUNDS),
            static_refute_domain: Histogram::new(COST_BOUNDS),
        }
    }

    /// Instrument names and histograms, in stable serialization order.
    pub fn instruments(&self) -> [(&'static str, &Histogram); 13] {
        [
            ("queue_depth", &self.queue_depth),
            ("pop_cost", &self.pop_cost),
            ("deduce_us", &self.deduce_us),
            ("enumerate_us", &self.enumerate_us),
            ("expand_us", &self.expand_us),
            ("verify_us", &self.verify_us),
            ("store_terms", &self.store_terms),
            ("store_bytes", &self.store_bytes),
            ("level_terms", &self.level_terms),
            ("poll_gap_us", &self.poll_gap_us),
            ("queue_wait_us", &self.queue_wait_us),
            ("abs_cache_hit_pct", &self.abs_cache_hit_pct),
            ("static_refute_domain", &self.static_refute_domain),
        ]
    }

    /// `true` when no instrument has recorded anything (metrics were off
    /// or the run did no work).
    pub fn is_empty(&self) -> bool {
        self.instruments().iter().all(|(_, h)| h.is_empty())
    }

    /// Merges another run's instruments (suite/ladder aggregation).
    pub fn merge(&mut self, other: &SearchMetrics) {
        self.queue_depth.merge(&other.queue_depth);
        self.pop_cost.merge(&other.pop_cost);
        self.deduce_us.merge(&other.deduce_us);
        self.enumerate_us.merge(&other.enumerate_us);
        self.expand_us.merge(&other.expand_us);
        self.verify_us.merge(&other.verify_us);
        self.store_terms.merge(&other.store_terms);
        self.store_bytes.merge(&other.store_bytes);
        self.level_terms.merge(&other.level_terms);
        self.poll_gap_us.merge(&other.poll_gap_us);
        self.queue_wait_us.merge(&other.queue_wait_us);
        self.abs_cache_hit_pct.merge(&other.abs_cache_hit_pct);
        self.static_refute_domain.merge(&other.static_refute_domain);
    }

    /// Serializes every instrument as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(self.instruments().map(|(name, h)| (name, h.to_json())))
    }
}

impl Default for SearchMetrics {
    fn default() -> SearchMetrics {
        SearchMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::json;

    #[test]
    fn bucket_bounds_are_strictly_increasing() {
        for bounds in [EXP2_BOUNDS, COST_BOUNDS, PCT_BOUNDS] {
            assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        }
        assert_eq!(PCT_BOUNDS[0], 5);
        assert_eq!(*PCT_BOUNDS.last().unwrap(), 100);
        assert_eq!(EXP2_BOUNDS[0], 1);
        assert_eq!(*EXP2_BOUNDS.last().unwrap(), 1 << 40);
        assert_eq!(COST_BOUNDS[0], 1);
        assert_eq!(*COST_BOUNDS.last().unwrap(), 64);
    }

    #[test]
    fn record_places_values_in_inclusive_buckets() {
        let mut h = Histogram::new(EXP2_BOUNDS);
        h.record(1); // bucket le=1
        h.record(2); // le=2 (inclusive)
        h.record(3); // le=4
        h.record(4); // le=4
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(1, 1), (2, 1), (4, 2)]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 10);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(4));
        assert_eq!(h.mean(), Some(2.5));
    }

    #[test]
    fn zero_and_overflow_observations_are_kept() {
        let mut h = Histogram::new(COST_BOUNDS);
        h.record(0); // below the first bound -> first bucket
        h.record(1_000_000); // above the last bound -> overflow
        assert_eq!(h.count(), 2);
        assert_eq!(h.over_count(), 1);
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(1, 1)]);
        let j = h.to_json();
        assert_eq!(j.get("over").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn quantiles_are_bucket_resolution_and_capped_at_max() {
        let mut h = Histogram::new(EXP2_BOUNDS);
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 100] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(1));
        // p100 lands in the le=128 bucket but is capped at the true max.
        assert_eq!(h.quantile(1.0), Some(100));
        // A single observation's every quantile is (at most) that value.
        let mut one = Histogram::new(EXP2_BOUNDS);
        one.record(3);
        assert_eq!(one.quantile(0.5), Some(3));
        assert_eq!(Histogram::new(EXP2_BOUNDS).quantile(0.5), None);
    }

    #[test]
    fn merge_is_commutative_on_counts() {
        let mut a = Histogram::new(EXP2_BOUNDS);
        let mut b = Histogram::new(EXP2_BOUNDS);
        for v in [1u64, 5, 9] {
            a.record(v);
        }
        for v in [2u64, 1 << 41] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 5);
        assert_eq!(ab.over_count(), 1);
        assert_eq!(ab.min(), Some(1));
        assert_eq!(ab.max(), Some(1 << 41));
    }

    #[test]
    fn summary_json_reports_quantiles_in_order() {
        let mut h = Histogram::new(EXP2_BOUNDS);
        for v in [10u64, 20, 30, 40, 5000] {
            h.record(v);
        }
        let j = h.summary_json();
        assert_eq!(j.get("count").unwrap().as_u64(), Some(5));
        let p50 = j.get("p50").unwrap().as_u64().unwrap();
        let p99 = j.get("p99").unwrap().as_u64().unwrap();
        assert!(p50 <= p99, "p50 {p50} must not exceed p99 {p99}");
        assert_eq!(j.get("max").unwrap().as_u64(), Some(5000));
        // Empty histograms summarize to a bare count.
        let empty = Histogram::new(EXP2_BOUNDS).summary_json();
        assert_eq!(empty.get("count").unwrap().as_u64(), Some(0));
        assert_eq!(empty.get("p50"), None);
    }

    #[test]
    fn empty_histograms_serialize_compactly_and_parse() {
        let h = Histogram::new(EXP2_BOUNDS);
        let j = h.to_json();
        assert_eq!(j.get("count").unwrap().as_i64(), Some(0));
        assert_eq!(j.get("min"), None);
        assert!(j.get("buckets").unwrap().as_arr().unwrap().is_empty());
        assert_eq!(json::parse(&j.to_string()).unwrap(), j);
    }

    #[test]
    fn search_metrics_roundtrip_and_emptiness() {
        let mut m = SearchMetrics::new();
        assert!(m.is_empty());
        m.queue_depth.record(17);
        m.pop_cost.record(4);
        assert!(!m.is_empty());
        let mut sum = SearchMetrics::new();
        sum.merge(&m);
        sum.merge(&m);
        assert_eq!(sum.queue_depth.count(), 2);
        let j = sum.to_json();
        for (name, _) in m.instruments() {
            assert!(j.get(name).is_some(), "missing {name}");
        }
        assert_eq!(json::parse(&j.to_string()).unwrap(), j);
    }
}
