//! Trace analysis: load `--trace` JSONL files and turn them into
//! attribution tables, flamegraph stacks, and run-to-run diffs.
//!
//! This is the consumer side of the [`TraceEvent`](super::TraceEvent)
//! substrate — the `l2 profile` subcommand family is a thin CLI over
//! these functions:
//!
//! * [`load_trace`] / [`parse_trace`] — strict, versioned loading. Every
//!   line must carry `"v": 1` ([`super::SCHEMA_VERSION`]); traces from
//!   older or newer engines are rejected with the offending line number
//!   instead of being silently misparsed.
//! * [`summarize`] — per-combinator and per-deduction-rule attribution
//!   (pops, plans, examples inferred, refutations, refutation yield),
//!   plus store/verify/tier totals and — when the trace carries `t_us`
//!   timestamps — wall-time attribution per phase category.
//! * [`collapse_tree`] — fold the hypothesis derivation tree into
//!   flamegraph-style collapsed-stack lines (`root;map;foldl 42`),
//!   consumable by standard flamegraph tooling.
//! * [`diff_traces`] — align two traces by deterministic event keys
//!   ([`event_key`]: the event JSON with volatile fields stripped) and
//!   report the first divergence, distinguishing a *truncated* trace
//!   (strict prefix — a run that stopped early) from a *divergent* one.
//!
//! Everything here is pure string/JSON processing over the hand-rolled
//! [`json`] module — no engine state, no extra dependencies.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use super::json::{self, Json};
use super::SCHEMA_VERSION;

/// Why a trace could not be loaded or analyzed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProfileError {
    /// The file could not be read.
    Io(String),
    /// A line was not a valid JSON object.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// A line carried a missing or unsupported `"v"` schema version.
    Version {
        /// 1-based line number.
        line: usize,
        /// The version found (`None` when the field is absent).
        found: Option<i64>,
    },
    /// The requested analysis needs `t_us` timestamps the trace lacks
    /// (e.g. merged parallel traces carry none).
    NoTimestamps,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Io(e) => write!(f, "reading trace: {e}"),
            ProfileError::Parse { line, message } => {
                write!(f, "trace line {line}: not a JSON object: {message}")
            }
            ProfileError::Version { line, found } => match found {
                Some(v) => write!(
                    f,
                    "trace line {line}: schema version {v} (this tool reads v{SCHEMA_VERSION}); \
                     re-record the trace with a matching engine"
                ),
                None => write!(
                    f,
                    "trace line {line}: no \"v\" schema-version field — this trace predates the \
                     versioned format (v{SCHEMA_VERSION}); re-record it with a current engine"
                ),
            },
            ProfileError::NoTimestamps => {
                write!(
                    f,
                    "trace carries no t_us timestamps (merged parallel traces don't); \
                     time weighting is unavailable"
                )
            }
        }
    }
}

impl std::error::Error for ProfileError {}

/// A loaded trace: one validated JSON object per line, in file order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// The events. Every element is a `Json::Obj` with `"v"` equal to
    /// [`SCHEMA_VERSION`] and an `"ev"` discriminator.
    pub events: Vec<Json>,
}

impl Trace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// `t_us` of an event, if present.
    fn t_us(&self, i: usize) -> Option<u64> {
        self.events[i].get("t_us").and_then(Json::as_u64)
    }

    /// `true` when every event carries a `t_us` timestamp (sequential
    /// single-problem traces do; merged parallel traces do not).
    pub fn has_timestamps(&self) -> bool {
        !self.is_empty() && (0..self.events.len()).all(|i| self.t_us(i).is_some())
    }
}

/// Parses trace text (one JSON object per line; blank lines ignored),
/// validating the schema version of every line.
///
/// # Errors
///
/// [`ProfileError::Parse`] for malformed lines, [`ProfileError::Version`]
/// for missing/unsupported schema versions.
pub fn parse_trace(src: &str) -> Result<Trace, ProfileError> {
    let mut events = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let n = i + 1;
        let ev = json::parse(line).map_err(|e| ProfileError::Parse {
            line: n,
            message: e.to_string(),
        })?;
        match ev.get("v").and_then(Json::as_i64) {
            Some(v) if v == SCHEMA_VERSION as i64 => {}
            found => return Err(ProfileError::Version { line: n, found }),
        }
        events.push(ev);
    }
    Ok(Trace { events })
}

/// Reads and parses a trace file. See [`parse_trace`].
///
/// # Errors
///
/// [`ProfileError::Io`] when the file can't be read, plus everything
/// [`parse_trace`] reports.
pub fn load_trace(path: &Path) -> Result<Trace, ProfileError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| ProfileError::Io(format!("{}: {e}", path.display())))?;
    parse_trace(&src)
}

// --- Event keys + diff --------------------------------------------------

/// The deterministic alignment key of an event: its canonical JSON with
/// the volatile `t_us` wall-clock field stripped. Two deterministic runs
/// of the same problem produce identical key sequences; any semantic
/// difference (different pop, different plan, different refutation)
/// changes the key at the point of divergence.
pub fn event_key(ev: &Json) -> String {
    match ev {
        Json::Obj(pairs) => {
            Json::Obj(pairs.iter().filter(|(k, _)| k != "t_us").cloned().collect()).to_string()
        }
        other => other.to_string(),
    }
}

/// Outcome of aligning two traces by [`event_key`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiffOutcome {
    /// Same length, every key equal.
    Identical {
        /// Events compared.
        events: usize,
    },
    /// One trace is a strict prefix of the other — a run that stopped
    /// early (crash, tighter budget, interrupted write), not a divergent
    /// one.
    Truncated {
        /// Events in the shared (matching) prefix.
        common: usize,
        /// Length of the first trace.
        len_a: usize,
        /// Length of the second trace.
        len_b: usize,
    },
    /// The traces genuinely disagree.
    Divergence {
        /// 0-based index of the first mismatching event.
        index: usize,
        /// The first trace's key at that index.
        key_a: String,
        /// The second trace's key at that index.
        key_b: String,
    },
}

impl DiffOutcome {
    /// `true` for [`DiffOutcome::Identical`].
    pub fn is_identical(&self) -> bool {
        matches!(self, DiffOutcome::Identical { .. })
    }
}

/// Aligns two traces event-by-event (see [`event_key`]) and reports the
/// first divergence, if any. This is the tool the PR 3 determinism hunt
/// needed: point it at two `--trace` files of the same seeded problem and
/// it names the exact event where the runs parted ways.
///
/// `progress` heartbeats are skipped on both sides before alignment: they
/// fire on wall-clock cadence, so two deterministic runs of the same
/// problem emit them at different points (or in different numbers) —
/// volatile whole-event analogues of the `t_us` field that [`event_key`]
/// strips.
pub fn diff_traces(a: &Trace, b: &Trace) -> DiffOutcome {
    let volatile = |ev: &&Json| ev.get("ev").and_then(Json::as_str) != Some("progress");
    let sa: Vec<&Json> = a.events.iter().filter(volatile).collect();
    let sb: Vec<&Json> = b.events.iter().filter(volatile).collect();
    for (index, (ea, eb)) in sa.iter().zip(&sb).enumerate() {
        let key_a = event_key(ea);
        let key_b = event_key(eb);
        if key_a != key_b {
            return DiffOutcome::Divergence {
                index,
                key_a,
                key_b,
            };
        }
    }
    if sa.len() != sb.len() {
        return DiffOutcome::Truncated {
            common: sa.len().min(sb.len()),
            len_a: sa.len(),
            len_b: sb.len(),
        };
    }
    DiffOutcome::Identical { events: sa.len() }
}

// --- Summary ------------------------------------------------------------

/// Per-combinator attribution row.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CombRow {
    /// Expansions the planner admitted.
    pub plans: u64,
    /// Example rows deduction inferred for admitted expansions' holes.
    pub rows_inferred: u64,
    /// Expansions refuted by a deduction rule.
    pub refuted: u64,
    /// Expansions refuted by the abstract-interpretation pre-pass.
    pub static_refuted: u64,
    /// Expansions rejected by typing.
    pub ill_typed: u64,
    /// Fold expansions rejected by an init/empty-row mismatch.
    pub init_mismatch: u64,
}

impl CombRow {
    /// All rejection counters combined.
    pub fn rejected(&self) -> u64 {
        self.refuted + self.static_refuted + self.ill_typed + self.init_mismatch
    }
}

/// Wall-time attribution derived from `t_us` timestamps.
///
/// The gap between consecutive events is attributed to the category of
/// the event that *ends* it — the event emitted when that stretch of work
/// completed: `plan`/`refute`/`static-refute` end deduction work, `tier`
/// and `store` end enumeration work, `verify` ends a verification, and a
/// `pop` ends the queue/expansion bookkeeping between items. The split is
/// approximate at event granularity but sums exactly to the trace's span.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TimeAttribution {
    /// Microseconds from the first event to the last.
    pub total_us: u64,
    /// Microseconds attributed to deduction (planning + refutation).
    pub deduce_us: u64,
    /// Microseconds attributed to enumeration (tiers + stores).
    pub enumerate_us: u64,
    /// Microseconds attributed to verification.
    pub verify_us: u64,
    /// Microseconds attributed to queue/expansion bookkeeping (pops) and
    /// anything else.
    pub search_us: u64,
}

/// Everything `profile summary` reports about one trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    /// Total events in the trace.
    pub events: usize,
    /// Pop counts by item kind (`hyp`, `apply`, `close`).
    pub pops_by_kind: BTreeMap<String, u64>,
    /// Per-combinator attribution, keyed by combinator name.
    pub combs: BTreeMap<String, CombRow>,
    /// Deduction-rule refutations by reason (`deduction`, `ill-typed`,
    /// `init-mismatch`).
    pub refute_reasons: BTreeMap<String, u64>,
    /// Static refutations by abstract domain (`length`, `shape`, …).
    pub static_domains: BTreeMap<String, u64>,
    /// Pruning-tier static refutations by domain (`cardinality`, …):
    /// refutations deduction could not have made, subtracted from real
    /// search work. Disjoint from [`Summary::static_domains`].
    pub pruned_domains: BTreeMap<String, u64>,
    /// Verification passes.
    pub verify_ok: u64,
    /// Verification failures.
    pub verify_fail: u64,
    /// Store creations.
    pub store_creates: u64,
    /// Store cache hits.
    pub store_hits: u64,
    /// Store evictions.
    pub store_evicts: u64,
    /// Closing tiers enumerated.
    pub tiers: u64,
    /// Spec-satisfying closing terms those tiers produced.
    pub tier_fills: u64,
    /// Isolated faults.
    pub faults: u64,
    /// Histogram of popped costs, as (cost, pops) sorted by cost.
    pub pop_costs: BTreeMap<u64, u64>,
    /// The first successful candidate, as (program, cost).
    pub solution: Option<(String, u64)>,
    /// Wall-time attribution; `None` when the trace has no timestamps.
    pub time: Option<TimeAttribution>,
}

impl Summary {
    /// Refutation yield of a deduction rule (by `refute` reason or static
    /// domain): refutations per *millisecond* of attributed deduction
    /// time — work pruned per unit of pruning effort. `None` without
    /// timestamps or when no deduction time was attributed.
    pub fn yield_per_ms(&self, refutations: u64) -> Option<f64> {
        let t = self.time.as_ref()?;
        if t.deduce_us == 0 {
            return None;
        }
        Some(refutations as f64 / (t.deduce_us as f64 / 1e3))
    }

    /// Serializes the summary as one JSON object (the `--json` output of
    /// `profile summary`).
    pub fn to_json(&self) -> Json {
        let count_map = |m: &BTreeMap<String, u64>| {
            Json::Obj(m.iter().map(|(k, v)| (k.clone(), (*v).into())).collect())
        };
        let mut pairs = vec![
            ("v".to_owned(), SCHEMA_VERSION.into()),
            ("events".to_owned(), self.events.into()),
            ("pops".to_owned(), count_map(&self.pops_by_kind)),
            (
                "combs".to_owned(),
                Json::Obj(
                    self.combs
                        .iter()
                        .map(|(name, row)| {
                            (
                                name.clone(),
                                Json::obj([
                                    ("plans", row.plans.into()),
                                    ("rows_inferred", row.rows_inferred.into()),
                                    ("refuted", row.refuted.into()),
                                    ("static_refuted", row.static_refuted.into()),
                                    ("ill_typed", row.ill_typed.into()),
                                    ("init_mismatch", row.init_mismatch.into()),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            ("refute_reasons".to_owned(), count_map(&self.refute_reasons)),
            ("static_domains".to_owned(), count_map(&self.static_domains)),
            ("pruned_domains".to_owned(), count_map(&self.pruned_domains)),
            ("verify_ok".to_owned(), self.verify_ok.into()),
            ("verify_fail".to_owned(), self.verify_fail.into()),
            ("store_creates".to_owned(), self.store_creates.into()),
            ("store_hits".to_owned(), self.store_hits.into()),
            ("store_evicts".to_owned(), self.store_evicts.into()),
            ("tiers".to_owned(), self.tiers.into()),
            ("tier_fills".to_owned(), self.tier_fills.into()),
            ("faults".to_owned(), self.faults.into()),
            (
                "pop_costs".to_owned(),
                Json::Arr(
                    self.pop_costs
                        .iter()
                        .map(|(c, n)| Json::Arr(vec![(*c).into(), (*n).into()]))
                        .collect(),
                ),
            ),
        ];
        if let Some((program, cost)) = &self.solution {
            pairs.push((
                "solution".to_owned(),
                Json::obj([
                    ("program", program.as_str().into()),
                    ("cost", (*cost).into()),
                ]),
            ));
        }
        if let Some(t) = &self.time {
            pairs.push((
                "time_us".to_owned(),
                Json::obj([
                    ("total", t.total_us.into()),
                    ("deduce", t.deduce_us.into()),
                    ("enumerate", t.enumerate_us.into()),
                    ("verify", t.verify_us.into()),
                    ("search", t.search_us.into()),
                ]),
            ));
        }
        Json::Obj(pairs)
    }

    /// Renders the summary as a human-readable text report.
    ///
    /// Sections with nothing to show degrade to an explicit
    /// `(none recorded …)` note rather than a bare header: a trace from a
    /// run with little or no instrumentation (e.g. `metrics` off, or an
    /// engine path that never emitted that event family) is a valid input
    /// here, not an error.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "events: {}", self.events);
        if self.events == 0 {
            let _ = writeln!(
                out,
                "(empty trace — no metrics recorded; was the run traced with --trace?)"
            );
            return out;
        }
        if let Some((program, cost)) = &self.solution {
            let _ = writeln!(out, "solution (cost {cost}): {program}");
        }
        let _ = writeln!(out, "\npops by kind:");
        if self.pops_by_kind.is_empty() {
            let _ = writeln!(out, "  (none recorded in this trace)");
        }
        for (kind, n) in &self.pops_by_kind {
            let _ = writeln!(out, "  {kind:<8} {n}");
        }
        let _ = writeln!(
            out,
            "\nper-combinator attribution:\n  {:<8} {:>7} {:>6} {:>8} {:>7} {:>9} {:>9}",
            "comb", "plans", "rows", "refuted", "static", "ill-typed", "init-mism"
        );
        if self.combs.is_empty() {
            let _ = writeln!(out, "  (none recorded in this trace)");
        }
        for (name, row) in &self.combs {
            let _ = writeln!(
                out,
                "  {:<8} {:>7} {:>6} {:>8} {:>7} {:>9} {:>9}",
                name,
                row.plans,
                row.rows_inferred,
                row.refuted,
                row.static_refuted,
                row.ill_typed,
                row.init_mismatch
            );
        }
        let _ = writeln!(out, "\nrefutations by rule:");
        if self.refute_reasons.is_empty()
            && self.static_domains.is_empty()
            && self.pruned_domains.is_empty()
        {
            let _ = writeln!(out, "  (none recorded in this trace)");
        }
        for (reason, n) in &self.refute_reasons {
            match self.yield_per_ms(*n) {
                Some(y) => {
                    let _ = writeln!(out, "  {reason:<14} {n:>8}   ({y:.0}/ms of deduction)");
                }
                None => {
                    let _ = writeln!(out, "  {reason:<14} {n:>8}");
                }
            }
        }
        for (domain, n) in &self.static_domains {
            let label = format!("static:{domain}");
            match self.yield_per_ms(*n) {
                Some(y) => {
                    let _ = writeln!(out, "  {label:<14} {n:>8}   ({y:.0}/ms of deduction)");
                }
                None => {
                    let _ = writeln!(out, "  {label:<14} {n:>8}");
                }
            }
        }
        for (domain, n) in &self.pruned_domains {
            let label = format!("prune:{domain}");
            match self.yield_per_ms(*n) {
                Some(y) => {
                    let _ = writeln!(out, "  {label:<14} {n:>8}   ({y:.0}/ms of deduction)");
                }
                None => {
                    let _ = writeln!(out, "  {label:<14} {n:>8}");
                }
            }
        }
        let _ = writeln!(
            out,
            "\nverify: {} ok, {} failed; stores: {} created, {} hits, {} evicted; \
             tiers: {} ({} fills); faults: {}",
            self.verify_ok,
            self.verify_fail,
            self.store_creates,
            self.store_hits,
            self.store_evicts,
            self.tiers,
            self.tier_fills,
            self.faults
        );
        if let Some(t) = &self.time {
            let pct = |us: u64| {
                if t.total_us == 0 {
                    0.0
                } else {
                    us as f64 * 100.0 / t.total_us as f64
                }
            };
            let _ = writeln!(
                out,
                "\ntime attribution over {:.1}ms: deduce {:.1}ms ({:.0}%), enumerate {:.1}ms \
                 ({:.0}%), verify {:.1}ms ({:.0}%), search/expand {:.1}ms ({:.0}%)",
                t.total_us as f64 / 1e3,
                t.deduce_us as f64 / 1e3,
                pct(t.deduce_us),
                t.enumerate_us as f64 / 1e3,
                pct(t.enumerate_us),
                t.verify_us as f64 / 1e3,
                pct(t.verify_us),
                t.search_us as f64 / 1e3,
                pct(t.search_us)
            );
        } else {
            let _ = writeln!(
                out,
                "\n(no t_us timestamps — time attribution and refutation yield unavailable)"
            );
        }
        out
    }
}

/// Phase category a trace event's preceding work belongs to.
fn category(ev: &Json) -> &'static str {
    match ev.get("ev").and_then(Json::as_str) {
        Some("plan" | "refute" | "static-refute") => "deduce",
        Some("tier" | "store") => "enumerate",
        Some("verify") => "verify",
        _ => "search",
    }
}

/// Builds the attribution [`Summary`] of a trace.
pub fn summarize(trace: &Trace) -> Summary {
    let mut s = Summary {
        events: trace.len(),
        ..Summary::default()
    };
    let str_of = |ev: &Json, key: &str| ev.get(key).and_then(Json::as_str).map(str::to_owned);
    let n_of = |ev: &Json, key: &str| ev.get(key).and_then(Json::as_u64).unwrap_or(0);
    for ev in &trace.events {
        match ev.get("ev").and_then(Json::as_str) {
            Some("pop") => {
                let kind = str_of(ev, "kind").unwrap_or_else(|| "?".to_owned());
                *s.pops_by_kind.entry(kind).or_default() += 1;
                *s.pop_costs.entry(n_of(ev, "cost")).or_default() += 1;
            }
            Some("plan") => {
                if let Some(comb) = str_of(ev, "comb") {
                    let row = s.combs.entry(comb).or_default();
                    row.plans += 1;
                    row.rows_inferred += n_of(ev, "rows");
                }
            }
            Some("refute") => {
                let reason = str_of(ev, "reason").unwrap_or_else(|| "?".to_owned());
                *s.refute_reasons.entry(reason.clone()).or_default() += 1;
                if let Some(comb) = str_of(ev, "comb") {
                    let row = s.combs.entry(comb).or_default();
                    match reason.as_str() {
                        "deduction" => row.refuted += 1,
                        "ill-typed" => row.ill_typed += 1,
                        "init-mismatch" => row.init_mismatch += 1,
                        _ => {}
                    }
                }
            }
            Some("static-refute") => {
                let domain = str_of(ev, "domain").unwrap_or_else(|| "?".to_owned());
                // The serializer only emits `pruned` when true (pruning
                // tier); attribution-tier events omit it.
                if ev.get("pruned") == Some(&Json::Bool(true)) {
                    *s.pruned_domains.entry(domain).or_default() += 1;
                } else {
                    *s.static_domains.entry(domain).or_default() += 1;
                }
                if let Some(comb) = str_of(ev, "comb") {
                    s.combs.entry(comb).or_default().static_refuted += 1;
                }
            }
            Some("tier") => {
                s.tiers += 1;
                s.tier_fills += n_of(ev, "fills");
            }
            Some("store") => match ev.get("action").and_then(Json::as_str) {
                Some("create") => s.store_creates += 1,
                Some("hit") => s.store_hits += 1,
                Some("evict") => s.store_evicts += 1,
                _ => {}
            },
            Some("verify") => {
                if ev.get("ok") == Some(&Json::Bool(true)) {
                    s.verify_ok += 1;
                    if s.solution.is_none() {
                        if let Some(p) = str_of(ev, "program") {
                            s.solution = Some((p, n_of(ev, "cost")));
                        }
                    }
                } else {
                    s.verify_fail += 1;
                }
            }
            Some("fault") => s.faults += 1,
            _ => {}
        }
    }
    if trace.has_timestamps() {
        let mut t = TimeAttribution::default();
        let first = trace.t_us(0).unwrap_or(0);
        let mut prev = first;
        for i in 0..trace.len() {
            // A progress heartbeat fires mid-phase on wall-clock cadence;
            // attributing the gap it ends to any category would be noise.
            // Skipping it folds its gap into the next real event's.
            if trace.events[i].get("ev").and_then(Json::as_str) == Some("progress") {
                continue;
            }
            let now = trace.t_us(i).unwrap_or(prev);
            let gap = now.saturating_sub(prev);
            match category(&trace.events[i]) {
                "deduce" => t.deduce_us += gap,
                "enumerate" => t.enumerate_us += gap,
                "verify" => t.verify_us += gap,
                _ => t.search_us += gap,
            }
            prev = now;
        }
        t.total_us = prev.saturating_sub(first);
        s.time = Some(t);
    }
    s
}

// --- Derivation-tree folding (flamegraph stacks) ------------------------

/// How [`collapse_tree`] weighs a popped hypothesis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Weight {
    /// One unit per pop.
    Pops,
    /// Microseconds from the pop to the next pop (the time spent
    /// processing the popped item). Requires `t_us` timestamps.
    Time,
}

/// Combinator heads recognized in a sketch, in sketch prefix order.
const COMB_HEADS: &[&str] = &["map", "filter", "foldl", "foldr", "recl", "mapt", "foldt"];

/// The flamegraph stack of a hypothesis sketch: `root` followed by the
/// combinator heads in the sketch, in prefix (outermost-first,
/// left-to-right) order. `(foldl (lambda (a x) (+ a ?2)) 0 l)` folds to
/// `root;foldl`; a nested `(map (lambda (x) (foldl … ?3 …)) l)` to
/// `root;map;foldl`.
fn sketch_stack(sketch: &str) -> String {
    let mut stack = String::from("root");
    // Tokens directly following an opening paren are application heads;
    // combinator heads among them, in order, form the derivation path.
    let mut head = false;
    let mut token = String::new();
    for ch in sketch.chars() {
        match ch {
            '(' => {
                head = true;
                token.clear();
            }
            c if c.is_whitespace() || c == ')' => {
                if head && COMB_HEADS.contains(&token.as_str()) {
                    stack.push(';');
                    stack.push_str(&token);
                }
                head = false;
                token.clear();
            }
            c => {
                if head {
                    token.push(c);
                }
            }
        }
    }
    stack
}

/// Folds a trace's popped hypotheses into flamegraph collapsed-stack
/// lines: `(stack, weight)` pairs, sorted by stack, ready to be printed
/// as `stack weight` and fed to any standard flamegraph renderer.
///
/// Only `pop` events contribute; each pop's sketch becomes a stack of
/// combinator heads ([`sketch_stack`]) and its weight is one pop or the
/// time until the next pop ([`Weight`]).
///
/// # Errors
///
/// [`ProfileError::NoTimestamps`] for [`Weight::Time`] on a trace
/// without `t_us` fields.
pub fn collapse_tree(trace: &Trace, weight: Weight) -> Result<Vec<(String, u64)>, ProfileError> {
    if weight == Weight::Time && !trace.has_timestamps() {
        return Err(ProfileError::NoTimestamps);
    }
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    let pops: Vec<usize> = (0..trace.len())
        .filter(|&i| trace.events[i].get("ev").and_then(Json::as_str) == Some("pop"))
        .collect();
    for (k, &i) in pops.iter().enumerate() {
        let sketch = trace.events[i]
            .get("sketch")
            .and_then(Json::as_str)
            .unwrap_or("");
        let w = match weight {
            Weight::Pops => 1,
            Weight::Time => {
                // Time from this pop to the next pop (or trace end): the
                // span spent processing the popped item.
                let here = trace.t_us(i).unwrap_or(0);
                let end = match pops.get(k + 1) {
                    Some(&j) => trace.t_us(j).unwrap_or(here),
                    None => trace.t_us(trace.len() - 1).unwrap_or(here),
                };
                end.saturating_sub(here)
            }
        };
        *stacks.entry(sketch_stack(sketch)).or_default() += w;
    }
    Ok(stacks.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(ev: &str) -> String {
        format!(r#"{{"v":1,"ev":{ev}}}"#)
    }

    #[test]
    fn parse_rejects_missing_and_wrong_versions() {
        let ok = parse_trace(&line(r#""pop","kind":"hyp","cost":3,"sketch":"?1""#)).unwrap();
        assert_eq!(ok.len(), 1);
        let missing = parse_trace(r#"{"ev":"pop"}"#);
        assert_eq!(
            missing,
            Err(ProfileError::Version {
                line: 1,
                found: None
            })
        );
        let future = parse_trace(&format!(
            "{}\n{}",
            line(r#""pop""#),
            r#"{"v":99,"ev":"pop"}"#
        ));
        assert_eq!(
            future,
            Err(ProfileError::Version {
                line: 2,
                found: Some(99)
            })
        );
        let garbage = parse_trace("not json");
        assert!(matches!(garbage, Err(ProfileError::Parse { line: 1, .. })));
    }

    #[test]
    fn event_key_strips_only_the_volatile_timestamp() {
        let a = json::parse(r#"{"v":1,"t_us":123,"ev":"pop","cost":3}"#).unwrap();
        let b = json::parse(r#"{"v":1,"t_us":99999,"ev":"pop","cost":3}"#).unwrap();
        let c = json::parse(r#"{"v":1,"t_us":123,"ev":"pop","cost":4}"#).unwrap();
        assert_eq!(event_key(&a), event_key(&b));
        assert_ne!(event_key(&a), event_key(&c));
        assert!(!event_key(&a).contains("t_us"));
        // Worker/problem tags from merged parallel traces are part of the
        // key — they are deterministic.
        let tagged = json::parse(r#"{"problem":"evens","worker":2,"v":1,"ev":"pop"}"#).unwrap();
        assert!(event_key(&tagged).contains("worker"));
    }

    #[test]
    fn diff_distinguishes_identical_truncated_and_divergent() {
        let full = parse_trace(&format!(
            "{}\n{}\n{}",
            line(r#""pop","cost":1"#),
            line(r#""plan","comb":"map""#),
            line(r#""verify","ok":true"#)
        ))
        .unwrap();
        assert_eq!(
            diff_traces(&full, &full.clone()),
            DiffOutcome::Identical { events: 3 }
        );
        let short = Trace {
            events: full.events[..2].to_vec(),
        };
        assert_eq!(
            diff_traces(&full, &short),
            DiffOutcome::Truncated {
                common: 2,
                len_a: 3,
                len_b: 2
            }
        );
        let mut other = full.clone();
        other.events[1] = json::parse(&line(r#""plan","comb":"filter""#)).unwrap();
        match diff_traces(&full, &other) {
            DiffOutcome::Divergence {
                index,
                key_a,
                key_b,
            } => {
                assert_eq!(index, 1);
                assert!(key_a.contains("map"));
                assert!(key_b.contains("filter"));
            }
            o => panic!("expected divergence, got {o:?}"),
        }
    }

    #[test]
    fn summary_attributes_combs_rules_and_time() {
        let src = [
            r#"{"v":1,"t_us":0,"ev":"pop","kind":"hyp","cost":1,"holes":1,"sketch":"?1"}"#,
            r#"{"v":1,"t_us":100,"ev":"store","action":"create","terms":0,"bytes":0}"#,
            r#"{"v":1,"t_us":300,"ev":"refute","comb":"map","coll":"l","reason":"deduction"}"#,
            r#"{"v":1,"t_us":350,"ev":"static-refute","comb":"mapt","coll":"l","domain":"shape"}"#,
            r#"{"v":1,"t_us":375,"ev":"static-refute","comb":"filter","coll":"l","domain":"cardinality","pruned":true}"#,
            r#"{"v":1,"t_us":400,"ev":"plan","comb":"filter","coll":"l","delta_cost":4,"rows":3}"#,
            r#"{"v":1,"t_us":900,"ev":"verify","ok":true,"cost":7,"program":"(filter f l)"}"#,
        ]
        .join("\n");
        let trace = parse_trace(&src).unwrap();
        let s = summarize(&trace);
        assert_eq!(s.events, 7);
        assert_eq!(s.pops_by_kind.get("hyp"), Some(&1));
        assert_eq!(s.pop_costs.get(&1), Some(&1));
        let filter = s.combs.get("filter").unwrap();
        assert_eq!((filter.plans, filter.rows_inferred), (1, 3));
        // The pruned cardinality refutation counts toward filter's
        // static_refuted column but lands in pruned_domains, not
        // static_domains.
        assert_eq!(filter.static_refuted, 1);
        assert_eq!(s.combs.get("map").unwrap().refuted, 1);
        assert_eq!(s.combs.get("mapt").unwrap().static_refuted, 1);
        assert_eq!(s.refute_reasons.get("deduction"), Some(&1));
        assert_eq!(s.static_domains.get("shape"), Some(&1));
        assert_eq!(s.static_domains.get("cardinality"), None);
        assert_eq!(s.pruned_domains.get("cardinality"), Some(&1));
        assert_eq!(s.store_creates, 1);
        assert_eq!(s.verify_ok, 1);
        assert_eq!(s.solution, Some(("(filter f l)".to_owned(), 7)));
        let t = s.time.as_ref().unwrap();
        assert_eq!(t.total_us, 900);
        // store@100 ends 100us of enumerate; refute@300 + static@350 +
        // pruned@375 + plan@400 end 300us of deduce; verify@900 ends 500us.
        assert_eq!(t.enumerate_us, 100);
        assert_eq!(t.deduce_us, 300);
        assert_eq!(t.verify_us, 500);
        assert_eq!(
            t.deduce_us + t.enumerate_us + t.verify_us + t.search_us,
            t.total_us
        );
        // Refutation yield: 1 deduction refutation / 0.3ms.
        let y = s.yield_per_ms(1).unwrap();
        assert!((y - 1.0 / 0.3).abs() < 1e-9, "{y}");
        let text = s.render_text();
        assert!(text.contains("filter"));
        assert!(text.contains("static:shape"));
        assert!(text.contains("prune:cardinality"));
        assert!(text.contains("time attribution"));
        let j = s.to_json();
        assert_eq!(json::parse(&j.to_string()).unwrap(), j);
    }

    #[test]
    fn summary_without_timestamps_has_no_time() {
        let trace = parse_trace(&line(r#""pop","kind":"hyp","cost":1,"sketch":"?1""#)).unwrap();
        let s = summarize(&trace);
        assert_eq!(s.time, None);
        assert_eq!(s.yield_per_ms(5), None);
        assert!(s.render_text().contains("no t_us"));
    }

    #[test]
    fn sketch_stacks_follow_combinator_heads_in_prefix_order() {
        assert_eq!(sketch_stack("?1"), "root");
        assert_eq!(sketch_stack("(map (lambda (x) ?2) l)"), "root;map");
        assert_eq!(
            sketch_stack("(map (lambda (x) (foldl (lambda (a y) ?3) 0 x)) l)"),
            "root;map;foldl"
        );
        // `mapt` must not be mistaken for `map`, nor variables for heads.
        assert_eq!(sketch_stack("(mapt (lambda (x) (+ x map)) t)"), "root;mapt");
    }

    #[test]
    fn collapse_tree_weighs_pops_and_time() {
        let src = [
            r#"{"v":1,"t_us":0,"ev":"pop","kind":"hyp","cost":1,"holes":1,"sketch":"?1"}"#,
            r#"{"v":1,"t_us":40,"ev":"plan","comb":"map","coll":"l","delta_cost":4,"rows":2}"#,
            r#"{"v":1,"t_us":100,"ev":"pop","kind":"apply","cost":5,"holes":1,"sketch":"(map (lambda (x) ?2) l)"}"#,
            r#"{"v":1,"t_us":400,"ev":"pop","kind":"hyp","cost":5,"holes":1,"sketch":"(map (lambda (x) ?2) l)"}"#,
            r#"{"v":1,"t_us":900,"ev":"verify","ok":true,"cost":7,"program":"(map f l)"}"#,
        ]
        .join("\n");
        let trace = parse_trace(&src).unwrap();
        let pops = collapse_tree(&trace, Weight::Pops).unwrap();
        assert_eq!(
            pops,
            vec![("root".to_owned(), 1), ("root;map".to_owned(), 2)]
        );
        let time = collapse_tree(&trace, Weight::Time).unwrap();
        // root: 0→100; root;map: (100→400) + (400→900, to trace end).
        assert_eq!(
            time,
            vec![("root".to_owned(), 100), ("root;map".to_owned(), 800)]
        );
        // Time weighting without timestamps is an explicit error.
        let untimed = parse_trace(&line(r#""pop","kind":"hyp","cost":1,"sketch":"?1""#)).unwrap();
        assert_eq!(
            collapse_tree(&untimed, Weight::Time),
            Err(ProfileError::NoTimestamps)
        );
    }
}
