//! Pure enumerative baseline (no hypotheses, no deduction).
//!
//! The comparison strawman for the paper's scalability figures: programs
//! are enumerated bottom-up in cost order and tested against the examples.
//! Combinator applications are built from a *structurally* enumerated pool
//! of lambda bodies — without deduction there are no example values for the
//! binders, so observational equivalence cannot prune inside lambdas, which
//! is exactly why this baseline collapses on fold-shaped problems while
//! λ² does not.
//!
//! Top-level (closed) terms *are* pruned by observational equivalence on
//! the example inputs, so the baseline is a fair, competently engineered
//! enumerator rather than a pure grammar walk.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lambda2_lang::ast::{Comb, Expr};
use lambda2_lang::env::Env;
use lambda2_lang::eval::eval;
use lambda2_lang::symbol::Symbol;
use lambda2_lang::ty::Type;
use lambda2_lang::value::Value;

use crate::enumerate::{canonical, op_result_type, EnumLimits, TermStore};
use crate::govern::{Budget, DEFAULT_MAX_OVERSHOOT};
use crate::problem::Problem;
use crate::search::{SynthError, Synthesis};
use crate::spec::Spec;
use crate::stats::Stats;
use crate::verify::Program;

/// Tunables for the baseline enumerator.
#[derive(Clone, Debug)]
pub struct BaselineOptions {
    /// Global cost ceiling for candidate programs.
    pub max_cost: u32,
    /// Wall-clock budget.
    pub timeout: Option<Duration>,
    /// Maximum cost of a lambda *body* drawn from the structural pool.
    pub max_lambda_body_cost: u32,
    /// Cap on each structural lambda-body pool.
    pub max_pool_terms: usize,
    /// Evaluation fuel per candidate test.
    pub eval_fuel: u64,
}

impl Default for BaselineOptions {
    fn default() -> BaselineOptions {
        BaselineOptions {
            max_cost: 24,
            timeout: Some(Duration::from_secs(20)),
            max_lambda_body_cost: 7,
            max_pool_terms: 3_000,
            eval_fuel: 50_000,
        }
    }
}

struct Entry {
    expr: Arc<Expr>,
    ty: Type,
    sig: Vec<Option<Value>>, // None = evaluation error on that row
}

/// Runs the baseline enumerator on `problem`.
///
/// # Errors
///
/// See [`SynthError`]; inconsistent examples are reported before any
/// enumeration happens.
pub fn synthesize_baseline(
    problem: &Problem,
    options: &BaselineOptions,
) -> Result<Synthesis, SynthError> {
    let budget = Budget::new(options.timeout, DEFAULT_MAX_OVERSHOOT);
    synthesize_baseline_within(problem, options, &budget)
}

/// [`synthesize_baseline`] under an explicit resource [`Budget`]: the
/// budget (not `options.timeout`) decides when to stop, is ticked inside
/// the candidate loops and pool construction, and supports cooperative
/// cancellation — the baseline rung of the retry ladder runs through here.
///
/// # Errors
///
/// See [`SynthError`].
pub fn synthesize_baseline_within(
    problem: &Problem,
    options: &BaselineOptions,
    budget: &Budget,
) -> Result<Synthesis, SynthError> {
    let start = Instant::now();
    let library = problem.library();
    let costs = library.costs().clone();
    let mut stats = Stats::default();

    // Example environments and expected outputs.
    let envs: Vec<Env> = problem
        .examples()
        .iter()
        .map(|ex| {
            let mut env = Env::empty();
            for ((sym, _), v) in problem.params().iter().zip(&ex.inputs) {
                env = env.bind(*sym, v.clone());
            }
            env
        })
        .collect();
    let outputs: Vec<&Value> = problem.examples().iter().map(|ex| &ex.output).collect();
    {
        // Consistency check, mirroring the main engine.
        let mut seen: HashMap<Vec<(Symbol, Value)>, &Value> = HashMap::new();
        for (env, out) in envs.iter().zip(&outputs) {
            if let Some(prev) = seen.insert(env.fingerprint(), out) {
                if prev != *out {
                    return Err(SynthError::InconsistentExamples);
                }
            }
        }
    }

    // Ground type universe: subterm types of the signature plus int/bool.
    let mut universe: Vec<Type> = vec![Type::Int, Type::Bool];
    let add_subterms = |ty: &Type, universe: &mut Vec<Type>| {
        let mut stack = vec![ty.clone()];
        while let Some(t) = stack.pop() {
            match &t {
                Type::List(e) | Type::Tree(e) => stack.push((**e).clone()),
                _ => {}
            }
            if !universe.contains(&t) {
                universe.push(t);
            }
        }
    };
    for (_, t) in problem.params() {
        add_subterms(t, &mut universe);
    }
    add_subterms(problem.return_type(), &mut universe);

    // Structural lambda-body pools, one per (combinator, elem, result) type
    // choice. Bodies are first-order (no nested combinators).
    let mut pools: HashMap<(Comb, String, String), TermStore> = HashMap::new();
    let binder_names = |comb: Comb| -> Vec<Symbol> {
        match comb {
            Comb::Map | Comb::Filter | Comb::Mapt => vec![Symbol::intern("bx")],
            Comb::Foldl => vec![Symbol::intern("ba"), Symbol::intern("bx")],
            Comb::Foldr => vec![Symbol::intern("bx"), Symbol::intern("ba")],
            Comb::Recl => vec![
                Symbol::intern("bx"),
                Symbol::intern("bxs"),
                Symbol::intern("br"),
            ],
            Comb::Foldt => vec![Symbol::intern("bv"), Symbol::intern("brs")],
        }
    };
    let binder_types = |comb: Comb, tau: &Type, beta: &Type| -> (Vec<Type>, Type) {
        match comb {
            Comb::Map | Comb::Mapt => (vec![tau.clone()], beta.clone()),
            Comb::Filter => (vec![tau.clone()], Type::Bool),
            Comb::Foldl => (vec![beta.clone(), tau.clone()], beta.clone()),
            Comb::Foldr => (vec![tau.clone(), beta.clone()], beta.clone()),
            Comb::Recl => (
                vec![tau.clone(), Type::list(tau.clone()), beta.clone()],
                beta.clone(),
            ),
            Comb::Foldt => (vec![tau.clone(), Type::list(beta.clone())], beta.clone()),
        }
    };

    // Main store: levels of closed terms with top-level OE.
    let mut levels: Vec<Vec<usize>> = vec![Vec::new()];
    let mut terms: Vec<Entry> = Vec::new();
    let mut seen: HashSet<(String, Vec<Option<Value>>)> = HashSet::new();

    let test_and_insert = |e: Arc<Expr>,
                           ty: Type,
                           sig: Vec<Option<Value>>,
                           level: &mut Vec<usize>,
                           terms: &mut Vec<Entry>,
                           seen: &mut HashSet<(String, Vec<Option<Value>>)>,
                           stats: &mut Stats|
     -> Option<Program> {
        if sig.iter().all(Option::is_none) {
            return None;
        }
        let ty = canonical(&ty);
        if !seen.insert((ty.to_string(), sig.clone())) {
            return None;
        }
        stats.verified += 1;
        if sig
            .iter()
            .zip(&outputs)
            .all(|(s, o)| matches!(s, Some(v) if v == *o))
        {
            return Some(Program::new(problem.params().to_vec(), (*e).clone()));
        }
        stats.verify_failures += 1;
        terms.push(Entry { expr: e, ty, sig });
        level.push(terms.len() - 1);
        None
    };

    let finish = |program: Program, cost: u32, mut stats: Stats, start: Instant| {
        stats.enumerated_terms = 0;
        Ok(Synthesis {
            program,
            cost,
            stats,
            elapsed: start.elapsed(),
        })
    };

    for k in 1..=options.max_cost {
        if let Err(e) = budget.check_now() {
            return Err(e.to_synth_error());
        }
        let mut level: Vec<usize> = Vec::new();

        // Leaves.
        if k == costs.lit {
            for c in library.constants() {
                let mut n = 0u32;
                let ty = c.type_of(&mut || {
                    n += 1;
                    Type::Var(n - 1)
                });
                let sig = envs.iter().map(|_| Some(c.clone())).collect();
                if let Some(p) = test_and_insert(
                    Arc::new(Expr::Lit(c.clone())),
                    ty,
                    sig,
                    &mut level,
                    &mut terms,
                    &mut seen,
                    &mut stats,
                ) {
                    return finish(p, k, stats, start);
                }
            }
        }
        if k == costs.var {
            for (sym, ty) in problem.params() {
                let sig = envs.iter().map(|env| env.lookup(*sym).cloned()).collect();
                if let Some(p) = test_and_insert(
                    Arc::new(Expr::Var(*sym)),
                    ty.clone(),
                    sig,
                    &mut level,
                    &mut terms,
                    &mut seen,
                    &mut stats,
                ) {
                    return finish(p, k, stats, start);
                }
            }
        }

        // First-order operator applications.
        for &op in library.ops() {
            let node = costs.op_cost(op);
            if k <= node {
                continue;
            }
            let arg_budget = k - node;
            let arity = op.arity();
            let combos: Vec<Vec<usize>> = match arity {
                1 => levels
                    .get(arg_budget as usize)
                    .into_iter()
                    .flatten()
                    .map(|&i| vec![i])
                    .collect(),
                2 => {
                    let mut v = Vec::new();
                    for k1 in 1..arg_budget {
                        let k2 = arg_budget - k1;
                        for &i in levels.get(k1 as usize).into_iter().flatten() {
                            for &j in levels.get(k2 as usize).into_iter().flatten() {
                                v.push(vec![i, j]);
                            }
                        }
                    }
                    v
                }
                _ => unreachable!(),
            };
            for combo in combos {
                if let Err(e) = budget.tick() {
                    return Err(e.to_synth_error());
                }
                let atys: Vec<Type> = combo.iter().map(|&i| terms[i].ty.clone()).collect();
                let Some(ret) = op_result_type(op, &atys) else {
                    continue;
                };
                let sig: Vec<Option<Value>> = (0..envs.len())
                    .map(|r| {
                        let args: Option<Vec<Value>> =
                            combo.iter().map(|&i| terms[i].sig[r].clone()).collect();
                        args.and_then(|a| op.apply(&a).ok())
                    })
                    .collect();
                let expr = Arc::new(Expr::Op(
                    op,
                    combo
                        .iter()
                        .map(|&i| (*terms[i].expr).clone())
                        .collect::<Vec<_>>()
                        .into(),
                ));
                if let Some(p) = test_and_insert(
                    expr, ret, sig, &mut level, &mut terms, &mut seen, &mut stats,
                ) {
                    return finish(p, k, stats, start);
                }
            }
        }

        // Combinator applications with structurally enumerated lambdas.
        for &comb in library.combs() {
            let node = costs.comb_cost(comb) + costs.lambda;
            if k <= node {
                continue;
            }
            let split_cap = k - node; // body + [init] + collection
            for tau in &universe {
                for beta in &universe {
                    if matches!(comb, Comb::Filter) && beta != &Type::Bool {
                        continue;
                    }
                    let coll_ty = if comb.is_tree() {
                        Type::tree(tau.clone())
                    } else {
                        Type::list(tau.clone())
                    };
                    let (btys, body_ty) = binder_types(comb, tau, beta);
                    let bnames = binder_names(comb);
                    let key = (comb, tau.to_string(), beta.to_string());
                    let pool = pools.entry(key).or_insert_with(|| {
                        let mut scope = problem.params().to_vec();
                        for (n, t) in bnames.iter().zip(&btys) {
                            scope.push((*n, t.clone()));
                        }
                        TermStore::new(
                            scope,
                            &Spec::empty(),
                            EnumLimits {
                                max_level_terms: options.max_pool_terms,
                                max_terms: options.max_pool_terms * 4,
                                ..EnumLimits::default()
                            },
                        )
                    });
                    if let Err(e) = pool.ensure_within(
                        options.max_lambda_body_cost.min(split_cap),
                        library,
                        budget,
                    ) {
                        return Err(e.to_synth_error());
                    }

                    let has_init = comb.init_index().is_some();
                    // Split budget: body_cost + init_cost? + coll_cost.
                    for body_cost in 1..=split_cap.saturating_sub(if has_init { 2 } else { 1 }) {
                        if body_cost > options.max_lambda_body_cost {
                            break;
                        }
                        let bodies: Vec<Arc<Expr>> = pool
                            .closings(body_cost, &body_ty, &Spec::empty())
                            .map(|t| pool.expr_of(t))
                            .collect();
                        if bodies.is_empty() {
                            continue;
                        }
                        let rest = split_cap - body_cost;
                        let splits: Vec<(Option<usize>, usize)> = if has_init {
                            let mut v = Vec::new();
                            for init_cost in 1..rest {
                                let coll_cost = rest - init_cost;
                                for &ii in levels.get(init_cost as usize).into_iter().flatten() {
                                    if !crate::enumerate::unifiable(&terms[ii].ty, beta) {
                                        continue;
                                    }
                                    for &ci in levels.get(coll_cost as usize).into_iter().flatten()
                                    {
                                        if crate::enumerate::unifiable(&terms[ci].ty, &coll_ty) {
                                            v.push((Some(ii), ci));
                                        }
                                    }
                                }
                            }
                            v
                        } else {
                            levels
                                .get(rest as usize)
                                .into_iter()
                                .flatten()
                                .filter(|&&ci| crate::enumerate::unifiable(&terms[ci].ty, &coll_ty))
                                .map(|&ci| (None, ci))
                                .collect()
                        };
                        for body in &bodies {
                            let lam =
                                Expr::Lambda(bnames.clone().into(), Arc::new((**body).clone()));
                            for (init, ci) in &splits {
                                if let Err(e) = budget.tick() {
                                    return Err(e.to_synth_error());
                                }
                                let mut args = vec![lam.clone()];
                                if let Some(ii) = init {
                                    args.push((*terms[*ii].expr).clone());
                                }
                                args.push((*terms[*ci].expr).clone());
                                let expr = Arc::new(Expr::comb(comb, args));
                                // Full evaluation per row (lambdas preclude
                                // compositional signatures).
                                let sig: Vec<Option<Value>> = envs
                                    .iter()
                                    .map(|env| {
                                        let mut fuel = options.eval_fuel;
                                        eval(&expr, env, &mut fuel).ok()
                                    })
                                    .collect();
                                stats.popped += 1;
                                let out_ty = match comb {
                                    Comb::Map => Type::list(beta.clone()),
                                    Comb::Filter => coll_ty.clone(),
                                    Comb::Mapt => Type::tree(beta.clone()),
                                    _ => beta.clone(),
                                };
                                if let Some(p) = test_and_insert(
                                    expr, out_ty, sig, &mut level, &mut terms, &mut seen,
                                    &mut stats,
                                ) {
                                    return finish(p, k, stats, start);
                                }
                            }
                        }
                    }
                }
            }
        }

        levels.push(level);
    }

    Err(SynthError::Exhausted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem(params: &[(&str, &str)], ret: &str, examples: &[(&[&str], &str)]) -> Problem {
        let mut b = Problem::builder("t");
        for (n, t) in params {
            b = b.param(n, t);
        }
        b = b.returns(ret);
        for (ins, out) in examples {
            b = b.example(ins, out);
        }
        b.build().unwrap()
    }

    #[test]
    fn baseline_solves_trivial_first_order_problems() {
        let p = problem(
            &[("l", "[int]")],
            "int",
            &[(&["[3 1]"], "3"), (&["[5]"], "5"), (&["[2 9]"], "2")],
        );
        let s = synthesize_baseline(&p, &BaselineOptions::default()).unwrap();
        assert_eq!(s.program.body().to_string(), "(car l)");
    }

    #[test]
    fn baseline_solves_simple_map_problems() {
        let p = problem(
            &[("l", "[int]")],
            "[int]",
            &[(&["[]"], "[]"), (&["[1 2]"], "[2 3]"), (&["[5]"], "[6]")],
        );
        let s = synthesize_baseline(&p, &BaselineOptions::default()).unwrap();
        assert!(s.program.satisfies_problem(&p, 10_000));
        assert!(s.program.body().to_string().contains("map"));
    }

    #[test]
    fn baseline_times_out_or_exhausts_on_hard_problems() {
        // reverse needs a fold with a two-variable body; give the baseline
        // a tiny budget so the test stays fast.
        let p = problem(
            &[("l", "[int]")],
            "[int]",
            &[
                (&["[]"], "[]"),
                (&["[5 2]"], "[2 5]"),
                (&["[5 2 9]"], "[9 2 5]"),
            ],
        );
        let opts = BaselineOptions {
            timeout: Some(Duration::from_millis(300)),
            ..BaselineOptions::default()
        };
        match synthesize_baseline(&p, &opts) {
            Ok(s) => assert!(s.program.satisfies_problem(&p, 10_000)),
            Err(e) => assert!(matches!(e, SynthError::Timeout | SynthError::Exhausted)),
        }
    }

    #[test]
    fn baseline_rejects_inconsistent_examples() {
        let p = problem(&[("x", "int")], "int", &[(&["1"], "1"), (&["1"], "2")]);
        assert_eq!(
            synthesize_baseline(&p, &BaselineOptions::default()).unwrap_err(),
            SynthError::InconsistentExamples
        );
    }
}
