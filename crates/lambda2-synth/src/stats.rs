//! Search statistics, reported with every synthesis result and consumed by
//! the experiment harness.

use std::fmt;
use std::time::Duration;

/// Counters describing one synthesis run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Queue items popped.
    pub popped: u64,
    /// Hypotheses created by combinator expansion.
    pub expansions: u64,
    /// Combinator expansions refuted by deduction.
    pub refuted: u64,
    /// Combinator expansions rejected by typing.
    pub ill_typed: u64,
    /// Hole closings attempted (terms that matched a hole's spec).
    pub closings: u64,
    /// Complete candidate programs verified against the examples.
    pub verified: u64,
    /// Complete candidates that failed verification.
    pub verify_failures: u64,
    /// Terms materialized across all enumeration stores.
    pub enumerated_terms: u64,
}

impl Stats {
    /// Merges another run's counters into this one (used when aggregating
    /// over a benchmark suite).
    pub fn merge(&mut self, other: &Stats) {
        self.popped += other.popped;
        self.expansions += other.expansions;
        self.refuted += other.refuted;
        self.ill_typed += other.ill_typed;
        self.closings += other.closings;
        self.verified += other.verified;
        self.verify_failures += other.verify_failures;
        self.enumerated_terms += other.enumerated_terms;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "popped={} expansions={} refuted={} ill-typed={} closings={} verified={} (failed {}) terms={}",
            self.popped,
            self.expansions,
            self.refuted,
            self.ill_typed,
            self.closings,
            self.verified,
            self.verify_failures,
            self.enumerated_terms
        )
    }
}

/// Outcome of a timed synthesis attempt, as recorded by the harness.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Problem name.
    pub name: String,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Whether a program was found.
    pub solved: bool,
    /// Cost of the found program (0 when unsolved).
    pub cost: u32,
    /// Size (AST nodes) of the found program's body (0 when unsolved).
    pub size: usize,
    /// The found program, rendered (empty when unsolved).
    pub program: String,
    /// Number of examples used.
    pub examples: usize,
    /// Search counters.
    pub stats: Stats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = Stats {
            popped: 1,
            expansions: 2,
            refuted: 3,
            ill_typed: 4,
            closings: 5,
            verified: 6,
            verify_failures: 7,
            enumerated_terms: 8,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.popped, 2);
        assert_eq!(a.enumerated_terms, 16);
    }

    #[test]
    fn display_mentions_every_counter() {
        let s = Stats::default().to_string();
        for key in ["popped", "expansions", "refuted", "closings", "verified", "terms"] {
            assert!(s.contains(key), "missing {key} in `{s}`");
        }
    }
}
