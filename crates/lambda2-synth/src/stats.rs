//! Search statistics, reported with every synthesis result and consumed by
//! the experiment harness.

use std::fmt;
use std::time::Duration;

use crate::obs::json::Json;
use crate::obs::metrics::SearchMetrics;
use crate::obs::{PhaseTimes, SCHEMA_VERSION};

/// Counters describing one synthesis run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Queue items popped.
    pub popped: u64,
    /// Hypotheses created by combinator expansion.
    pub expansions: u64,
    /// Combinator expansions refuted by deduction.
    pub refuted: u64,
    /// Combinator expansions refuted by the abstract-interpretation
    /// pre-pass ([`crate::analyze`]) before deduction ran, in an
    /// *attribution-tier* domain — deduction would have refuted too.
    /// Disjoint from `refuted`: each hypothesis is counted in exactly one
    /// of the two.
    pub static_refutations: u64,
    /// Combinator expansions refuted by a *pruning-tier* domain
    /// (`SearchOptions::static_prune`) — hypotheses deduction would have
    /// kept, so each one is search work genuinely removed. Disjoint from
    /// both `refuted` and `static_refutations`.
    pub pruned_refutations: u64,
    /// Combinator expansions rejected by typing.
    pub ill_typed: u64,
    /// Hole closings attempted (terms that matched a hole's spec).
    pub closings: u64,
    /// Complete candidate programs verified against the examples.
    pub verified: u64,
    /// Complete candidates that failed verification.
    pub verify_failures: u64,
    /// Terms materialized across all enumeration stores — a monotone
    /// *work* counter accumulated at insertion time, so terms built,
    /// evicted by the LRU sweep, and rebuilt on demand count every time
    /// they are materialized (and never vanish from the stat).
    pub enumerated_terms: u64,
    /// Enumeration-store cache hits (an existing store was reused).
    pub store_hits: u64,
    /// Stores seeded from a cross-search [`WarmStores`] cache instead of
    /// built cold — enumeration work amortized from earlier requests.
    /// Always 0 outside [`search_governed_warm`].
    ///
    /// [`WarmStores`]: crate::enumerate::WarmStores
    /// [`search_governed_warm`]: crate::search::search_governed_warm
    pub warm_hits: u64,
    /// Enumeration stores evicted by the LRU byte-budget sweep.
    pub store_evictions: u64,
    /// Panics caught and isolated at governed sites (candidate skipped).
    pub faults: u64,
    /// Wall-time spent per search phase.
    pub phases: PhaseTimes,
    /// Distribution instruments (queue depth, pop cost, phase-episode
    /// latencies, store occupancy, …). Empty when `SearchOptions::metrics`
    /// is off; never influences the search.
    pub metrics: SearchMetrics,
}

impl Stats {
    /// Merges another run's counters into this one (used when aggregating
    /// over a benchmark suite).
    pub fn merge(&mut self, other: &Stats) {
        self.popped += other.popped;
        self.expansions += other.expansions;
        self.refuted += other.refuted;
        self.static_refutations += other.static_refutations;
        self.pruned_refutations += other.pruned_refutations;
        self.ill_typed += other.ill_typed;
        self.closings += other.closings;
        self.verified += other.verified;
        self.verify_failures += other.verify_failures;
        self.enumerated_terms += other.enumerated_terms;
        self.store_hits += other.store_hits;
        self.warm_hits += other.warm_hits;
        self.store_evictions += other.store_evictions;
        self.faults += other.faults;
        self.phases.merge(&other.phases);
        self.metrics.merge(&other.metrics);
    }

    /// Serializes the counters (including phase timings) as a JSON object.
    /// Histogram metrics are included under `"metrics"` only when at least
    /// one instrument recorded something, so metrics-off runs serialize
    /// exactly as before.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj([
            ("popped", self.popped.into()),
            ("expansions", self.expansions.into()),
            ("refuted", self.refuted.into()),
            ("static_refutations", self.static_refutations.into()),
            ("pruned_refutations", self.pruned_refutations.into()),
            ("ill_typed", self.ill_typed.into()),
            ("closings", self.closings.into()),
            ("verified", self.verified.into()),
            ("verify_failures", self.verify_failures.into()),
            ("enumerated_terms", self.enumerated_terms.into()),
            ("store_hits", self.store_hits.into()),
            ("warm_hits", self.warm_hits.into()),
            ("store_evictions", self.store_evictions.into()),
            ("faults", self.faults.into()),
            ("phases", self.phases.to_json()),
        ]);
        if !self.metrics.is_empty() {
            if let Json::Obj(pairs) = &mut j {
                pairs.push(("metrics".to_owned(), self.metrics.to_json()));
            }
        }
        j
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "popped={} expansions={} refuted={} static-refuted={} pruned={} ill-typed={} \
             closings={} verified={} (failed {}) terms={} store-hits={} store-evictions={} \
             faults={}",
            self.popped,
            self.expansions,
            self.refuted,
            self.static_refutations,
            self.pruned_refutations,
            self.ill_typed,
            self.closings,
            self.verified,
            self.verify_failures,
            self.enumerated_terms,
            self.store_hits,
            self.store_evictions,
            self.faults
        )
    }
}

/// Outcome of a timed synthesis attempt, as recorded by the harness.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Problem name.
    pub name: String,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Whether a program was found.
    pub solved: bool,
    /// Cost of the found program (0 when unsolved).
    pub cost: u32,
    /// Size (AST nodes) of the found program's body (0 when unsolved).
    pub size: usize,
    /// The found program, rendered (empty when unsolved).
    pub program: String,
    /// Number of examples used.
    pub examples: usize,
    /// Search counters.
    pub stats: Stats,
    /// The terminal error, rendered (`None` when solved). Distinguishes a
    /// timeout from an exhausted space from a crashed per-problem run in
    /// batch output.
    pub error: Option<String>,
}

impl Measurement {
    /// The run's per-phase wall times (carried inside [`Stats`]).
    pub fn phases(&self) -> &PhaseTimes {
        &self.stats.phases
    }

    /// Serializes the measurement as a JSON object — the record format of
    /// `BENCH_*.json` files and of `l2 --stats-json`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("v", SCHEMA_VERSION.into()),
            ("name", self.name.as_str().into()),
            ("solved", self.solved.into()),
            ("elapsed_ms", Json::Float(self.elapsed.as_secs_f64() * 1e3)),
            ("cost", self.cost.into()),
            ("size", self.size.into()),
            ("program", self.program.as_str().into()),
            ("examples", self.examples.into()),
            (
                "error",
                match &self.error {
                    Some(e) => e.as_str().into(),
                    None => Json::Null,
                },
            ),
            ("stats", self.stats.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::json;

    fn ones() -> Stats {
        Stats {
            popped: 1,
            expansions: 2,
            refuted: 3,
            static_refutations: 12,
            pruned_refutations: 14,
            ill_typed: 4,
            closings: 5,
            verified: 6,
            verify_failures: 7,
            enumerated_terms: 8,
            store_hits: 9,
            warm_hits: 13,
            store_evictions: 10,
            faults: 11,
            phases: PhaseTimes {
                deduce: Duration::from_millis(1),
                enumerate: Duration::from_millis(2),
                expand: Duration::from_millis(3),
                verify: Duration::from_millis(4),
            },
            metrics: SearchMetrics::new(),
        }
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = ones();
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.popped, 2);
        assert_eq!(a.enumerated_terms, 16);
        assert_eq!(a.store_hits, 18);
        assert_eq!(a.store_evictions, 20);
        assert_eq!(a.faults, 22);
        assert_eq!(a.static_refutations, 24);
        assert_eq!(a.pruned_refutations, 28);
        assert_eq!(a.phases.total(), Duration::from_millis(20));
    }

    #[test]
    fn display_mentions_every_counter() {
        let s = Stats::default().to_string();
        for key in [
            "popped",
            "expansions",
            "refuted",
            "static-refuted",
            "pruned",
            "closings",
            "verified",
            "terms",
            "store-hits",
            "store-evictions",
            "faults",
        ] {
            assert!(s.contains(key), "missing {key} in `{s}`");
        }
    }

    #[test]
    fn stats_json_includes_every_counter_and_phases() {
        let j = ones().to_json();
        for key in [
            "popped",
            "expansions",
            "refuted",
            "static_refutations",
            "pruned_refutations",
            "ill_typed",
            "closings",
            "verified",
            "verify_failures",
            "enumerated_terms",
            "store_hits",
            "store_evictions",
            "faults",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        let phases = j.get("phases").unwrap();
        assert_eq!(phases.get("expand_ms").unwrap().as_f64(), Some(3.0));
        // Empty metrics are omitted entirely...
        assert_eq!(j.get("metrics"), None);
        // ...and appear once any instrument has data.
        let mut s = ones();
        s.metrics.queue_depth.record(5);
        let j2 = s.to_json();
        let qd = j2.get("metrics").unwrap().get("queue_depth").unwrap();
        assert_eq!(qd.get("count").unwrap().as_i64(), Some(1));
        // And the rendering is parseable.
        assert_eq!(json::parse(&j.to_string()).unwrap(), j);
        assert_eq!(json::parse(&j2.to_string()).unwrap(), j2);
    }

    #[test]
    fn measurement_json_schema() {
        let m = Measurement {
            name: "evens".into(),
            elapsed: Duration::from_millis(12),
            solved: true,
            cost: 7,
            size: 9,
            program: "(lambda (l) l)".into(),
            examples: 3,
            stats: ones(),
            error: None,
        };
        let j = m.to_json();
        assert_eq!(j.get("v").unwrap().as_u64(), Some(SCHEMA_VERSION));
        assert_eq!(j.get("name").unwrap().as_str(), Some("evens"));
        assert_eq!(j.get("error"), Some(&Json::Null));
        assert_eq!(j.get("elapsed_ms").unwrap().as_f64(), Some(12.0));
        assert_eq!(
            j.get("stats").unwrap().get("store_hits").unwrap().as_i64(),
            Some(9)
        );
        assert_eq!(m.phases().verify, Duration::from_millis(4));
        assert_eq!(json::parse(&j.to_string()).unwrap(), j);
    }
}
