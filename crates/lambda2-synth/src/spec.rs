//! Example specifications.
//!
//! A [`Spec`] is the semantic annotation on a hole: a set of rows, each
//! pairing an environment (values for every variable in scope at the hole)
//! with the output the hole's eventual expression must produce there.
//!
//! The root hole's spec is exactly the user's input-output examples;
//! deeper specs are *deduced* by the combinator rules. A spec is kept
//! *functionally consistent* by construction: two rows with identical
//! environments and different outputs would be unrealizable, so building
//! such a spec fails — this failure is precisely how deduction refutes a
//! hypothesis.

use std::collections::HashMap;
use std::fmt;

use lambda2_lang::env::Env;
use lambda2_lang::symbol::Symbol;
use lambda2_lang::value::Value;

/// One input-output example row: produce `output` under `env`.
#[derive(Clone, Debug)]
pub struct ExampleRow {
    /// Bindings for every variable in scope.
    pub env: Env,
    /// Required output of the hole under `env`.
    pub output: Value,
}

impl ExampleRow {
    /// Creates a row.
    pub fn new(env: Env, output: Value) -> ExampleRow {
        ExampleRow { env, output }
    }
}

/// Error signalling that a set of rows is not a function: two identical
/// environments demand different outputs.
#[derive(Clone, Debug)]
pub struct Inconsistent {
    /// The two conflicting outputs.
    pub first: Value,
    /// See [`Inconsistent::first`].
    pub second: Value,
}

impl fmt::Display for Inconsistent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "inconsistent examples: same inputs require `{}` and `{}`",
            self.first, self.second
        )
    }
}

impl std::error::Error for Inconsistent {}

/// A functionally consistent, duplicate-free set of example rows.
#[derive(Clone, Debug, Default)]
pub struct Spec {
    rows: Vec<ExampleRow>,
}

impl Spec {
    /// The empty spec (no constraints). Holes with empty specs can only be
    /// pruned by types and final verification.
    pub fn empty() -> Spec {
        Spec::default()
    }

    /// Builds a spec from rows, deduplicating identical rows.
    ///
    /// # Errors
    ///
    /// Returns [`Inconsistent`] if two rows have equal environments but
    /// different outputs. Deduction rules treat this as a refutation.
    pub fn new(rows: impl IntoIterator<Item = ExampleRow>) -> Result<Spec, Inconsistent> {
        let mut seen: HashMap<Vec<(Symbol, Value)>, usize> = HashMap::new();
        let mut out = Vec::new();
        for row in rows {
            let key = row.env.fingerprint();
            match seen.get(&key) {
                Some(&i) => {
                    let existing: &ExampleRow = &out[i];
                    if existing.output != row.output {
                        return Err(Inconsistent {
                            first: existing.output.clone(),
                            second: row.output,
                        });
                    }
                }
                None => {
                    seen.insert(key, out.len());
                    out.push(row);
                }
            }
        }
        Ok(Spec { rows: out })
    }

    /// The rows, in insertion order (deterministic).
    pub fn rows(&self) -> &[ExampleRow] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the spec has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The row environments, in order. This is the observational-equivalence
    /// context used by the enumerator.
    pub fn envs(&self) -> impl Iterator<Item = &Env> {
        self.rows.iter().map(|r| &r.env)
    }
}

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} example row(s):", self.rows.len())?;
        for r in &self.rows {
            let mut binds: Vec<String> = r
                .env
                .bindings()
                .iter()
                .map(|(s, v)| format!("{s}={v}"))
                .collect();
            binds.reverse(); // outermost first reads better
            writeln!(f, "  {{{}}} -> {}", binds.join(", "), r.output)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn row(bind: &[(&str, i64)], out: i64) -> ExampleRow {
        let env = Env::from_bindings(bind.iter().map(|(s, v)| (sym(s), Value::Int(*v))));
        ExampleRow::new(env, Value::Int(out))
    }

    #[test]
    fn consistent_rows_build_a_spec() {
        let s = Spec::new(vec![row(&[("x", 1)], 2), row(&[("x", 2)], 3)]).unwrap();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn duplicate_rows_are_merged() {
        let s = Spec::new(vec![row(&[("x", 1)], 2), row(&[("x", 1)], 2)]).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn conflicting_rows_are_rejected() {
        let err = Spec::new(vec![row(&[("x", 1)], 2), row(&[("x", 1)], 3)]).unwrap_err();
        assert_eq!(err.first, Value::Int(2));
        assert_eq!(err.second, Value::Int(3));
    }

    #[test]
    fn conflict_detection_ignores_binding_order() {
        let a = ExampleRow::new(
            Env::empty()
                .bind(sym("x"), Value::Int(1))
                .bind(sym("y"), Value::Int(2)),
            Value::Int(0),
        );
        let b = ExampleRow::new(
            Env::empty()
                .bind(sym("y"), Value::Int(2))
                .bind(sym("x"), Value::Int(1)),
            Value::Int(9),
        );
        assert!(Spec::new(vec![a, b]).is_err());
    }

    #[test]
    fn empty_spec() {
        let s = Spec::empty();
        assert!(s.is_empty());
        assert_eq!(s.envs().count(), 0);
    }

    #[test]
    fn display_shows_rows() {
        let s = Spec::new(vec![row(&[("x", 1)], 2)]).unwrap();
        let shown = s.to_string();
        assert!(shown.contains("x=1"));
        assert!(shown.contains("-> 2"));
    }
}
