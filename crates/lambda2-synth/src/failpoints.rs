//! Fail-point injection (feature `failpoints`).
//!
//! A *fail point* is a named site in the engine where a test can inject a
//! fault: a panic, forced eval-fuel exhaustion, a deadline expiring
//! mid-phase, or a forced store eviction. The facility is compiled to
//! nothing unless the `failpoints` cargo feature is enabled — with the
//! feature off, [`check`] is a `const` `None` that the optimizer deletes.
//!
//! # Sites
//!
//! | site                | honored actions                  |
//! |---------------------|----------------------------------|
//! | `search.pop`        | `ExpireDeadline`                 |
//! | `verify.candidate`  | `Panic`, `ExhaustFuel`           |
//! | `deduce.plan`       | `Panic`                          |
//! | `enumerate.level`   | `ExpireDeadline`                 |
//! | `store.evict`       | `EvictStores`                    |
//! | `serve.request`     | `Panic`                          |
//! | `par.worker`        | `Delay`                          |
//!
//! Arming a site with an action it does not honor is a no-op (the site
//! consumes the trigger but injects nothing). `serve.request` sits in
//! the serve daemon's worker, *inside* its `catch_unwind` but outside
//! the engine's per-candidate isolation — it models an unguarded engine
//! panic, which the deeper sites cannot (the engine absorbs those
//! itself).
//!
//! # Determinism
//!
//! The registry is **thread-local**: tests arming fail points cannot
//! interfere with each other even when the test harness runs them on
//! concurrent threads, and an armed fault always fires at the same
//! (skip, fires)-counted occurrence of its site — runs with identical
//! configurations behave identically.

/// The fault a fail point injects when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailAction {
    /// Panic at the site (exercises the engine's panic isolation).
    Panic,
    /// Run the site's evaluation with zero fuel.
    ExhaustFuel,
    /// Latch the governing budget's deadline as expired.
    ExpireDeadline,
    /// Force an LRU sweep that evicts every other enumeration store.
    EvictStores,
    /// Stagger parallel verification workers' startup (worker *w* sleeps
    /// `2·w` ms before its first steal) to perturb work-stealing order.
    /// The determinism suite arms this to show `--jobs N` results are
    /// schedule-independent. Checked on the coordinating thread (the
    /// registry is thread-local); workers receive the decision.
    Delay,
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::FailAction;
    use std::cell::RefCell;
    use std::collections::HashMap;

    #[derive(Clone, Copy, Debug)]
    struct Config {
        action: FailAction,
        /// Occurrences of the site to let pass before firing.
        skip: u64,
        /// How many times to fire once triggered (then disarm).
        fires: u64,
        /// Total times this site has fired since it was armed.
        hits: u64,
    }

    thread_local! {
        static REGISTRY: RefCell<HashMap<&'static str, Config>> =
            RefCell::new(HashMap::new());
    }

    /// Arms `site` to inject `action` on its next `fires` occurrences.
    pub fn arm(site: &'static str, action: FailAction, fires: u64) {
        arm_after(site, action, 0, fires);
    }

    /// Arms `site` to skip its first `skip` occurrences, then inject
    /// `action` on the following `fires` occurrences.
    pub fn arm_after(site: &'static str, action: FailAction, skip: u64, fires: u64) {
        REGISTRY.with(|r| {
            r.borrow_mut().insert(
                site,
                Config {
                    action,
                    skip,
                    fires,
                    hits: 0,
                },
            );
        });
    }

    /// Disarms one site.
    pub fn disarm(site: &str) {
        REGISTRY.with(|r| {
            r.borrow_mut().remove(site);
        });
    }

    /// Disarms every site (call between tests).
    pub fn reset() {
        REGISTRY.with(|r| r.borrow_mut().clear());
    }

    /// Times `site` has fired since it was armed (0 when unarmed).
    pub fn hits(site: &str) -> u64 {
        REGISTRY.with(|r| r.borrow().get(site).map_or(0, |c| c.hits))
    }

    /// Called by the engine at each named site: returns the action to
    /// inject now, if any, advancing the skip/fire counters.
    pub fn check(site: &str) -> Option<FailAction> {
        REGISTRY.with(|r| {
            let mut reg = r.borrow_mut();
            let config = reg.get_mut(site)?;
            if config.skip > 0 {
                config.skip -= 1;
                return None;
            }
            if config.fires == 0 {
                return None;
            }
            config.fires -= 1;
            config.hits += 1;
            Some(config.action)
        })
    }

    /// An RAII guard that disarms a site when dropped — keeps tests from
    /// leaking armed fail points into each other on panic.
    pub struct FailGuard {
        site: &'static str,
    }

    impl FailGuard {
        /// Arms `site` and returns a guard that disarms it on drop.
        pub fn arm(site: &'static str, action: FailAction, fires: u64) -> FailGuard {
            arm(site, action, fires);
            FailGuard { site }
        }

        /// Like [`FailGuard::arm`] with a leading skip count.
        pub fn arm_after(
            site: &'static str,
            action: FailAction,
            skip: u64,
            fires: u64,
        ) -> FailGuard {
            arm_after(site, action, skip, fires);
            FailGuard { site }
        }

        /// Times the guarded site has fired so far.
        pub fn hits(&self) -> u64 {
            hits(self.site)
        }
    }

    impl Drop for FailGuard {
        fn drop(&mut self) {
            disarm(self.site);
        }
    }
}

#[cfg(feature = "failpoints")]
pub use imp::{arm, arm_after, check, disarm, hits, reset, FailGuard};

/// With the feature off, every site check is statically `None` and the
/// call sites compile away.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn check(_site: &str) -> Option<FailAction> {
    None
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_inject_nothing() {
        reset();
        assert_eq!(check("verify.candidate"), None);
        assert_eq!(hits("verify.candidate"), 0);
    }

    #[test]
    fn fires_count_down_then_disarm() {
        reset();
        arm("t.site", FailAction::Panic, 2);
        assert_eq!(check("t.site"), Some(FailAction::Panic));
        assert_eq!(check("t.site"), Some(FailAction::Panic));
        assert_eq!(check("t.site"), None);
        assert_eq!(hits("t.site"), 2);
        disarm("t.site");
    }

    #[test]
    fn skip_delays_the_trigger() {
        reset();
        arm_after("t.skip", FailAction::ExhaustFuel, 2, 1);
        assert_eq!(check("t.skip"), None);
        assert_eq!(check("t.skip"), None);
        assert_eq!(check("t.skip"), Some(FailAction::ExhaustFuel));
        assert_eq!(check("t.skip"), None);
        disarm("t.skip");
    }

    #[test]
    fn guard_disarms_on_drop() {
        reset();
        {
            let g = FailGuard::arm("t.guard", FailAction::EvictStores, 10);
            assert_eq!(check("t.guard"), Some(FailAction::EvictStores));
            assert_eq!(g.hits(), 1);
        }
        assert_eq!(check("t.guard"), None);
    }
}

#[cfg(all(test, not(feature = "failpoints")))]
mod tests {
    use super::*;

    #[test]
    fn disabled_facility_is_inert() {
        assert_eq!(check("verify.candidate"), None);
    }
}
