//! Best-first enumerative search over hypotheses.
//!
//! The queue holds two kinds of work, both priced with the admissible cost
//! bound from [`crate::hypothesis`]:
//!
//! * **hypotheses** — when popped, a complete hypothesis is verified against
//!   the original examples (first success is the minimal-cost answer);
//!   an open hypothesis spawns (a) combinator expansions of its leftmost
//!   hole for every combinator × collection candidate, pruned and annotated
//!   by deduction, and (b) a *closing stream* for the same hole;
//! * **closing streams** — `(hypothesis, hole, tier)` items that lazily
//!   materialize the enumerator's terms of exactly cost `tier` which
//!   satisfy the hole's spec, then reschedule themselves at `tier + 1`.
//!   This keeps enumeration interleaved with expansion in strict cost
//!   order without ever building a level eagerly ahead of need.
//!
//! Work is shared aggressively across hypotheses: enumeration stores are
//! cached by [`StoreKey`] (same scope + same example environments ⇒ same
//! term universe), and combinator expansions are *planned once per hole
//! context* ([`crate::expand::Template`]) — thousands of sibling
//! hypotheses holding the same open hole reuse the same deduction results.
//!
//! The search runs under a cooperative resource [`Budget`]
//! ([`crate::govern`]): deadlines, cancellation, pop caps, and cumulative
//! eval fuel are all checked *inside* the long phases (enumeration levels,
//! planning sweeps, verification), not just at pop boundaries, so aborts
//! land within [`SearchOptions::max_overshoot`]. Verification and planning
//! are panic-isolated — a crashing candidate is counted, traced, and
//! skipped. [`search_governed`] returns a structured [`SearchReport`] on
//! every path; [`search`]/[`search_traced`] are thin `Result` wrappers.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lambda2_lang::ast::{Comb, Expr, HoleId};
use lambda2_lang::env::Env;
use lambda2_lang::ty::Type;

use crate::analyze::{AbsArgs, AbsCache, TermAbs};
use crate::cost::CostModel;
use crate::enumerate::{canonical, EnumLimits, StoreKey, TermStore, WarmCache};
use crate::expand::{
    plan_constructors, plan_expansion_within, Candidate, ConsTemplate, ExpandFail, Template,
};
use crate::failpoints::{self, FailAction};
use crate::govern::{
    panic_message, Budget, BudgetExceeded, FrontierItem, SearchReport, DEFAULT_MAX_OVERSHOOT,
};
use crate::hypothesis::{HoleInfo, Hypothesis};
use crate::library::Library;
use crate::obs::metrics::Histogram;
use crate::obs::{NoopTracer, PopKind, RefuteReason, StoreAction, TraceEvent, Tracer};
use crate::problem::Problem;
use crate::spec::{ExampleRow, Spec};
use crate::stats::Stats;
use crate::verify::Program;

/// Tunables for the search. The defaults reproduce the paper's
/// configuration; the ablation experiments toggle [`SearchOptions::deduction`].
#[derive(Clone, Debug)]
pub struct SearchOptions {
    /// Enable deduction (refutation + example propagation). Disabling this
    /// is the paper's "λ² without deduction" ablation.
    pub deduction: bool,
    /// Enable the abstract-interpretation pre-pass ([`crate::analyze`])
    /// that refutes combinator expansions before deduction runs. The
    /// analyzer's checks are strictly weaker than deduction's, so toggling
    /// this never changes the synthesized program or its cost — only which
    /// counter ([`Stats::static_refutations`] vs [`Stats::refuted`])
    /// attributes each refutation. Ignored when `deduction` is off.
    ///
    /// [`Stats::static_refutations`]: crate::stats::Stats::static_refutations
    /// [`Stats::refuted`]: crate::stats::Stats::refuted
    pub static_analysis: bool,
    /// Additionally run the analyzer's *pruning-tier* domains
    /// (cardinality), which refute hypotheses deduction would keep and so
    /// remove real search work. Sound: pruned hypotheses provably have no
    /// completion, so the synthesized program and its cost are identical
    /// on/off while `enumerated_terms` only drops (held to by the
    /// differential suite in `tests/static_analysis.rs`). Pruned
    /// refutations are counted in [`Stats::pruned_refutations`] and
    /// re-proved by a brute-force oracle under `check-invariants`.
    /// Ignored when `static_analysis` or `deduction` is off.
    ///
    /// [`Stats::pruned_refutations`]: crate::stats::Stats::pruned_refutations
    pub static_prune: bool,
    /// Maximum cost of an enumerated closing term per hole.
    pub max_term_cost: u32,
    /// Maximum closing-term cost for *blind* holes (holes with an empty
    /// spec, where observational equivalence cannot prune). Keeping this
    /// lower than [`SearchOptions::max_term_cost`] prevents structural
    /// blow-up on fold initial-value holes and in the no-deduction
    /// ablation.
    pub max_term_cost_blind: u32,
    /// Maximum cost of a collection argument in a combinator expansion.
    /// The default (1) admits exactly the variables in scope, matching the
    /// paper's hypothesis grammar — fold chain-deduction only works on
    /// variable collections anyway. Raise to admit projections like
    /// `(cdr l)` at a significant search-space cost.
    pub max_collection_cost: u32,
    /// Maximum cost of a fold's concrete initial-value candidate when the
    /// hole's rows contain empty-collection examples (which pin the value
    /// and prune aggressively).
    pub max_init_cost: u32,
    /// Maximum init-candidate cost when *no* empty-collection row
    /// constrains the value — every typed term qualifies, so the budget
    /// must stay small.
    pub max_free_init_cost: u32,
    /// Global cost ceiling: hypotheses above this are abandoned.
    pub max_cost: u32,
    /// Wall-clock budget; `None` searches until exhaustion.
    pub timeout: Option<Duration>,
    /// Bound on how far past [`SearchOptions::timeout`] the search may run
    /// before it notices and returns. The governing [`Budget`] adapts its
    /// clock-poll stride to keep the gap between polls a fraction of this;
    /// smaller bounds poll more often. The default (100ms) keeps polling
    /// cost unmeasurable while bounding overshoot tightly.
    pub max_overshoot: Duration,
    /// Hard cap on popped queue items (guards unattended runs).
    pub max_popped: u64,
    /// Evaluation fuel for verification runs (per candidate).
    pub eval_fuel: u64,
    /// Cumulative cap on evaluation fuel consumed by verification across
    /// the whole search (`u64::MAX` = unlimited). Bounds total eval work
    /// independently of wall-clock on candidate sets that are cheap to
    /// generate but expensive to run.
    pub max_total_fuel: u64,
    /// After a resource-bounded failure (timeout, pop cap, fuel cap),
    /// retry with degraded options and finally the baseline enumerator.
    /// Read by `Synthesizer::synthesize_report` — the core search loop
    /// itself never retries.
    pub retry_ladder: bool,
    /// Limits for the enumeration stores.
    pub enum_limits: EnumLimits,
    /// Global cap on the approximate heap bytes held across all
    /// enumeration stores; exceeding it evicts least-recently-used stores
    /// (they are deterministic caches and rebuild on demand). Bounds
    /// memory on hard problems.
    pub max_store_bytes: usize,
    /// Expand holes with invertible-constructor hypotheses
    /// (`(cons ◻ ◻)`, `(pair ◻ ◻)`, `(tree ◻ ◻)`) whose component holes
    /// get exact deduced specs. Extends the paper's hypothesis grammar —
    /// enabling combinator-under-constructor programs like
    /// `(cons (foldl …) l)` — at a measurable search-space cost, so it is
    /// off by default (matching the paper) and opted into per problem.
    pub constructor_hypotheses: bool,
    /// Use deduction-emitted trace probes in the enumerator's dedup
    /// signatures (ablation knob; see `enumerate`). On by default — the
    /// nested benchmarks rely on them.
    pub trace_probes: bool,
    /// Expand holes with *empty* deduced specs using combinators. Off by
    /// default: a hole deduction could say nothing about gives nested
    /// combinators no guidance, and such hypotheses are overwhelmingly
    /// junk — every known suite solution carries deduced rows at every
    /// level. Enable to restore the unrestricted hypothesis grammar.
    /// (Ignored when deduction is disabled: the ablation must still form
    /// hypotheses.)
    pub expand_blind_holes: bool,
    /// Record distribution metrics ([`Stats::metrics`]) — queue depth, pop
    /// cost, per-episode phase latency, store occupancy. On by default:
    /// recording is a handful of integer adds per observation and by
    /// construction feeds nothing back into the search, so the synthesized
    /// program, its cost, and every counter are identical on/off (held to
    /// by a differential test).
    ///
    /// [`Stats::metrics`]: crate::stats::Stats::metrics
    pub metrics: bool,
    /// Worker threads for *within-problem* parallelism (1 = fully
    /// sequential, the default). With `jobs > 1` the search drains runs
    /// of equal-cost entries from the head of the priority queue and
    /// verifies the complete candidates among them on up to `jobs`
    /// threads stealing from a shared index; every verdict is applied
    /// back on the coordinating thread in deterministic `(cost, seq)`
    /// order. Enumeration, deduction planning, and store management stay
    /// on the coordinating thread. The synthesized program, its cost,
    /// every counter, and the trace are byte-identical to a sequential
    /// run (wall-clock phase histograms excepted — they measure real
    /// time); only speed changes.
    pub jobs: usize,
    /// Emit periodic [`TraceEvent::Progress`] heartbeats into the tracer,
    /// riding the governing budget's adaptive poll cadence (at most one
    /// per [`crate::govern::HEARTBEAT_INTERVAL`], so overhead is bounded
    /// regardless of search speed). Off by default: heartbeat count and
    /// content are wall-clock driven, so they would make otherwise
    /// deterministic traces volatile under `l2 profile diff`. Purely
    /// observational — the same differential test that covers `metrics`
    /// proves toggling this changes no program, cost, or counter.
    pub progress: bool,
}

impl Default for SearchOptions {
    fn default() -> SearchOptions {
        SearchOptions {
            deduction: true,
            static_analysis: true,
            static_prune: true,
            max_term_cost: 12,
            max_term_cost_blind: 6,
            max_collection_cost: 1,
            max_init_cost: 5,
            max_free_init_cost: 2,
            max_cost: 28,
            timeout: Some(Duration::from_secs(20)),
            max_overshoot: DEFAULT_MAX_OVERSHOOT,
            max_popped: 20_000_000,
            eval_fuel: 50_000,
            max_total_fuel: u64::MAX,
            retry_ladder: false,
            enum_limits: EnumLimits::default(),
            max_store_bytes: 3_000_000_000,
            constructor_hypotheses: false,
            trace_probes: true,
            expand_blind_holes: false,
            jobs: 1,
            metrics: true,
            progress: false,
        }
    }
}

impl SearchOptions {
    /// The degraded-caps configuration used by the retry ladder's second
    /// rung and the portfolio racer's second lane: tightened term-cost and
    /// global caps — the same engine on a much smaller space, completing
    /// quickly when the answer is simple and the full configuration
    /// drowned in a deep space. Shared so sequential retry and concurrent
    /// portfolio race *identical* configurations.
    pub fn degraded(&self) -> SearchOptions {
        SearchOptions {
            max_term_cost: self.max_term_cost.min(8),
            max_term_cost_blind: self.max_term_cost_blind.min(4),
            max_cost: self.max_cost.min(20),
            retry_ladder: false,
            ..self.clone()
        }
    }
}

/// Folds one timed phase episode into the scalar phase total and, when
/// metrics are on, the phase's per-episode latency histogram.
#[inline]
fn note_phase(total: &mut Duration, hist: &mut Histogram, metrics: bool, d: Duration) {
    *total += d;
    if metrics {
        hist.record(d.as_micros().min(u64::MAX as u128) as u64);
    }
}

/// Why synthesis failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthError {
    /// The user's examples are contradictory.
    InconsistentExamples,
    /// The wall-clock budget was exhausted.
    Timeout,
    /// The whole (cost-bounded) space was searched without a fit.
    Exhausted,
    /// The popped-item cap was reached.
    LimitReached,
    /// Cancelled cooperatively via a [`crate::govern::CancelToken`].
    Cancelled,
    /// The cumulative evaluation-fuel cap
    /// ([`SearchOptions::max_total_fuel`]) was exhausted.
    FuelExhausted,
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::InconsistentExamples => {
                write!(
                    f,
                    "examples are inconsistent (same inputs, different outputs)"
                )
            }
            SynthError::Timeout => write!(f, "synthesis timed out"),
            SynthError::Exhausted => {
                write!(f, "no program within the cost bounds fits the examples")
            }
            SynthError::LimitReached => write!(f, "search node limit reached"),
            SynthError::Cancelled => write!(f, "synthesis was cancelled"),
            SynthError::FuelExhausted => write!(f, "evaluation fuel budget exhausted"),
        }
    }
}

impl SynthError {
    /// `true` for failures caused by a *resource* limit (timeout, pop cap,
    /// fuel cap) — the errors a degraded retry or a portfolio rung can
    /// plausibly fix. Exhaustion and inconsistent examples are semantic
    /// verdicts no retry can change.
    pub fn is_resource_limit(&self) -> bool {
        matches!(
            self,
            SynthError::Timeout | SynthError::LimitReached | SynthError::FuelExhausted
        )
    }
}

impl std::error::Error for SynthError {}

/// A successful synthesis.
#[derive(Clone, Debug)]
pub struct Synthesis {
    /// The minimal-cost program fitting all examples.
    pub program: Program,
    /// Its cost under the problem's cost model.
    pub cost: u32,
    /// Search counters.
    pub stats: Stats,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// One planned expansion of either flavor, for the Apply stream.
enum Planned {
    Comb(Template),
    Cons(ConsTemplate),
}

impl Planned {
    fn delta_cost(&self) -> u32 {
        match self {
            Planned::Comb(t) => t.delta_cost,
            Planned::Cons(t) => t.delta_cost,
        }
    }

    fn instantiate(
        &self,
        hyp: &Hypothesis,
        hole: lambda2_lang::ast::HoleId,
        costs: &CostModel,
        next_hole: &mut lambda2_lang::ast::HoleId,
    ) -> Hypothesis {
        match self {
            Planned::Comb(t) => t.instantiate(hyp, hole, costs, next_hole),
            Planned::Cons(t) => t.instantiate(hyp, hole, costs, next_hole),
        }
    }
}

enum Kind {
    Hyp(Hypothesis),
    /// A lazy stream over a hole's planned expansions (sorted by cost):
    /// popping instantiates template `index` and reschedules `index + 1`.
    /// Instantiation (hole-id minting + spine rebuild) is deferred until a
    /// child is actually due — most never are.
    Apply {
        hyp: Hypothesis,
        hole: HoleId,
        templates: Arc<Vec<Planned>>,
        index: usize,
    },
    Close {
        hyp: Hypothesis,
        hole: HoleId,
        tier: u32,
    },
}

struct Entry {
    cost: u32,
    seq: u64,
    kind: Kind,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Entry) -> bool {
        self.cost == other.cost && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Entry) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Entry) -> Ordering {
        // BinaryHeap is a max-heap; invert so the cheapest pops first,
        // FIFO within equal costs for determinism.
        other
            .cost
            .cmp(&self.cost)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Runs best-first synthesis on `problem`.
///
/// # Errors
///
/// See [`SynthError`].
pub fn search(problem: &Problem, options: &SearchOptions) -> Result<Synthesis, SynthError> {
    search_traced(problem, options, &mut NoopTracer)
}

/// [`search`], with telemetry: every pop, plan/refute decision, closing
/// tier, store lifecycle change, verification attempt, and isolated fault
/// is reported to `tracer`. With the default [`NoopTracer`] this is
/// exactly [`search`] — call sites check [`Tracer::enabled`] before
/// rendering event payloads, so a disabled tracer costs nothing.
///
/// # Errors
///
/// See [`SynthError`].
pub fn search_traced(
    problem: &Problem,
    options: &SearchOptions,
    tracer: &mut dyn Tracer,
) -> Result<Synthesis, SynthError> {
    let budget = Budget::for_search(options);
    search_governed(problem, options, &budget, tracer).outcome
}

/// [`search_traced`] under an explicit resource [`Budget`], returning a
/// structured [`SearchReport`] on *every* path — success, exhaustion,
/// timeout, cancellation, resource caps, injected faults.
///
/// This is the engine's primary entry point; [`search`] and
/// [`search_traced`] build a budget from the options and keep only the
/// outcome. Call this directly for anytime results (the best-cost
/// [`FrontierItem`] snapshot), resource accounting, or cooperative
/// cancellation via [`Budget::cancel_token`].
///
/// The budget is ticked inside every long phase — enumeration levels,
/// deduction planning sweeps, closing-tier materialization, and
/// per-candidate verification — so a deadline or cancellation is observed
/// within [`SearchOptions::max_overshoot`] even when a single phase runs
/// long. Verification and planning run under panic isolation: a panicking
/// candidate is counted in [`Stats::faults`], traced as
/// [`TraceEvent::Fault`], and skipped; it never aborts the search.
pub fn search_governed(
    problem: &Problem,
    options: &SearchOptions,
    budget: &Budget,
    tracer: &mut dyn Tracer,
) -> SearchReport {
    search_governed_warm(problem, options, budget, tracer, None)
}

/// [`search_governed`] with an optional cross-search warm store cache.
///
/// When `warm` is provided, the search seeds enumeration stores from the
/// shared [`WarmCache`] (keyed by [`warm_config_fingerprint`] +
/// [`StoreKey`]) instead of building them cold, and parks its live stores
/// back into the cache when it finishes. The cache is mutex-guarded, so a
/// whole worker pool shares one instance (and one byte budget); the lock
/// is held only per take/put, never across search phases. Reuse is
/// semantically transparent: a store's contents are a deterministic
/// function of its key, the library, and the enumeration limits, and
/// every read is bounded by the cost the search asks for — so the
/// synthesized program, its cost, and the attempt ladder are identical
/// warm or cold. Only work counters ([`Stats::enumerated_terms`],
/// [`Stats::warm_hits`]) differ, reflecting the work actually saved.
pub fn search_governed_warm(
    problem: &Problem,
    options: &SearchOptions,
    budget: &Budget,
    tracer: &mut dyn Tracer,
    warm: Option<&WarmCache>,
) -> SearchReport {
    let start = Instant::now();
    let library = problem.library();
    let costs = library.costs().clone();
    let warm_config = warm_config_fingerprint(library, options);
    let mut stats = Stats::default();

    // Root spec: the user's examples, verbatim.
    let rows: Vec<ExampleRow> = problem
        .examples()
        .iter()
        .map(|ex| {
            let mut env = Env::empty();
            for ((sym, _), v) in problem.params().iter().zip(&ex.inputs) {
                env = env.bind(*sym, v.clone());
            }
            ExampleRow::new(env, ex.output.clone())
        })
        .collect();
    let root_spec = match Spec::new(rows) {
        Ok(spec) => spec,
        Err(_) => {
            return SearchReport {
                outcome: Err(SynthError::InconsistentExamples),
                frontier: Vec::new(),
                stats,
                elapsed: start.elapsed(),
                budget: budget.snapshot(),
                attempts: Vec::new(),
            }
        }
    };
    let root_info = HoleInfo::new(
        problem.return_type().clone(),
        problem.params().to_vec(),
        root_spec,
    );

    // Stores carry a last-used tick for LRU eviction under the global
    // term budget.
    let mut stores: HashMap<StoreKey, (TermStore, u64)> = HashMap::new();
    let mut store_tick: u64 = 0;
    let mut templates: HashMap<(StoreKey, Type), Arc<Vec<Planned>>> = HashMap::new();
    // Memoized per-term abstractions for the refutation pre-pass, keyed
    // like the stores whose arenas mint the term ids; a small slice of
    // the term byte budget bounds it.
    let mut abs_cache: AbsCache<StoreKey> = AbsCache::new(options.max_store_bytes / 8);
    let mut queue: BinaryHeap<Entry> = BinaryHeap::new();
    let mut seq: u64 = 0;
    let mut next_hole: HoleId = 1;

    let root = Hypothesis::root(root_info, &costs);
    queue.push(Entry {
        cost: root.cost,
        seq,
        kind: Kind::Hyp(root),
    });

    // Queue admissibility check: best-first popping must see monotonically
    // non-decreasing costs, or the first program found is not minimal.
    #[cfg(feature = "check-invariants")]
    let mut last_popped_cost: u32 = 0;

    let jobs = options.jobs.max(1);
    let outcome: Result<(Program, u32), SynthError> = 'search: {
        while let Some(first) = queue.pop() {
            // Parallel rounds (`jobs > 1`): drain the run of equal-cost
            // entries at the head of the queue and speculatively verify
            // the complete hypotheses among them on worker threads, then
            // process every entry strictly in original `seq` order on
            // this thread, consuming the precomputed verdicts. The round
            // is order-safe: any child an entry pushes carries a strictly
            // larger `seq` than every drained entry, so even a sequential
            // run would pop the whole run before any of their children.
            // All accounting happens at apply time, in apply order, which
            // is what makes `--jobs N` byte-identical to `--jobs 1`.
            let round_cost = first.cost;
            let mut round: VecDeque<Entry> = VecDeque::new();
            round.push_back(first);
            if jobs > 1 {
                while round.len() < ROUND_CAP && queue.peek().is_some_and(|e| e.cost == round_cost)
                {
                    round.push_back(queue.pop().expect("peeked entry exists"));
                }
            }
            let mut preruns: HashMap<u64, PreRun> = HashMap::new();
            if jobs > 1 {
                let complete: Vec<&Entry> = round
                    .iter()
                    .filter(|e| match &e.kind {
                        Kind::Hyp(h) => h.cost <= options.max_cost && h.is_complete(),
                        _ => false,
                    })
                    .collect();
                if complete.len() >= 2 {
                    // Fail-point decisions are taken here, on the
                    // coordinating thread, in seq order — workers only
                    // execute what they are handed.
                    let tasks: Vec<(&Expr, Option<FailAction>)> = complete
                        .iter()
                        .map(|e| match &e.kind {
                            Kind::Hyp(h) => (&h.expr, failpoints::check("verify.candidate")),
                            _ => unreachable!("filtered to hypotheses"),
                        })
                        .collect();
                    let runs = preverify(problem, options.eval_fuel, jobs, &tasks);
                    preruns = complete.iter().map(|e| e.seq).zip(runs).collect();
                }
            }
            let aborted: Option<Result<(Program, u32), SynthError>> = 'round: {
                while let Some(entry) = round.pop_front() {
                    stats.popped += 1;
                    if options.metrics {
                        // Depth after the pop, before this item's children push.
                        // Undrained round entries would still be queued at this
                        // point in a sequential run, so they count as depth.
                        stats
                            .metrics
                            .queue_depth
                            .record_usize(queue.len() + round.len());
                        stats.metrics.pop_cost.record(u64::from(entry.cost));
                    }
                    #[cfg(feature = "check-invariants")]
                    {
                        assert!(
                            entry.cost >= last_popped_cost,
                            "queue admissibility violated: popped cost {} after {}",
                            entry.cost,
                            last_popped_cost
                        );
                        last_popped_cost = entry.cost;
                    }
                    if tracer.enabled() {
                        let (kind, hyp) = match &entry.kind {
                            Kind::Hyp(h) => (PopKind::Hypothesis, h),
                            Kind::Apply { hyp, .. } => (PopKind::Apply, hyp),
                            Kind::Close { hyp, .. } => (PopKind::Close, hyp),
                        };
                        tracer.emit(TraceEvent::Pop {
                            n: stats.popped,
                            kind,
                            cost: entry.cost,
                            holes: hyp.holes().len(),
                            sketch: hyp.expr.to_string(),
                        });
                    }
                    if let Some(FailAction::ExpireDeadline) = failpoints::check("search.pop") {
                        budget.force_expire();
                    }
                    if let Err(e) = budget.note_pop() {
                        break 'round Some(Err(e.to_synth_error()));
                    }
                    // Live-progress heartbeat: consumes the governor's poll-armed
                    // flag, so cadence (and overhead) is bounded by the heartbeat
                    // interval however fast pops are. Observation-only: nothing
                    // here feeds back into the search.
                    if options.progress && budget.take_heartbeat() {
                        tracer.emit(TraceEvent::Progress {
                            budget: budget.snapshot(),
                            queue: queue.len() + round.len(),
                            best_cost: entry.cost,
                            phases: stats.phases,
                        });
                    }
                    if stats.popped % 65_536 == 0
                        && std::env::var_os("LAMBDA2_STORE_DEBUG").is_some()
                    {
                        let rss = std::fs::read_to_string("/proc/self/status")
                            .ok()
                            .and_then(|s| {
                                s.lines()
                                    .find(|l| l.starts_with("VmRSS"))
                                    .map(|l| l.trim().to_owned())
                            })
                            .unwrap_or_default();
                        eprintln!(
                    "[debug] popped {}k queue {} stores {} terms {} ~{}MB templates {} (sum {} max {}) {rss}",
                    stats.popped / 1024,
                    queue.len() + round.len(),
                    stores.len(),
                    stores.values().map(|(s, _)| s.len()).sum::<usize>(),
                    stores.values().map(|(s, _)| s.approx_bytes()).sum::<usize>() / 1_048_576,
                    templates.len(),
                    templates.values().map(|t| t.len()).sum::<usize>(),
                    templates.values().map(|t| t.len()).max().unwrap_or(0),
                );
                    }

                    let entry_cost = entry.cost;
                    let entry_seq = entry.seq;
                    match entry.kind {
                        Kind::Hyp(hyp) => {
                            if hyp.cost > options.max_cost {
                                continue;
                            }
                            if hyp.is_complete() {
                                let verdict = match preruns.remove(&entry_seq) {
                                    Some(pre) => apply_prerun(
                                        pre, hyp.cost, options, budget, &mut stats, tracer,
                                    ),
                                    None => verify_candidate(
                                        problem, &hyp.expr, hyp.cost, options, budget, &mut stats,
                                        tracer,
                                    ),
                                };
                                match verdict {
                                    Verdict::Pass(program) => {
                                        if std::env::var_os("LAMBDA2_STORE_DEBUG").is_some() {
                                            let mut sizes: Vec<usize> =
                                                stores.values().map(|(s, _)| s.len()).collect();
                                            sizes.sort_unstable_by(|a, b| b.cmp(a));
                                            eprintln!(
                                                "[debug] {} stores, sizes top10 {:?}, total {}",
                                                sizes.len(),
                                                &sizes[..sizes.len().min(10)],
                                                sizes.iter().sum::<usize>()
                                            );
                                        }
                                        break 'round Some(Ok((program, hyp.cost)));
                                    }
                                    Verdict::Fail => {
                                        stats.verify_failures += 1;
                                        continue;
                                    }
                                    Verdict::Fault => continue,
                                    Verdict::Budget(e) => {
                                        break 'round Some(Err(e.to_synth_error()))
                                    }
                                }
                            }

                            let (hole, info) = hyp.first_hole().expect("incomplete has a hole");
                            let info = Arc::clone(info);

                            // (a) Closing stream for this hole, starting at the
                            // cheapest term tier.
                            let tier0 = costs.hole_min();
                            seq += 1;
                            queue.push(Entry {
                                cost: hyp.cost - costs.hole_min() + tier0,
                                seq,
                                kind: Kind::Close {
                                    hyp: hyp.clone(),
                                    hole,
                                    tier: tier0,
                                },
                            });

                            // (b) Combinator expansions, via the per-hole-context
                            // template cache. Skip planning entirely when even the
                            // cheapest conceivable template (comb + lambda + two
                            // leaves) cannot fit the global budget — deep holes near
                            // the cost ceiling otherwise pay for stores they never use.
                            let min_comb_cost = library
                                .combs()
                                .iter()
                                .map(|c| costs.comb_cost(*c))
                                .min()
                                .unwrap_or(u32::MAX);
                            let min_delta = min_comb_cost
                                .saturating_add(costs.lambda)
                                .saturating_add(2 * costs.hole_min());
                            if hyp.cost - costs.hole_min() + min_delta > options.max_cost {
                                continue;
                            }
                            if options.deduction
                                && !options.expand_blind_holes
                                && info.spec.is_empty()
                            {
                                // Deduction had nothing to say about this hole;
                                // closings (first-order terms) remain available.
                                continue;
                            }
                            let tkey = (info.store_key.clone(), canonical(&info.ty));
                            let planned = match templates.get(&tkey) {
                                Some(ts) => Arc::clone(ts),
                                None => {
                                    let t_enum = Instant::now();
                                    let store = touch_store(
                                        &mut stores,
                                        &mut store_tick,
                                        &info,
                                        options,
                                        &mut stats,
                                        tracer,
                                        warm,
                                        warm_config,
                                    );
                                    // The collection pool is cheap (cost <= 3); the
                                    // larger init pool is only materialized when some
                                    // collection candidate actually has empty-collection
                                    // rows to constrain it.
                                    let before = store.inserted();
                                    if let Err(e) = store.ensure_within(
                                        options.max_collection_cost,
                                        library,
                                        budget,
                                    ) {
                                        stats.enumerated_terms += store.inserted() - before;
                                        note_phase(
                                            &mut stats.phases.enumerate,
                                            &mut stats.metrics.enumerate_us,
                                            options.metrics,
                                            t_enum.elapsed(),
                                        );
                                        break 'round Some(Err(e.to_synth_error()));
                                    }
                                    let needs_deep_inits = options.deduction
                                        && store
                                            .collections(options.max_collection_cost)
                                            .iter()
                                            .any(|(_, vals)| {
                                                vals.iter().any(|v| match v {
                                                    lambda2_lang::value::Value::List(xs) => {
                                                        xs.is_empty()
                                                    }
                                                    lambda2_lang::value::Value::Tree(t) => {
                                                        t.is_empty()
                                                    }
                                                    _ => false,
                                                })
                                            });
                                    let arg_cost = if needs_deep_inits {
                                        options.max_collection_cost.max(options.max_init_cost)
                                    } else {
                                        options.max_collection_cost.max(options.max_free_init_cost)
                                    };
                                    if let Err(e) = store.ensure_within(arg_cost, library, budget) {
                                        stats.enumerated_terms += store.inserted() - before;
                                        note_phase(
                                            &mut stats.phases.enumerate,
                                            &mut stats.metrics.enumerate_us,
                                            options.metrics,
                                            t_enum.elapsed(),
                                        );
                                        break 'round Some(Err(e.to_synth_error()));
                                    }
                                    stats.enumerated_terms += store.inserted() - before;
                                    let pool: Vec<_> = store
                                        .error_free(arg_cost)
                                        .into_iter()
                                        .map(|(t, vals)| {
                                            (store.expr_of(t), t.ty.clone(), vals, t.cost, t.term)
                                        })
                                        .collect();
                                    note_phase(
                                        &mut stats.phases.enumerate,
                                        &mut stats.metrics.enumerate_us,
                                        options.metrics,
                                        t_enum.elapsed(),
                                    );

                                    let t_deduce = Instant::now();
                                    // The spec's output abstraction is shared by every
                                    // (combinator, candidate) pair of this sweep.
                                    let out_abs = TermAbs::of_outputs(info.spec.rows());
                                    let mut planned = Vec::new();
                                    for &comb in library.combs() {
                                        // Cheap shape pre-filter on the hole type.
                                        let hole_ok = match comb {
                                            Comb::Map | Comb::Filter => {
                                                matches!(info.ty, Type::List(_) | Type::Var(_))
                                            }
                                            Comb::Mapt => {
                                                matches!(info.ty, Type::Tree(_) | Type::Var(_))
                                            }
                                            _ => true,
                                        };
                                        if !hole_ok {
                                            continue;
                                        }
                                        for (expr, ty, vals, cost, term) in &pool {
                                            // Shape pre-filter on the collection.
                                            let coll_ok = *cost <= options.max_collection_cost
                                                && if comb.is_tree() {
                                                    matches!(ty, Type::Tree(_))
                                                } else {
                                                    matches!(ty, Type::List(_))
                                                };
                                            if !coll_ok {
                                                continue;
                                            }
                                            // The candidate's abstraction is memoized per
                                            // term id: combinator number two onward (and
                                            // any later sweep reusing this store) hits.
                                            let coll_abs =
                                                abs_cache.get_or_insert(&tkey.0, *term, || {
                                                    TermAbs::of_values(vals)
                                                });
                                            let abs = AbsArgs {
                                                coll: &coll_abs,
                                                out: &out_abs,
                                            };
                                            let cand = Candidate {
                                                expr,
                                                ty,
                                                values: vals.clone(),
                                                cost: *cost,
                                            };
                                            if comb.init_index().is_none() {
                                                match plan_isolated(
                                                    &info,
                                                    comb,
                                                    &cand,
                                                    None,
                                                    &costs,
                                                    options.deduction,
                                                    options.static_analysis,
                                                    options.static_prune,
                                                    Some(abs),
                                                    budget,
                                                ) {
                                                    PlanOutcome::Planned(t) => {
                                                        if tracer.enabled() {
                                                            tracer.emit(TraceEvent::Plan {
                                                                comb: comb.name(),
                                                                coll: expr.to_string(),
                                                                init: None,
                                                                delta_cost: t.delta_cost,
                                                                rows: t.body_info.spec.rows().len(),
                                                            });
                                                        }
                                                        planned.push(Planned::Comb(t));
                                                    }
                                                    PlanOutcome::Budget(e) => {
                                                        note_phase(
                                                            &mut stats.phases.deduce,
                                                            &mut stats.metrics.deduce_us,
                                                            options.metrics,
                                                            t_deduce.elapsed(),
                                                        );
                                                        break 'round Some(Err(e.to_synth_error()));
                                                    }
                                                    PlanOutcome::Rejected(fail) => {
                                                        refute(
                                                            &mut stats,
                                                            tracer,
                                                            fail,
                                                            comb,
                                                            expr,
                                                            None,
                                                            options.metrics,
                                                        );
                                                    }
                                                    PlanOutcome::Fault(detail) => {
                                                        fault(
                                                            &mut stats,
                                                            tracer,
                                                            "deduce.plan",
                                                            detail,
                                                        );
                                                    }
                                                }
                                                continue;
                                            }
                                            // Folds: one template per initial-value
                                            // candidate of the hole's (result) type.
                                            // Empty-collection rows pin the init value,
                                            // allowing a larger budget; without them
                                            // every typed term qualifies, so keep the
                                            // budget tight.
                                            let empty_rows: Vec<(
                                                usize,
                                                &lambda2_lang::value::Value,
                                            )> = if options.deduction {
                                                info.spec
                                                    .rows()
                                                    .iter()
                                                    .enumerate()
                                                    .filter(|(i, _)| match &vals[*i] {
                                                        lambda2_lang::value::Value::List(xs) => {
                                                            xs.is_empty()
                                                        }
                                                        lambda2_lang::value::Value::Tree(t) => {
                                                            t.is_empty()
                                                        }
                                                        _ => false,
                                                    })
                                                    .map(|(i, r)| (i, &r.output))
                                                    .collect()
                                            } else {
                                                Vec::new()
                                            };
                                            let init_budget = if empty_rows.is_empty() {
                                                options.max_free_init_cost
                                            } else {
                                                options.max_init_cost
                                            };
                                            for (ie, ity, ivals, icost, _) in &pool {
                                                if *icost > init_budget
                                                    || !crate::enumerate::unifiable(ity, &info.ty)
                                                {
                                                    continue;
                                                }
                                                if empty_rows
                                                    .iter()
                                                    .any(|(i, out)| &ivals[*i] != *out)
                                                {
                                                    stats.refuted += 1;
                                                    if tracer.enabled() {
                                                        tracer.emit(TraceEvent::Refute {
                                                            comb: comb.name(),
                                                            coll: expr.to_string(),
                                                            init: Some(ie.to_string()),
                                                            reason: RefuteReason::InitMismatch,
                                                        });
                                                    }
                                                    continue;
                                                }
                                                let init = Candidate {
                                                    expr: ie,
                                                    ty: ity,
                                                    values: ivals.clone(),
                                                    cost: *icost,
                                                };
                                                match plan_isolated(
                                                    &info,
                                                    comb,
                                                    &cand,
                                                    Some(&init),
                                                    &costs,
                                                    options.deduction,
                                                    options.static_analysis,
                                                    options.static_prune,
                                                    Some(abs),
                                                    budget,
                                                ) {
                                                    PlanOutcome::Planned(t) => {
                                                        if tracer.enabled() {
                                                            tracer.emit(TraceEvent::Plan {
                                                                comb: comb.name(),
                                                                coll: expr.to_string(),
                                                                init: Some(ie.to_string()),
                                                                delta_cost: t.delta_cost,
                                                                rows: t.body_info.spec.rows().len(),
                                                            });
                                                        }
                                                        planned.push(Planned::Comb(t));
                                                    }
                                                    PlanOutcome::Budget(e) => {
                                                        note_phase(
                                                            &mut stats.phases.deduce,
                                                            &mut stats.metrics.deduce_us,
                                                            options.metrics,
                                                            t_deduce.elapsed(),
                                                        );
                                                        break 'round Some(Err(e.to_synth_error()));
                                                    }
                                                    PlanOutcome::Rejected(fail) => {
                                                        refute(
                                                            &mut stats,
                                                            tracer,
                                                            fail,
                                                            comb,
                                                            expr,
                                                            Some(ie),
                                                            options.metrics,
                                                        );
                                                    }
                                                    PlanOutcome::Fault(detail) => {
                                                        fault(
                                                            &mut stats,
                                                            tracer,
                                                            "deduce.plan",
                                                            detail,
                                                        );
                                                    }
                                                }
                                            }
                                        }
                                    }
                                    // Constructor hypotheses: invertible constructors
                                    // split a hole into exactly-specified components.
                                    if options.constructor_hypotheses && options.deduction {
                                        planned.extend(
                                            plan_constructors(&info, &costs)
                                                .into_iter()
                                                .map(Planned::Cons),
                                        );
                                    }
                                    // The Apply stream below walks templates in order,
                                    // so sort by cost for best-first behavior.
                                    planned.sort_by_key(Planned::delta_cost);
                                    note_phase(
                                        &mut stats.phases.deduce,
                                        &mut stats.metrics.deduce_us,
                                        options.metrics,
                                        t_deduce.elapsed(),
                                    );
                                    if options.metrics {
                                        if let Some(pct) = abs_cache.take_hit_pct() {
                                            stats.metrics.abs_cache_hit_pct.record(pct);
                                        }
                                    }
                                    let planned = Arc::new(planned);
                                    templates.insert(tkey, Arc::clone(&planned));
                                    evict_stores(
                                        &mut stores,
                                        options,
                                        &info.store_key,
                                        &mut stats,
                                        tracer,
                                        budget,
                                    );
                                    planned
                                }
                            };

                            if !planned.is_empty() {
                                seq += 1;
                                let first_cost =
                                    hyp.cost - costs.hole_min() + planned[0].delta_cost();
                                if first_cost <= options.max_cost {
                                    queue.push(Entry {
                                        cost: first_cost,
                                        seq,
                                        kind: Kind::Apply {
                                            hyp: hyp.clone(),
                                            hole,
                                            templates: planned,
                                            index: 0,
                                        },
                                    });
                                }
                            }
                        }
                        Kind::Apply {
                            hyp,
                            hole,
                            templates,
                            index,
                        } => {
                            stats.expansions += 1;
                            let t_expand = Instant::now();
                            let child =
                                templates[index].instantiate(&hyp, hole, &costs, &mut next_hole);
                            note_phase(
                                &mut stats.phases.expand,
                                &mut stats.metrics.expand_us,
                                options.metrics,
                                t_expand.elapsed(),
                            );
                            seq += 1;
                            queue.push(Entry {
                                cost: child.cost,
                                seq,
                                kind: Kind::Hyp(child),
                            });
                            // Advance the stream.
                            if index + 1 < templates.len() {
                                let next_cost =
                                    hyp.cost - costs.hole_min() + templates[index + 1].delta_cost();
                                if next_cost <= options.max_cost {
                                    seq += 1;
                                    queue.push(Entry {
                                        cost: next_cost,
                                        seq,
                                        kind: Kind::Apply {
                                            hyp,
                                            hole,
                                            templates,
                                            index: index + 1,
                                        },
                                    });
                                }
                            }
                        }
                        Kind::Close { hyp, hole, tier } => {
                            let info = hyp
                                .holes()
                                .iter()
                                .find(|(h, _)| *h == hole)
                                .map(|(_, i)| Arc::clone(i))
                                .expect("close item refers to an open hole");
                            let t_enum = Instant::now();
                            let store = touch_store(
                                &mut stores,
                                &mut store_tick,
                                &info,
                                options,
                                &mut stats,
                                tracer,
                                warm,
                                warm_config,
                            );
                            let before = store.inserted();
                            if let Err(e) = store.ensure_within(tier, library, budget) {
                                stats.enumerated_terms += store.inserted() - before;
                                note_phase(
                                    &mut stats.phases.enumerate,
                                    &mut stats.metrics.enumerate_us,
                                    options.metrics,
                                    t_enum.elapsed(),
                                );
                                break 'round Some(Err(e.to_synth_error()));
                            }
                            stats.enumerated_terms += store.inserted() - before;
                            let fills: Vec<(Arc<lambda2_lang::ast::Expr>, u32)> = store
                                .closings(tier, &info.ty, &info.spec)
                                .map(|t| (store.expr_of(t), t.cost))
                                .collect();
                            note_phase(
                                &mut stats.phases.enumerate,
                                &mut stats.metrics.enumerate_us,
                                options.metrics,
                                t_enum.elapsed(),
                            );
                            if tracer.enabled() {
                                tracer.emit(TraceEvent::Tier {
                                    tier,
                                    cost: entry_cost,
                                    fills: fills.len(),
                                });
                            }
                            evict_stores(
                                &mut stores,
                                options,
                                &info.store_key,
                                &mut stats,
                                tracer,
                                budget,
                            );
                            let closes_last_hole = hyp.holes().len() == 1;
                            // Closing the last hole can surface thousands of
                            // complete candidates in one tier — the search's
                            // dominant verification batch. Fan it out: children
                            // are built and fail-point decisions taken here in
                            // fill order, workers execute only the metered runs,
                            // and the verdicts are applied below in the same fill
                            // order with all accounting on this thread.
                            let mut pre_closed: VecDeque<(Hypothesis, PreRun)> = VecDeque::new();
                            if closes_last_hole && jobs > 1 {
                                let children: Vec<Hypothesis> = fills
                                    .iter()
                                    .filter_map(|(expr, term_cost)| {
                                        let child_cost = hyp.cost - costs.hole_min() + term_cost;
                                        (child_cost <= options.max_cost)
                                            .then(|| hyp.fill(hole, expr, vec![], child_cost))
                                    })
                                    .collect();
                                if children.len() >= 2 {
                                    let tasks: Vec<(&Expr, Option<FailAction>)> = children
                                        .iter()
                                        .map(|c| (&c.expr, failpoints::check("verify.candidate")))
                                        .collect();
                                    let runs = preverify(problem, options.eval_fuel, jobs, &tasks);
                                    pre_closed = children.into_iter().zip(runs).collect();
                                }
                            }
                            for (expr, term_cost) in fills {
                                let child_cost = hyp.cost - costs.hole_min() + term_cost;
                                if child_cost > options.max_cost {
                                    continue;
                                }
                                stats.closings += 1;
                                // Closing the last hole completes the program; verify
                                // *now* and only enqueue survivors — blind holes can
                                // produce tens of thousands of candidates per tier,
                                // and queueing the failures (the vast majority) would
                                // balloon memory. Survivors still go through the
                                // queue so the cheapest fitting program wins.
                                if closes_last_hole {
                                    let (child, verdict) = match pre_closed.pop_front() {
                                        Some((child, pre)) => {
                                            let v = apply_prerun(
                                                pre, child_cost, options, budget, &mut stats,
                                                tracer,
                                            );
                                            (child, v)
                                        }
                                        None => {
                                            let child = hyp.fill(hole, &expr, vec![], child_cost);
                                            let v = verify_candidate(
                                                problem,
                                                &child.expr,
                                                child_cost,
                                                options,
                                                budget,
                                                &mut stats,
                                                tracer,
                                            );
                                            (child, v)
                                        }
                                    };
                                    match verdict {
                                        Verdict::Pass(_) => {
                                            seq += 1;
                                            queue.push(Entry {
                                                cost: child_cost,
                                                seq,
                                                kind: Kind::Hyp(child),
                                            });
                                        }
                                        Verdict::Fail => stats.verify_failures += 1,
                                        Verdict::Fault => {}
                                        Verdict::Budget(e) => {
                                            break 'round Some(Err(e.to_synth_error()))
                                        }
                                    }
                                    continue;
                                }
                                let child = hyp.fill(hole, &expr, vec![], child_cost);
                                seq += 1;
                                queue.push(Entry {
                                    cost: child_cost,
                                    seq,
                                    kind: Kind::Hyp(child),
                                });
                            }
                            // Reschedule the stream at the next tier; blind holes (no
                            // spec rows, hence no observational pruning) get a tighter
                            // cap.
                            let tier_cap = if info.spec.is_empty() {
                                options.max_term_cost_blind.min(options.max_term_cost)
                            } else {
                                options.max_term_cost
                            };
                            let next_tier = tier + 1;
                            let next_cost = hyp.cost - costs.hole_min() + next_tier;
                            if next_tier <= tier_cap && next_cost <= options.max_cost {
                                seq += 1;
                                queue.push(Entry {
                                    cost: next_cost,
                                    seq,
                                    kind: Kind::Close {
                                        hyp,
                                        hole,
                                        tier: next_tier,
                                    },
                                });
                            }
                        }
                    }
                }
                None
            };
            if let Some(v) = aborted {
                // Push the round's unprocessed remainder back so an
                // abort's anytime frontier matches a sequential run's
                // abandoned queue exactly.
                for e in round {
                    queue.push(e);
                }
                break 'search v;
            }
        }
        // The queue drained. A limit can still have latched during the last
        // iteration's phases (a fuel cap, a forced expiry) without aborting
        // it — report that verdict rather than a spurious exhaustion.
        match budget.check_now() {
            Err(e) => Err(e.to_synth_error()),
            Ok(()) => Err(SynthError::Exhausted),
        }
    };

    if options.metrics {
        // Live stores' level histograms were not folded in by eviction;
        // do it now (each store counted exactly once per build).
        for (store, _) in stores.values() {
            stats.metrics.level_terms.merge(store.level_terms());
        }
        stats.metrics.poll_gap_us.merge(&budget.poll_gap_us());
    }
    if let Some(warm) = warm {
        // Park live stores for the next search, most recently used last so
        // the cache's LRU order mirrors this search's.
        let mut parked: Vec<(StoreKey, (TermStore, u64))> = stores.drain().collect();
        parked.sort_by_key(|(_, (_, tick))| *tick);
        for (key, (store, _)) in parked {
            warm.put(warm_config, key, store);
        }
    }

    let elapsed = start.elapsed();
    let (outcome, frontier) = match outcome {
        Ok((program, cost)) => (
            Ok(Synthesis {
                program,
                cost,
                stats: stats.clone(),
                elapsed,
            }),
            Vec::new(),
        ),
        Err(e) => (Err(e), frontier_of(&mut queue)),
    };
    SearchReport {
        outcome,
        frontier,
        stats,
        elapsed,
        budget: budget.snapshot(),
        attempts: Vec::new(),
    }
}

/// How many open hypotheses a report's anytime frontier carries.
const FRONTIER_LIMIT: usize = 5;

/// How deep into the abandoned queue the frontier scan pops. The queue can
/// hold millions of entries at termination; only the cheapest few dozen
/// are examined (in priority order) for hypotheses worth reporting.
const FRONTIER_SCAN: usize = 64;

/// Pops the best-cost open hypotheses off an abandoned queue — the
/// *anytime* result attached to failure reports.
fn frontier_of(queue: &mut BinaryHeap<Entry>) -> Vec<FrontierItem> {
    let mut out = Vec::new();
    for _ in 0..FRONTIER_SCAN {
        let Some(entry) = queue.pop() else { break };
        if let Kind::Hyp(h) = entry.kind {
            out.push(FrontierItem {
                sketch: h.expr.to_string(),
                cost: entry.cost,
                holes: h.holes().len(),
            });
            if out.len() >= FRONTIER_LIMIT {
                break;
            }
        }
    }
    out
}

/// Cap on how many equal-cost entries a parallel round drains from the
/// queue at once. Bounds speculative verification (everything past a
/// passing candidate is wasted work) and the memory pulled out of the
/// heap; the remainder stays queued and leads the next round.
const ROUND_CAP: usize = 256;

/// The raw outcome of one speculative verification executed on a worker
/// thread: the constructed program, the (possibly panicked) metered run,
/// and its wall time. No accounting happens on the worker —
/// [`apply_prerun`] replays these on the coordinating thread in
/// deterministic order, reproducing [`verify_candidate`]'s effects
/// exactly.
struct PreRun {
    program: Program,
    run: std::thread::Result<(bool, u64)>,
    elapsed: Duration,
    injected: Option<FailAction>,
}

/// Runs `tasks` (complete candidate bodies, paired with the fail-point
/// action the coordinating thread already decided for each) on up to
/// `jobs` worker threads stealing from a shared index. Work-stealing
/// order is irrelevant to the result: each task is independent, results
/// land in task order, and all stats/budget/trace effects are deferred to
/// [`apply_prerun`].
fn preverify(
    problem: &Problem,
    eval_fuel: u64,
    jobs: usize,
    tasks: &[(&Expr, Option<FailAction>)],
) -> Vec<PreRun> {
    use std::sync::atomic::AtomicUsize;
    let next = AtomicUsize::new(0);
    let workers = jobs.min(tasks.len());
    // The `par.worker` fail point (checked here, on the coordinating
    // thread — the registry is thread-local) staggers worker startup to
    // perturb steal order; the determinism suite uses it to show results
    // are schedule-independent.
    let delay = matches!(failpoints::check("par.worker"), Some(FailAction::Delay));
    let mut out: Vec<Option<PreRun>> = Vec::with_capacity(tasks.len());
    out.resize_with(tasks.len(), || None);
    let chunks: Vec<Vec<(usize, PreRun)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let next = &next;
                scope.spawn(move || {
                    if delay {
                        std::thread::sleep(Duration::from_millis(2 * w as u64));
                    }
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= tasks.len() {
                            break;
                        }
                        let (body, injected) = &tasks[i];
                        let program = Program::new(problem.params().to_vec(), (*body).clone());
                        let fuel = match injected {
                            Some(FailAction::ExhaustFuel) => 0,
                            _ => eval_fuel,
                        };
                        let t_verify = Instant::now();
                        let run = catch_unwind(AssertUnwindSafe(|| {
                            if let Some(FailAction::Panic) = injected {
                                panic!("injected panic at verify.candidate");
                            }
                            program.satisfies_problem_metered(problem, fuel)
                        }));
                        mine.push((
                            i,
                            PreRun {
                                program,
                                run,
                                elapsed: t_verify.elapsed(),
                                injected: *injected,
                            },
                        ));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("verify worker panicked outside isolation"))
            .collect()
    });
    for (i, pre) in chunks.into_iter().flatten() {
        out[i] = Some(pre);
    }
    out.into_iter()
        .map(|o| o.expect("the steal loop covers every task"))
        .collect()
}

/// Applies a speculative verification's outcome on the coordinating
/// thread: stats, phase time, trace event, and fuel charge happen here,
/// in the same order [`verify_candidate`] produces them, so a parallel
/// round's observable effects match a sequential run's byte for byte.
fn apply_prerun(
    pre: PreRun,
    cost: u32,
    options: &SearchOptions,
    budget: &Budget,
    stats: &mut Stats,
    tracer: &mut dyn Tracer,
) -> Verdict {
    stats.verified += 1;
    note_phase(
        &mut stats.phases.verify,
        &mut stats.metrics.verify_us,
        options.metrics,
        pre.elapsed,
    );
    match pre.run {
        Ok((ok, used)) => {
            let used = match pre.injected {
                Some(FailAction::ExhaustFuel) => u64::MAX,
                _ => used,
            };
            if tracer.enabled() {
                tracer.emit(TraceEvent::Verify {
                    ok,
                    cost,
                    program: pre.program.body().to_string(),
                });
            }
            let charge = budget.charge_fuel(used);
            if ok {
                Verdict::Pass(pre.program)
            } else if let Err(e) = charge {
                Verdict::Budget(e)
            } else {
                Verdict::Fail
            }
        }
        Err(payload) => {
            fault(stats, tracer, "verify.candidate", panic_message(&*payload));
            Verdict::Fault
        }
    }
}

/// Outcome of one isolated candidate verification.
enum Verdict {
    /// The candidate satisfies every example.
    Pass(Program),
    /// The candidate fails some example.
    Fail,
    /// The candidate panicked; the fault was counted and traced.
    Fault,
    /// The cumulative fuel cap tripped while charging this run.
    Budget(BudgetExceeded),
}

/// Verifies one complete candidate under panic isolation, charging the
/// evaluation fuel it actually consumed against `budget`.
///
/// The `catch_unwind` boundary is sound: the closure reads only `program`
/// and `problem` (no shared mutable state is touched inside it), and the
/// stats/budget updates happen after the closure returns — a panic cannot
/// leave either mid-update.
///
/// A candidate that both passes and trips the fuel cap is a success: it
/// was verified before the cap mattered, and a correct program beats a
/// resource verdict.
fn verify_candidate(
    problem: &Problem,
    body: &Expr,
    cost: u32,
    options: &SearchOptions,
    budget: &Budget,
    stats: &mut Stats,
    tracer: &mut dyn Tracer,
) -> Verdict {
    stats.verified += 1;
    let program = Program::new(problem.params().to_vec(), body.clone());
    let injected = failpoints::check("verify.candidate");
    let fuel = match injected {
        Some(FailAction::ExhaustFuel) => 0,
        _ => options.eval_fuel,
    };
    let t_verify = Instant::now();
    let run = catch_unwind(AssertUnwindSafe(|| {
        if let Some(FailAction::Panic) = injected {
            panic!("injected panic at verify.candidate");
        }
        program.satisfies_problem_metered(problem, fuel)
    }));
    note_phase(
        &mut stats.phases.verify,
        &mut stats.metrics.verify_us,
        options.metrics,
        t_verify.elapsed(),
    );
    match run {
        Ok((ok, used)) => {
            // An injected exhaustion charges "everything", so the cap
            // trips even when configured unlimited — the fault becomes
            // observable as a deterministic `FuelExhausted`.
            let used = match injected {
                Some(FailAction::ExhaustFuel) => u64::MAX,
                _ => used,
            };
            if tracer.enabled() {
                tracer.emit(TraceEvent::Verify {
                    ok,
                    cost,
                    program: program.body().to_string(),
                });
            }
            let charge = budget.charge_fuel(used);
            if ok {
                Verdict::Pass(program)
            } else if let Err(e) = charge {
                Verdict::Budget(e)
            } else {
                Verdict::Fail
            }
        }
        Err(payload) => {
            fault(stats, tracer, "verify.candidate", panic_message(&*payload));
            Verdict::Fault
        }
    }
}

/// Outcome of one isolated planning attempt.
enum PlanOutcome {
    /// A usable expansion template.
    Planned(Template),
    /// Refuted or ill-typed (counted by [`refute`]).
    Rejected(ExpandFail),
    /// The budget tripped mid-planning; abort the sweep.
    Budget(BudgetExceeded),
    /// Planning panicked; the payload's message.
    Fault(String),
}

/// Plans one combinator expansion under panic isolation and the budget.
/// The `catch_unwind` boundary is sound for the same reason as
/// [`verify_candidate`]: the closure only reads the hole context and
/// candidates, and all accounting happens after it returns.
#[allow(clippy::too_many_arguments)]
fn plan_isolated(
    info: &HoleInfo,
    comb: Comb,
    cand: &Candidate<'_>,
    init: Option<&Candidate<'_>>,
    costs: &CostModel,
    deduction: bool,
    analysis: bool,
    prune: bool,
    abs: Option<AbsArgs<'_>>,
    budget: &Budget,
) -> PlanOutcome {
    let injected = failpoints::check("deduce.plan");
    let run = catch_unwind(AssertUnwindSafe(|| {
        if let Some(FailAction::Panic) = injected {
            panic!("injected panic at deduce.plan");
        }
        plan_expansion_within(
            info, comb, cand, init, costs, deduction, analysis, prune, abs, budget,
        )
    }));
    match run {
        Ok(Ok(t)) => PlanOutcome::Planned(t),
        Ok(Err(ExpandFail::Budget(e))) => PlanOutcome::Budget(e),
        Ok(Err(fail)) => PlanOutcome::Rejected(fail),
        Err(payload) => PlanOutcome::Fault(panic_message(&*payload)),
    }
}

/// Accounts a panic caught at a governed site in `stats` and the trace.
/// The candidate or plan is skipped; the search continues.
fn fault(stats: &mut Stats, tracer: &mut dyn Tracer, site: &'static str, detail: String) {
    stats.faults += 1;
    if tracer.enabled() {
        tracer.emit(TraceEvent::Fault { site, detail });
    }
}

/// Fingerprint of everything a term store's *contents* depend on: the
/// library (operators, combinators, constants, cost model) and the
/// enumeration knobs ([`SearchOptions::enum_limits`],
/// [`SearchOptions::trace_probes`]). Two searches with equal fingerprints
/// build byte-identical stores for equal [`StoreKey`]s, which is the
/// safety condition for sharing a [`WarmCache`] across requests.
/// Deliberately *excludes* budgets, cost ceilings, and observation knobs —
/// they bound how far a store gets built, never what a built level holds.
pub fn warm_config_fingerprint(library: &Library, options: &SearchOptions) -> u64 {
    let mut material = String::new();
    for op in library.ops() {
        material.push_str(op.name());
        material.push(',');
    }
    material.push(';');
    for comb in library.combs() {
        material.push_str(comb.name());
        material.push(',');
    }
    material.push(';');
    for c in library.constants() {
        material.push_str(&c.to_string());
        material.push(',');
    }
    // Exhaustive destructures: adding a field to either struct is a
    // compile error here until its cache-key relevance is decided.
    let CostModel {
        var,
        lit,
        op,
        if_,
        lambda,
        comb,
    } = library.costs();
    let EnumLimits {
        max_level_terms,
        max_terms,
        synthetic_probes,
    } = options.enum_limits;
    material.push_str(&format!(
        ";costs={var},{lit},{op},{if_},{lambda},{comb};limits={max_level_terms},{max_terms},{synthetic_probes};trace_probes={}",
        options.trace_probes
    ));
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in material.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Looks up (or creates) the enumeration store for a hole context,
/// refreshing its LRU tick and accounting the hit/create in `stats` and
/// the trace.
#[allow(clippy::too_many_arguments)]
fn touch_store<'a>(
    stores: &'a mut HashMap<StoreKey, (TermStore, u64)>,
    store_tick: &mut u64,
    info: &HoleInfo,
    options: &SearchOptions,
    stats: &mut Stats,
    tracer: &mut dyn Tracer,
    warm: Option<&WarmCache>,
    warm_config: u64,
) -> &'a mut TermStore {
    *store_tick += 1;
    let hit = stores.contains_key(&info.store_key);
    let mut warmed = false;
    let entry = stores.entry(info.store_key.clone()).or_insert_with(|| {
        let seeded = warm.and_then(|w| w.take(warm_config, &info.store_key));
        let store = match seeded {
            Some(store) => {
                warmed = true;
                store
            }
            None => TermStore::with_probes(
                info.scope.clone(),
                &info.spec,
                if options.trace_probes {
                    &info.probes
                } else {
                    &[]
                },
                options.enum_limits,
            ),
        };
        (store, 0)
    });
    entry.1 = *store_tick;
    if hit {
        stats.store_hits += 1;
    }
    if warmed {
        stats.warm_hits += 1;
    }
    if options.metrics {
        stats.metrics.store_terms.record_usize(entry.0.len());
        stats
            .metrics
            .store_bytes
            .record_usize(entry.0.approx_bytes());
    }
    if tracer.enabled() {
        tracer.emit(TraceEvent::Store {
            action: if hit || warmed {
                StoreAction::Hit
            } else {
                StoreAction::Create
            },
            terms: entry.0.len(),
            bytes: entry.0.approx_bytes(),
        });
    }
    &mut entry.0
}

/// Accounts a rejected combinator expansion in `stats` and the trace.
fn refute(
    stats: &mut Stats,
    tracer: &mut dyn Tracer,
    fail: ExpandFail,
    comb: Comb,
    coll: &Arc<lambda2_lang::ast::Expr>,
    init: Option<&Arc<lambda2_lang::ast::Expr>>,
    record_metrics: bool,
) {
    let reason = match fail {
        ExpandFail::Refuted => {
            stats.refuted += 1;
            RefuteReason::Deduction
        }
        ExpandFail::StaticRefuted(domain) => {
            // Static refutations get their own counters and trace event —
            // disjoint from `refuted`, so on/off ablations compare
            // cleanly; pruning-tier verdicts are split out again because
            // each one is work deduction would *not* have removed.
            let pruned = domain.tier() == crate::analyze::Tier::Pruning;
            if pruned {
                stats.pruned_refutations += 1;
            } else {
                stats.static_refutations += 1;
            }
            if record_metrics {
                // 1-based DOMAIN_ORDER index, so histogram buckets line
                // up with the coarse-to-fine domain table.
                stats
                    .metrics
                    .static_refute_domain
                    .record(domain.order_index() as u64 + 1);
            }
            if tracer.enabled() {
                tracer.emit(TraceEvent::StaticRefute {
                    comb: comb.name(),
                    coll: coll.to_string(),
                    init: init.map(|e| e.to_string()),
                    domain: domain.name(),
                    pruned,
                });
            }
            return;
        }
        ExpandFail::IllTyped => {
            stats.ill_typed += 1;
            RefuteReason::IllTyped
        }
        ExpandFail::Budget(_) => {
            unreachable!("budget failures abort the planning sweep before refutation accounting")
        }
    };
    if tracer.enabled() {
        tracer.emit(TraceEvent::Refute {
            comb: comb.name(),
            coll: coll.to_string(),
            init: init.map(|e| e.to_string()),
            reason,
        });
    }
}

/// Evicts least-recently-used stores until the approximate heap footprint
/// fits `max_bytes`, never evicting `current` (just touched). Evicted
/// stores rebuild deterministically if revisited, trading CPU for bounded
/// memory. Records the pre-sweep footprint as the budget's high-water
/// mark.
fn evict_stores(
    stores: &mut HashMap<StoreKey, (TermStore, u64)>,
    options: &SearchOptions,
    current: &StoreKey,
    stats: &mut Stats,
    tracer: &mut dyn Tracer,
    budget: &Budget,
) {
    // An injected eviction shrinks the byte budget to zero for this one
    // sweep, forcing out every store but the current one.
    let max_bytes = match failpoints::check("store.evict") {
        Some(FailAction::EvictStores) => 0,
        _ => options.max_store_bytes,
    };
    let mut total: usize = stores.values().map(|(s, _)| s.approx_bytes()).sum();
    budget.note_store_bytes(total);
    while total > max_bytes && stores.len() > 1 {
        let victim = stores
            .iter()
            .filter(|(k, _)| *k != current)
            .min_by_key(|(_, (_, tick))| *tick)
            .map(|(k, (s, _))| (k.clone(), s.len(), s.approx_bytes()));
        match victim {
            Some((key, terms, bytes)) => {
                if let Some((store, _)) = stores.remove(&key) {
                    // A store's per-level term histogram is folded into the
                    // run metrics exactly once: here for evicted stores, at
                    // search end for live ones. A store evicted and later
                    // rebuilt counts again — the histogram measures work
                    // done, like `Stats::enumerated_terms`.
                    if options.metrics {
                        stats.metrics.level_terms.merge(store.level_terms());
                    }
                }
                stats.store_evictions += 1;
                if tracer.enabled() {
                    tracer.emit(TraceEvent::Store {
                        action: StoreAction::Evict,
                        terms,
                        bytes,
                    });
                }
                total -= bytes;
            }
            None => break,
        }
    }
}

// Debug instrumentation: set LAMBDA2_STORE_DEBUG=1 to dump store sizes.

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(problem: &Problem) -> Synthesis {
        search(problem, &SearchOptions::default()).expect("should synthesize")
    }

    fn problem(
        name: &str,
        params: &[(&str, &str)],
        ret: &str,
        examples: &[(&[&str], &str)],
    ) -> Problem {
        let mut b = Problem::builder(name);
        for (n, t) in params {
            b = b.param(n, t);
        }
        b = b.returns(ret);
        for (ins, out) in examples {
            b = b.example(ins, out);
        }
        b.build().unwrap()
    }

    #[test]
    fn synthesizes_identity() {
        let p = problem(
            "id",
            &[("l", "[int]")],
            "[int]",
            &[(&["[1 2]"], "[1 2]"), (&["[]"], "[]"), (&["[3]"], "[3]")],
        );
        let s = solve(&p);
        assert_eq!(s.program.body().to_string(), "l");
        assert_eq!(s.cost, 1);
    }

    #[test]
    fn synthesizes_increment_map() {
        let p = problem(
            "incr",
            &[("l", "[int]")],
            "[int]",
            &[(&["[]"], "[]"), (&["[1 2]"], "[2 3]"), (&["[7]"], "[8]")],
        );
        let s = solve(&p);
        let shown = s.program.body().to_string();
        assert!(shown.starts_with("(map (lambda (x) "), "{shown}");
        let out = s
            .program
            .apply(&[lambda2_lang::parser::parse_value("[10 20]").unwrap()])
            .unwrap();
        assert_eq!(out, lambda2_lang::parser::parse_value("[11 21]").unwrap());
    }

    #[test]
    fn synthesizes_length_via_fold() {
        let p = problem(
            "length",
            &[("l", "[int]")],
            "int",
            &[
                (&["[]"], "0"),
                (&["[7]"], "1"),
                (&["[7 4]"], "2"),
                (&["[7 4 9]"], "3"),
            ],
        );
        let s = solve(&p);
        let out = s
            .program
            .apply(&[lambda2_lang::parser::parse_value("[1 2 3 4 5]").unwrap()])
            .unwrap();
        assert_eq!(out, lambda2_lang::value::Value::Int(5));
    }

    #[test]
    fn minimality_prefers_first_order_solutions() {
        // car is expressible first-order; no combinator should appear.
        let p = problem(
            "head",
            &[("l", "[int]")],
            "int",
            &[(&["[3 1]"], "3"), (&["[5]"], "5"), (&["[2 9 9]"], "2")],
        );
        let s = solve(&p);
        assert_eq!(s.program.body().to_string(), "(car l)");
    }

    #[test]
    fn inconsistent_examples_error_out() {
        let p = problem(
            "bad",
            &[("x", "int")],
            "int",
            &[(&["1"], "1"), (&["1"], "2")],
        );
        assert_eq!(
            search(&p, &SearchOptions::default()).unwrap_err(),
            SynthError::InconsistentExamples
        );
    }

    #[test]
    fn impossible_problems_exhaust_or_time_out() {
        // Output depends on information not present in the input under a
        // tiny cost budget: forces exhaustion quickly.
        let p = problem(
            "impossible",
            &[("x", "int")],
            "int",
            &[
                (&["1"], "100"),
                (&["2"], "-3"),
                (&["3"], "77"),
                (&["4"], "1234"),
            ],
        );
        let opts = SearchOptions {
            max_cost: 5,
            max_term_cost: 5,
            timeout: Some(Duration::from_secs(5)),
            ..SearchOptions::default()
        };
        let err = search(&p, &opts).unwrap_err();
        assert!(matches!(err, SynthError::Exhausted | SynthError::Timeout));
    }

    #[test]
    fn verification_rejects_overfit_closings() {
        // reverse: the [] and [5] examples alone admit `l` itself, but the
        // two-element example forces the fold. Checks end-to-end behavior.
        let p = problem(
            "reverse",
            &[("l", "[int]")],
            "[int]",
            &[
                (&["[]"], "[]"),
                (&["[5]"], "[5]"),
                (&["[5 2]"], "[2 5]"),
                (&["[5 2 9]"], "[9 2 5]"),
            ],
        );
        let s = solve(&p);
        let rev = s
            .program
            .apply(&[lambda2_lang::parser::parse_value("[1 2 3 4]").unwrap()])
            .unwrap();
        assert_eq!(rev, lambda2_lang::parser::parse_value("[4 3 2 1]").unwrap());
    }

    #[test]
    fn tiny_store_budget_still_solves_via_eviction() {
        // Eviction trades CPU for memory but must not change answers.
        let p = problem(
            "sum",
            &[("l", "[int]")],
            "int",
            &[
                (&["[]"], "0"),
                (&["[5]"], "5"),
                (&["[5 3]"], "8"),
                (&["[5 3 9]"], "17"),
            ],
        );
        let opts = SearchOptions {
            max_store_bytes: 200_000, // absurdly small
            ..SearchOptions::default()
        };
        let s = search(&p, &opts).expect("solves despite eviction churn");
        assert!(s.program.satisfies_problem(&p, 100_000));
    }

    #[test]
    fn blind_hole_expansion_is_opt_in() {
        // With deduction on, holes that deduction said nothing about are
        // not expanded with combinators by default; the option restores
        // the unrestricted grammar. Both settings must agree on problems
        // whose solutions carry rows everywhere (the whole suite).
        let p = problem(
            "incr",
            &[("l", "[int]")],
            "[int]",
            &[(&["[]"], "[]"), (&["[1 7]"], "[2 8]"), (&["[4]"], "[5]")],
        );
        let restricted = search(&p, &SearchOptions::default()).unwrap();
        let unrestricted = search(
            &p,
            &SearchOptions {
                expand_blind_holes: true,
                ..SearchOptions::default()
            },
        )
        .unwrap();
        assert_eq!(restricted.cost, unrestricted.cost);
        // The restricted search never does more expansion work.
        assert!(restricted.stats.expansions <= unrestricted.stats.expansions);
    }

    #[test]
    fn constructor_hypotheses_unlock_fold_under_cons() {
        // (cons (foldl + 0 l) l) buries a combinator inside a constructor:
        // reachable only through the constructor-hypothesis extension.
        let p = problem(
            "prepend_sum",
            &[("l", "[int]")],
            "[int]",
            &[
                (&["[]"], "[0]"),
                (&["[5]"], "[5 5]"),
                (&["[5 3]"], "[8 5 3]"),
                (&["[5 3 9]"], "[17 5 3 9]"),
            ],
        );
        let opts = SearchOptions {
            constructor_hypotheses: true,
            ..SearchOptions::default()
        };
        let s = search(&p, &opts).expect("solves with constructors");
        assert!(
            s.program.body().to_string().starts_with("(cons "),
            "{}",
            s.program
        );
        assert!(
            s.program.body().to_string().contains("foldl"),
            "{}",
            s.program
        );

        // Without the extension (the default) the program is out of the
        // grammar.
        let opts = SearchOptions {
            timeout: Some(Duration::from_secs(5)),
            max_cost: 14,
            ..SearchOptions::default()
        };
        assert!(search(&p, &opts).is_err());
    }

    #[test]
    fn deduction_off_still_solves_trivial_problems() {
        let p = problem(
            "id",
            &[("l", "[int]")],
            "[int]",
            &[(&["[1 2]"], "[1 2]"), (&["[]"], "[]"), (&["[3]"], "[3]")],
        );
        let opts = SearchOptions {
            deduction: false,
            ..SearchOptions::default()
        };
        let s = search(&p, &opts).unwrap();
        assert_eq!(s.program.body().to_string(), "l");
    }

    fn reverse_problem() -> Problem {
        problem(
            "reverse",
            &[("l", "[int]")],
            "[int]",
            &[
                (&["[]"], "[]"),
                (&["[5]"], "[5]"),
                (&["[5 2]"], "[2 5]"),
                (&["[5 2 9]"], "[9 2 5]"),
            ],
        )
    }

    #[test]
    fn successful_reports_carry_accounting_and_no_frontier() {
        let p = problem(
            "id",
            &[("l", "[int]")],
            "[int]",
            &[(&["[1 2]"], "[1 2]"), (&["[]"], "[]"), (&["[3]"], "[3]")],
        );
        let opts = SearchOptions::default();
        let budget = Budget::for_search(&opts);
        let report = search_governed(&p, &opts, &budget, &mut NoopTracer);
        assert!(report.frontier.is_empty());
        assert_eq!(report.budget.exceeded, None);
        assert!(report.budget.pops > 0);
        assert!(report.budget.fuel_spent > 0, "verification charges fuel");
        let s = report.outcome.expect("solves");
        assert_eq!(s.program.body().to_string(), "l");
        assert_eq!(s.stats.popped, report.stats.popped);
    }

    #[test]
    fn pop_limit_reports_a_best_cost_frontier() {
        // reverse solves around pop 51 with the defaults; cut well short.
        let opts = SearchOptions {
            max_popped: 20,
            ..SearchOptions::default()
        };
        let budget = Budget::for_search(&opts);
        let report = search_governed(&reverse_problem(), &opts, &budget, &mut NoopTracer);
        assert_eq!(report.outcome.unwrap_err(), SynthError::LimitReached);
        assert_eq!(report.budget.exceeded, Some(BudgetExceeded::PopLimit));
        assert!(!report.frontier.is_empty(), "open hypotheses remain");
        // Best-first: the frontier is sorted by cost and every item is an
        // open sketch.
        assert!(report.frontier.windows(2).all(|w| w[0].cost <= w[1].cost));
        assert!(report.frontier.iter().all(|f| f.holes > 0));
    }

    #[test]
    fn zero_timeout_reports_an_immediate_timeout() {
        let opts = SearchOptions {
            timeout: Some(Duration::ZERO),
            ..SearchOptions::default()
        };
        let budget = Budget::for_search(&opts);
        let report = search_governed(&reverse_problem(), &opts, &budget, &mut NoopTracer);
        assert_eq!(report.outcome.unwrap_err(), SynthError::Timeout);
        assert_eq!(report.budget.exceeded, Some(BudgetExceeded::Deadline));
    }

    #[test]
    fn pre_cancelled_budgets_report_cancellation() {
        let opts = SearchOptions::default();
        let budget = Budget::for_search(&opts);
        budget.cancel_token().cancel();
        let report = search_governed(&reverse_problem(), &opts, &budget, &mut NoopTracer);
        assert_eq!(report.outcome.unwrap_err(), SynthError::Cancelled);
        assert_eq!(report.budget.exceeded, Some(BudgetExceeded::Cancelled));
    }

    #[test]
    fn tiny_total_fuel_reports_fuel_exhaustion() {
        let opts = SearchOptions {
            max_total_fuel: 50,
            ..SearchOptions::default()
        };
        let budget = Budget::for_search(&opts);
        let report = search_governed(&reverse_problem(), &opts, &budget, &mut NoopTracer);
        assert_eq!(report.outcome.unwrap_err(), SynthError::FuelExhausted);
        assert_eq!(report.budget.exceeded, Some(BudgetExceeded::FuelLimit));
        assert!(report.budget.fuel_spent >= 50);
    }

    /// Every deterministic counter in [`Stats`] (wall-clock phase totals
    /// and latency histograms excluded — they measure real time).
    fn counter_snapshot(s: &Stats) -> [u64; 14] {
        [
            s.popped,
            s.expansions,
            s.refuted,
            s.static_refutations,
            s.pruned_refutations,
            s.ill_typed,
            s.closings,
            s.verified,
            s.verify_failures,
            s.enumerated_terms,
            s.store_hits,
            s.warm_hits,
            s.store_evictions,
            s.faults,
        ]
    }

    fn run_with_jobs(
        p: &Problem,
        opts: &SearchOptions,
        jobs: usize,
    ) -> (SearchReport, Vec<TraceEvent>) {
        let opts = SearchOptions {
            jobs,
            ..opts.clone()
        };
        let budget = Budget::for_search(&opts);
        let mut tracer = crate::obs::CollectTracer::default();
        let report = search_governed(p, &opts, &budget, &mut tracer);
        (report, tracer.events)
    }

    #[test]
    fn parallel_jobs_match_sequential_byte_for_byte() {
        // The determinism bar for within-problem parallelism: program,
        // cost, every counter, and the full event trace must be
        // byte-identical to a sequential run for any worker count.
        let problems = [
            reverse_problem(),
            problem(
                "incr",
                &[("l", "[int]")],
                "[int]",
                &[(&["[]"], "[]"), (&["[1 2]"], "[2 3]"), (&["[7]"], "[8]")],
            ),
            problem(
                "sum",
                &[("l", "[int]")],
                "int",
                &[
                    (&["[]"], "0"),
                    (&["[5]"], "5"),
                    (&["[5 3]"], "8"),
                    (&["[5 3 9]"], "17"),
                ],
            ),
        ];
        for p in &problems {
            let (seq, seq_events) = run_with_jobs(p, &SearchOptions::default(), 1);
            let s1 = seq.outcome.expect("solves sequentially");
            for jobs in [2, 4] {
                let (par, par_events) = run_with_jobs(p, &SearchOptions::default(), jobs);
                let sp = par.outcome.expect("solves in parallel");
                assert_eq!(
                    s1.program.body().to_string(),
                    sp.program.body().to_string(),
                    "program diverged at jobs={jobs} on {}",
                    p.name()
                );
                assert_eq!(s1.cost, sp.cost);
                assert_eq!(
                    counter_snapshot(&s1.stats),
                    counter_snapshot(&sp.stats),
                    "counters diverged at jobs={jobs} on {}",
                    p.name()
                );
                assert_eq!(
                    seq_events,
                    par_events,
                    "trace diverged at jobs={jobs} on {}",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn parallel_abort_frontier_matches_sequential() {
        // A mid-round abort must leave the same abandoned queue as a
        // sequential one: unprocessed round entries go back before the
        // frontier snapshot is taken.
        let opts = SearchOptions {
            max_popped: 20,
            ..SearchOptions::default()
        };
        let (seq, seq_events) = run_with_jobs(&reverse_problem(), &opts, 1);
        let (par, par_events) = run_with_jobs(&reverse_problem(), &opts, 4);
        assert_eq!(seq.outcome.unwrap_err(), par.outcome.unwrap_err());
        assert_eq!(seq.budget.exceeded, par.budget.exceeded);
        assert_eq!(seq.frontier, par.frontier);
        assert_eq!(seq_events, par_events);
    }

    #[test]
    fn parallel_fuel_cap_matches_sequential() {
        // Fuel is charged at apply time in seq order, so the cap trips on
        // the same candidate regardless of worker count.
        let opts = SearchOptions {
            max_total_fuel: 50,
            ..SearchOptions::default()
        };
        let (seq, seq_events) = run_with_jobs(&reverse_problem(), &opts, 1);
        let (par, par_events) = run_with_jobs(&reverse_problem(), &opts, 4);
        assert_eq!(seq.outcome.unwrap_err(), SynthError::FuelExhausted);
        assert_eq!(par.outcome.unwrap_err(), SynthError::FuelExhausted);
        assert_eq!(seq.budget.fuel_spent, par.budget.fuel_spent);
        assert_eq!(counter_snapshot(&seq.stats), counter_snapshot(&par.stats));
        assert_eq!(seq_events, par_events);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn staggered_workers_change_nothing() {
        // Perturb work-stealing order via the `par.worker` delay fail
        // point: workers start staggered, so steal order is shuffled
        // relative to an unperturbed run — results must not move.
        let (seq, seq_events) = run_with_jobs(&reverse_problem(), &SearchOptions::default(), 1);
        let _guard = crate::failpoints::FailGuard::arm("par.worker", FailAction::Delay, u64::MAX);
        let (par, par_events) = run_with_jobs(&reverse_problem(), &SearchOptions::default(), 4);
        let s1 = seq.outcome.expect("solves");
        let sp = par.outcome.expect("solves staggered");
        assert_eq!(s1.program.body().to_string(), sp.program.body().to_string());
        assert_eq!(s1.cost, sp.cost);
        assert_eq!(counter_snapshot(&s1.stats), counter_snapshot(&sp.stats));
        assert_eq!(seq_events, par_events);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn forced_evictions_keep_warm_accounting_consistent() {
        // Satellite audit for the PR 3 bug class: every sweep the
        // `store.evict` fail point forces evicts all but the current
        // store, so the warm cache is parked, seeded, and re-parked with
        // maximal churn. Under `check-invariants` the cache audits its
        // incremental byte total against a full recomputation on every
        // take/put; the searches must still solve identically.
        let p = reverse_problem();
        let opts = SearchOptions::default();
        let warm = WarmCache::new(usize::MAX);

        let cold = {
            let _g =
                crate::failpoints::FailGuard::arm("store.evict", FailAction::EvictStores, u64::MAX);
            let budget = Budget::for_search(&opts);
            search_governed_warm(&p, &opts, &budget, &mut NoopTracer, Some(&warm))
        };
        let cold = cold.outcome.expect("solves despite forced evictions");
        assert!(
            cold.stats.store_evictions > 0,
            "fail point forced evictions"
        );
        assert!(!warm.is_empty(), "surviving stores parked at search end");

        // Second run seeds from the parked stores, again under forced
        // eviction: take/put accounting must survive the full cycle.
        let seeded = {
            let _g =
                crate::failpoints::FailGuard::arm("store.evict", FailAction::EvictStores, u64::MAX);
            let budget = Budget::for_search(&opts);
            search_governed_warm(&p, &opts, &budget, &mut NoopTracer, Some(&warm))
        };
        let seeded = seeded.outcome.expect("warm rerun solves");
        assert!(seeded.stats.warm_hits > 0, "rerun seeded from the cache");
        assert_eq!(
            cold.program.body().to_string(),
            seeded.program.body().to_string(),
            "warm reuse is semantically transparent"
        );
        assert_eq!(cold.cost, seeded.cost);
        let (hits, misses, _) = warm.counters();
        assert!(hits > 0 && misses > 0);
    }

    #[test]
    fn governed_and_plain_search_agree() {
        // The governed entry point must not change what is found.
        let p = reverse_problem();
        let opts = SearchOptions::default();
        let plain = search(&p, &opts).expect("solves");
        let budget = Budget::for_search(&opts);
        let governed = search_governed(&p, &opts, &budget, &mut NoopTracer)
            .outcome
            .expect("solves");
        assert_eq!(
            plain.program.body().to_string(),
            governed.program.body().to_string()
        );
        assert_eq!(plain.cost, governed.cost);
        assert_eq!(plain.stats.popped, governed.stats.popped);
    }
}
