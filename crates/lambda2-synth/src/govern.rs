//! Resource governance: cooperative budgets, bounded-overshoot deadlines,
//! and structured search reports.
//!
//! The search's wall-clock budget used to be checked only at queue-pop
//! boundaries, so one expensive enumeration level or deduction sweep could
//! overshoot a deadline by seconds. A [`Budget`] is a single shared handle
//! threaded through every long-running phase — the search loop, the
//! enumeration stores, closing-stream materialization, deduction planning,
//! and verification fuel accounting. Phases call [`Budget::tick`] at fine
//! granularity; the budget polls the clock adaptively so that the gap
//! between two consecutive polls stays a fraction of the configured
//! overshoot bound, making cancellation fire *inside* phases with bounded
//! lag instead of only between pops.
//!
//! On exhaustion the engine degrades gracefully: [`SearchReport`] carries
//! the terminal error, an *anytime* best-cost frontier snapshot of the
//! open hypotheses, the full search counters, and a [`BudgetSnapshot`]
//! of what was consumed.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::obs::json::Json;
use crate::obs::metrics::{Histogram, EXP2_BOUNDS};
use crate::search::{SearchOptions, SynthError, Synthesis};
use crate::stats::Stats;

/// Default bound on how far past its deadline a search may run before it
/// notices and returns ([`SearchOptions::max_overshoot`]).
pub const DEFAULT_MAX_OVERSHOOT: Duration = Duration::from_millis(100);

/// Upper bound on the adaptive poll stride: even if ticks turn out to be
/// extremely cheap, the clock is consulted at least once per this many
/// ticks.
const MAX_STRIDE: u32 = 4096;

/// Minimum wall-clock spacing between two progress heartbeats
/// ([`Budget::take_heartbeat`]). Heartbeats ride the adaptive poll
/// cadence, so they can be *later* than this (a poll must happen first)
/// but never more frequent.
pub const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(200);

/// Which resource limit a [`Budget`] ran out of.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetExceeded {
    /// The wall-clock deadline passed.
    Deadline,
    /// The [`CancelToken`] was triggered from another thread.
    Cancelled,
    /// The popped-queue-item cap was reached.
    PopLimit,
    /// The cumulative evaluation-fuel cap was reached.
    FuelLimit,
}

impl BudgetExceeded {
    /// The stable name used in snapshots and traces.
    pub fn name(self) -> &'static str {
        match self {
            BudgetExceeded::Deadline => "deadline",
            BudgetExceeded::Cancelled => "cancelled",
            BudgetExceeded::PopLimit => "pop-limit",
            BudgetExceeded::FuelLimit => "fuel-limit",
        }
    }

    /// Maps the exceeded limit onto the engine's error vocabulary.
    pub fn to_synth_error(self) -> SynthError {
        match self {
            BudgetExceeded::Deadline => SynthError::Timeout,
            BudgetExceeded::Cancelled => SynthError::Cancelled,
            BudgetExceeded::PopLimit => SynthError::LimitReached,
            BudgetExceeded::FuelLimit => SynthError::FuelExhausted,
        }
    }
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A cloneable, thread-safe handle that cancels the [`Budget`] it was
/// taken from. The search observes the cancellation at its next clock
/// poll, so the same overshoot bound applies.
#[derive(Clone, Debug)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A free-standing token, not yet tied to any budget. Attach it to one
    /// or more budgets with [`Budget::with_cancel`] — the portfolio racer
    /// creates its tokens up front and hands each rung a budget that
    /// adopts one, so the coordinator can cancel losers from outside the
    /// rung threads.
    pub fn new() -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Requests cooperative cancellation.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// `true` once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

/// A shared resource budget for one synthesis attempt.
///
/// The handle is not `Sync` — the search is single-threaded — but it hands
/// out [`CancelToken`]s that are. All accounting goes through interior
/// mutability so the budget can be threaded as `&Budget` through deeply
/// nested phases without fighting the borrow checker.
///
/// Once any limit trips, the verdict is *latched*: every subsequent
/// [`Budget::tick`] fails immediately with the same [`BudgetExceeded`],
/// which keeps abort points deterministic under fault injection.
#[derive(Debug)]
pub struct Budget {
    start: Instant,
    deadline: Option<Instant>,
    max_overshoot: Duration,
    cancel: Arc<AtomicBool>,
    max_pops: u64,
    max_fuel: u64,
    pops: Cell<u64>,
    fuel_spent: Cell<u64>,
    peak_store_bytes: Cell<usize>,
    ticks: Cell<u64>,
    until_poll: Cell<u32>,
    stride: Cell<u32>,
    last_poll: Cell<Instant>,
    exceeded: Cell<Option<BudgetExceeded>>,
    last_heartbeat: Cell<Instant>,
    heartbeat_ready: Cell<bool>,
    /// Distribution of wall-clock gaps between consecutive clock polls
    /// (microseconds) — the empirical overshoot bound the adaptive stride
    /// actually achieved. `RefCell` because recording needs `&mut` through
    /// the `&self` the search threads everywhere; polls never re-enter.
    poll_gap_us: RefCell<Histogram>,
}

impl Budget {
    /// A budget with a wall-clock limit (and nothing else).
    pub fn new(timeout: Option<Duration>, max_overshoot: Duration) -> Budget {
        let start = Instant::now();
        Budget {
            start,
            deadline: timeout.map(|t| start + t),
            max_overshoot,
            cancel: Arc::new(AtomicBool::new(false)),
            max_pops: u64::MAX,
            max_fuel: u64::MAX,
            pops: Cell::new(0),
            fuel_spent: Cell::new(0),
            peak_store_bytes: Cell::new(0),
            ticks: Cell::new(0),
            until_poll: Cell::new(0), // first tick polls immediately
            stride: Cell::new(1),
            last_poll: Cell::new(start),
            exceeded: Cell::new(None),
            last_heartbeat: Cell::new(start),
            heartbeat_ready: Cell::new(false),
            poll_gap_us: RefCell::new(Histogram::new(EXP2_BOUNDS)),
        }
    }

    /// A budget with no limits at all (used by compatibility wrappers and
    /// tests; its ticks still cost a few branches).
    pub fn unlimited() -> Budget {
        Budget::new(None, DEFAULT_MAX_OVERSHOOT)
    }

    /// The budget implied by a full set of [`SearchOptions`]: deadline,
    /// overshoot bound, pop cap, and cumulative fuel cap.
    pub fn for_search(options: &SearchOptions) -> Budget {
        let mut b = Budget::new(options.timeout, options.max_overshoot);
        b.max_pops = options.max_popped;
        b.max_fuel = options.max_total_fuel;
        b
    }

    /// A thread-safe handle that cancels this budget.
    pub fn cancel_token(&self) -> CancelToken {
        CancelToken {
            flag: Arc::clone(&self.cancel),
        }
    }

    /// Adopts an externally created [`CancelToken`] (chainable):
    /// cancelling `token` cancels this budget. Replaces the budget's own
    /// token; several budgets may adopt the same one.
    pub fn with_cancel(mut self, token: &CancelToken) -> Budget {
        self.cancel = Arc::clone(&token.flag);
        self
    }

    /// Time elapsed since the budget was created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// A snapshot of the poll-gap distribution (microseconds between
    /// consecutive clock polls). The search folds this into
    /// `Stats::metrics` when metrics are enabled.
    pub fn poll_gap_us(&self) -> Histogram {
        self.poll_gap_us.borrow().clone()
    }

    /// The configured overshoot bound.
    pub fn max_overshoot(&self) -> Duration {
        self.max_overshoot
    }

    /// Fine-grained checkpoint: call from inner loops of long phases.
    ///
    /// Almost always this is a couple of `Cell` reads; every `stride`
    /// calls it polls the clock and the cancel flag, adapting the stride
    /// so that the wall-clock gap between polls stays under a quarter of
    /// the overshoot bound.
    ///
    /// # Errors
    ///
    /// Returns the (latched) [`BudgetExceeded`] verdict once any limit has
    /// tripped.
    #[inline]
    pub fn tick(&self) -> Result<(), BudgetExceeded> {
        self.ticks.set(self.ticks.get() + 1);
        if let Some(e) = self.exceeded.get() {
            return Err(e);
        }
        let left = self.until_poll.get();
        if left > 0 {
            self.until_poll.set(left - 1);
            return Ok(());
        }
        self.poll()
    }

    /// Forced checkpoint: polls the clock and cancel flag immediately
    /// (used at coarse boundaries such as enumeration levels).
    ///
    /// # Errors
    ///
    /// Same as [`Budget::tick`].
    pub fn check_now(&self) -> Result<(), BudgetExceeded> {
        if let Some(e) = self.exceeded.get() {
            return Err(e);
        }
        self.poll()
    }

    #[cold]
    fn poll(&self) -> Result<(), BudgetExceeded> {
        let now = Instant::now();
        // Adapt the stride: aim for a poll gap under a quarter of the
        // overshoot bound, backing off geometrically while ticks are
        // cheap and collapsing fast when a phase's per-tick work grows.
        let gap = now.saturating_duration_since(self.last_poll.get());
        self.poll_gap_us
            .borrow_mut()
            .record(gap.as_micros().min(u64::MAX as u128) as u64);
        let target = self.max_overshoot / 4;
        let stride = self.stride.get();
        let new_stride = if gap.saturating_mul(4) < target {
            (stride.saturating_mul(2)).min(MAX_STRIDE)
        } else if gap > target {
            (stride / 4).max(1)
        } else {
            stride
        };
        self.stride.set(new_stride);
        self.until_poll.set(new_stride);
        self.last_poll.set(now);
        if now.saturating_duration_since(self.last_heartbeat.get()) >= HEARTBEAT_INTERVAL {
            self.heartbeat_ready.set(true);
        }
        if self.cancel.load(Ordering::Relaxed) {
            return Err(self.trip(BudgetExceeded::Cancelled));
        }
        if let Some(d) = self.deadline {
            if now >= d {
                return Err(self.trip(BudgetExceeded::Deadline));
            }
        }
        Ok(())
    }

    fn trip(&self, e: BudgetExceeded) -> BudgetExceeded {
        self.exceeded.set(Some(e));
        e
    }

    /// Accounts one queue pop and runs a checkpoint.
    ///
    /// # Errors
    ///
    /// Fails with [`BudgetExceeded::PopLimit`] when the pop cap is
    /// reached, or whatever [`Budget::tick`] reports.
    pub fn note_pop(&self) -> Result<(), BudgetExceeded> {
        let pops = self.pops.get() + 1;
        self.pops.set(pops);
        if pops >= self.max_pops {
            return Err(self.trip(BudgetExceeded::PopLimit));
        }
        self.tick()
    }

    /// Accounts evaluation fuel actually consumed by verification.
    ///
    /// # Errors
    ///
    /// Fails with [`BudgetExceeded::FuelLimit`] when cumulative fuel
    /// crosses the cap.
    pub fn charge_fuel(&self, used: u64) -> Result<(), BudgetExceeded> {
        let spent = self.fuel_spent.get().saturating_add(used);
        self.fuel_spent.set(spent);
        if spent >= self.max_fuel {
            return Err(self.trip(BudgetExceeded::FuelLimit));
        }
        Ok(())
    }

    /// Records the current total store footprint (keeps the high-water
    /// mark for the snapshot).
    pub fn note_store_bytes(&self, bytes: usize) {
        if bytes > self.peak_store_bytes.get() {
            self.peak_store_bytes.set(bytes);
        }
    }

    /// Latches a deadline verdict immediately, as if the clock had
    /// expired. Used by the fail-point harness to make mid-phase expiry
    /// deterministic, and available to embedders as a synchronous abort.
    pub fn force_expire(&self) {
        self.trip(BudgetExceeded::Deadline);
    }

    /// `true` once any limit has tripped.
    pub fn is_exceeded(&self) -> bool {
        self.exceeded.get().is_some()
    }

    /// Consumes a pending progress heartbeat, if one is due.
    ///
    /// Heartbeats piggyback on the adaptive clock polls: a poll that
    /// observes at least [`HEARTBEAT_INTERVAL`] since the previous
    /// heartbeat arms the flag, and this call disarms it. One `Cell` read
    /// when nothing is due, so the search loop can ask on every pop.
    /// Purely observational — never affects any limit verdict.
    pub fn take_heartbeat(&self) -> bool {
        if !self.heartbeat_ready.get() {
            return false;
        }
        self.heartbeat_ready.set(false);
        self.last_heartbeat.set(self.last_poll.get());
        true
    }

    /// A point-in-time summary of the budget's accounting.
    pub fn snapshot(&self) -> BudgetSnapshot {
        BudgetSnapshot {
            pops: self.pops.get(),
            fuel_spent: self.fuel_spent.get(),
            peak_store_bytes: self.peak_store_bytes.get(),
            ticks: self.ticks.get(),
            elapsed: self.start.elapsed(),
            exceeded: self.exceeded.get(),
        }
    }
}

/// What a [`Budget`] had consumed when it was snapshotted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetSnapshot {
    /// Queue pops accounted.
    pub pops: u64,
    /// Evaluation fuel consumed by verification.
    pub fuel_spent: u64,
    /// High-water mark of the enumeration stores' byte footprint.
    pub peak_store_bytes: usize,
    /// Checkpoints executed (a measure of governance coverage).
    pub ticks: u64,
    /// Wall-clock time since the budget was created.
    pub elapsed: Duration,
    /// The limit that tripped, if any.
    pub exceeded: Option<BudgetExceeded>,
}

impl BudgetSnapshot {
    /// Serializes the snapshot as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("pops", self.pops.into()),
            ("fuel_spent", self.fuel_spent.into()),
            ("peak_store_bytes", self.peak_store_bytes.into()),
            ("ticks", self.ticks.into()),
            ("elapsed_ms", Json::Float(self.elapsed.as_secs_f64() * 1e3)),
            (
                "exceeded",
                match self.exceeded {
                    Some(e) => e.name().into(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// One open hypothesis from the queue at the moment a search gave up —
/// the *anytime* result: the cheapest partial programs still under
/// consideration, best-first, so a caller can display or persist where
/// the search was headed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrontierItem {
    /// The hypothesis sketch, holes rendered as `?N`.
    pub sketch: String,
    /// Its admissible cost bound (queue priority).
    pub cost: u32,
    /// Open holes remaining.
    pub holes: usize,
}

impl FrontierItem {
    /// Serializes the item as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("sketch", self.sketch.as_str().into()),
            ("cost", self.cost.into()),
            ("holes", self.holes.into()),
        ])
    }
}

/// Which rung of the retry ladder produced an [`Attempt`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rung {
    /// The caller's options, unmodified.
    Full,
    /// Tightened term-cost caps (cheaper, less complete).
    Degraded,
    /// The pure enumerative baseline engine.
    Baseline,
}

impl Rung {
    /// The stable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Rung::Full => "full",
            Rung::Degraded => "degraded",
            Rung::Baseline => "baseline",
        }
    }
}

/// One synthesis attempt recorded by the retry ladder.
#[derive(Clone, Debug)]
pub struct Attempt {
    /// Which configuration ran.
    pub rung: Rung,
    /// `None` on success; the terminal error otherwise.
    pub error: Option<SynthError>,
    /// Wall-clock time the attempt took.
    pub elapsed: Duration,
}

impl Attempt {
    /// Serializes the attempt as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("rung", self.rung.name().into()),
            (
                "error",
                match &self.error {
                    Some(e) => e.to_string().into(),
                    None => Json::Null,
                },
            ),
            ("elapsed_ms", Json::Float(self.elapsed.as_secs_f64() * 1e3)),
        ])
    }
}

/// The full outcome of a governed synthesis: success or failure, plus
/// everything the engine knows about how it got there.
///
/// Unlike the bare `Result` of `search`, a report is returned on *every*
/// path — budget exhaustion, cancellation, injected faults — so batch
/// harnesses and services always get structured data, never a wedged
/// process.
#[derive(Clone, Debug)]
pub struct SearchReport {
    /// The terminal result.
    pub outcome: Result<Synthesis, SynthError>,
    /// Best-cost open hypotheses at termination (empty on success).
    pub frontier: Vec<FrontierItem>,
    /// Search counters, merged across retry-ladder attempts.
    pub stats: Stats,
    /// Total wall-clock time across attempts.
    pub elapsed: Duration,
    /// Resource accounting of the primary attempt's budget.
    pub budget: BudgetSnapshot,
    /// Every attempt the retry ladder made, in order.
    pub attempts: Vec<Attempt>,
}

impl SearchReport {
    /// `true` when a program was found (by any rung).
    pub fn is_success(&self) -> bool {
        self.outcome.is_ok()
    }

    /// Flattens the report into the harness record format
    /// ([`crate::stats::Measurement`]) used by bench output and
    /// `l2 --stats-json`.
    pub fn to_measurement(&self, name: &str, examples: usize) -> crate::stats::Measurement {
        let (cost, size, program) = match &self.outcome {
            Ok(s) => (s.cost, s.program.body().size(), s.program.to_string()),
            Err(_) => (0, 0, String::new()),
        };
        crate::stats::Measurement {
            name: name.to_owned(),
            elapsed: self.elapsed,
            solved: self.is_success(),
            cost,
            size,
            program,
            examples,
            stats: self.stats.clone(),
            error: self.outcome.as_ref().err().map(ToString::to_string),
        }
    }

    /// Like [`SearchReport::to_measurement`] with the bench harness's
    /// charging convention: solved runs report their own synthesis time
    /// and counters, timeouts are charged the full `budget`, other
    /// failures report zero elapsed.
    pub fn to_measurement_budgeted(
        &self,
        name: &str,
        examples: usize,
        budget: Duration,
    ) -> crate::stats::Measurement {
        match &self.outcome {
            Ok(s) => crate::stats::Measurement {
                name: name.to_owned(),
                elapsed: s.elapsed,
                solved: true,
                cost: s.cost,
                size: s.program.body().size(),
                program: s.program.to_string(),
                examples,
                stats: s.stats.clone(),
                error: None,
            },
            Err(e) => crate::stats::Measurement {
                name: name.to_owned(),
                elapsed: if matches!(e, SynthError::Timeout) {
                    budget
                } else {
                    Duration::ZERO
                },
                solved: false,
                cost: 0,
                size: 0,
                program: String::new(),
                examples,
                stats: crate::stats::Stats::default(),
                error: Some(e.to_string()),
            },
        }
    }

    /// Serializes the report (minus the program itself — see
    /// [`crate::stats::Measurement`] for the harness record) as JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("solved", self.is_success().into()),
            (
                "error",
                match &self.outcome {
                    Ok(_) => Json::Null,
                    Err(e) => e.to_string().into(),
                },
            ),
            ("elapsed_ms", Json::Float(self.elapsed.as_secs_f64() * 1e3)),
            (
                "frontier",
                Json::Arr(self.frontier.iter().map(FrontierItem::to_json).collect()),
            ),
            ("budget", self.budget.to_json()),
            (
                "attempts",
                Json::Arr(self.attempts.iter().map(Attempt::to_json).collect()),
            ),
            ("stats", self.stats.to_json()),
        ])
    }
}

/// Renders a caught panic payload for traces and error records.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        for _ in 0..100_000 {
            b.tick().unwrap();
        }
        b.note_pop().unwrap();
        b.charge_fuel(1_000_000).unwrap();
        assert!(!b.is_exceeded());
        let s = b.snapshot();
        assert_eq!(s.pops, 1);
        assert_eq!(s.fuel_spent, 1_000_000);
        assert_eq!(s.exceeded, None);
    }

    #[test]
    fn deadline_trips_and_latches() {
        let b = Budget::new(Some(Duration::ZERO), Duration::from_millis(1));
        // The first poll observes the expired deadline.
        let e = b.check_now().unwrap_err();
        assert_eq!(e, BudgetExceeded::Deadline);
        // ...and every subsequent tick fails identically (latched).
        assert_eq!(b.tick().unwrap_err(), BudgetExceeded::Deadline);
        assert_eq!(b.snapshot().exceeded, Some(BudgetExceeded::Deadline));
        assert_eq!(e.to_synth_error(), SynthError::Timeout);
    }

    #[test]
    fn cancel_token_is_observed_at_the_next_poll() {
        let b = Budget::unlimited();
        let token = b.cancel_token();
        b.check_now().unwrap();
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(b.check_now().unwrap_err(), BudgetExceeded::Cancelled);
        assert_eq!(
            BudgetExceeded::Cancelled.to_synth_error(),
            SynthError::Cancelled
        );
    }

    #[test]
    fn pop_and_fuel_limits_trip() {
        let mut b = Budget::unlimited();
        b.max_pops = 3;
        b.max_fuel = 10;
        b.note_pop().unwrap();
        b.note_pop().unwrap();
        assert_eq!(b.note_pop().unwrap_err(), BudgetExceeded::PopLimit);

        let mut b = Budget::unlimited();
        b.max_fuel = 10;
        b.charge_fuel(9).unwrap();
        assert_eq!(b.charge_fuel(1).unwrap_err(), BudgetExceeded::FuelLimit);
        assert_eq!(
            BudgetExceeded::FuelLimit.to_synth_error(),
            SynthError::FuelExhausted
        );
    }

    #[test]
    fn force_expire_is_seen_by_the_very_next_tick() {
        let b = Budget::unlimited();
        // Warm the stride up so ordinary ticks skip the clock...
        for _ in 0..10_000 {
            b.tick().unwrap();
        }
        // ...yet a forced expiry is still caught immediately: the latched
        // verdict is checked on every tick, not only at poll boundaries.
        b.force_expire();
        assert_eq!(b.tick().unwrap_err(), BudgetExceeded::Deadline);
    }

    #[test]
    fn stride_adapts_but_stays_bounded() {
        let b = Budget::new(Some(Duration::from_secs(60)), Duration::from_millis(100));
        for _ in 0..1_000_000 {
            b.tick().unwrap();
        }
        assert!(b.stride.get() >= 1);
        assert!(b.stride.get() <= MAX_STRIDE);
        // Store-byte high-water mark.
        b.note_store_bytes(100);
        b.note_store_bytes(50);
        assert_eq!(b.snapshot().peak_store_bytes, 100);
    }

    #[test]
    fn heartbeats_ride_polls_and_are_rate_limited() {
        let b = Budget::unlimited();
        // Nothing due until a poll observes the interval elapsed.
        assert!(!b.take_heartbeat());
        b.check_now().unwrap();
        assert!(!b.take_heartbeat());
        std::thread::sleep(HEARTBEAT_INTERVAL);
        b.check_now().unwrap();
        assert!(b.take_heartbeat());
        // Consumed: disarmed until the interval elapses again.
        assert!(!b.take_heartbeat());
        b.check_now().unwrap();
        assert!(!b.take_heartbeat());
    }

    #[test]
    fn snapshot_json_shape() {
        let b = Budget::unlimited();
        b.note_pop().unwrap();
        let j = b.snapshot().to_json();
        assert_eq!(j.get("pops").and_then(|v| v.as_i64()), Some(1));
        assert!(j.get("elapsed_ms").is_some());
        assert_eq!(j.get("exceeded"), Some(&Json::Null));
        let b2 = Budget::new(Some(Duration::ZERO), Duration::ZERO);
        let _ = b2.check_now();
        let j2 = b2.snapshot().to_json();
        assert_eq!(
            j2.get("exceeded").and_then(|v| v.as_str()),
            Some("deadline")
        );
    }

    #[test]
    fn panic_message_extracts_common_payloads() {
        let p = std::panic::catch_unwind(|| panic!("boom")).unwrap_err();
        assert_eq!(panic_message(&*p), "boom");
        let p = std::panic::catch_unwind(|| panic!("boom {}", 42)).unwrap_err();
        assert_eq!(panic_message(&*p), "boom 42");
    }
}
