//! Bottom-up term enumeration with observational-equivalence pruning.
//!
//! Holes that are not expanded with a combinator are *closed* with
//! combinator-free expressions (variables, constants, operators, `if`).
//! Terms are generated bottom-up in strict cost order and evaluated
//! compositionally on the hole's example environments; two terms with
//! identical output vectors ("signatures") are interchangeable for this
//! hole, so only the cheapest representative is kept. This is the
//! enumerative-search leg of the paper's algorithm.
//!
//! The same store also supplies *collection candidates* (list- or
//! tree-typed terms such as `l`, `(cdr l)`, `(children t)`) for combinator
//! expansion, so their per-row values are computed once and reused by every
//! deduction rule.

use std::collections::HashMap;
use std::sync::Arc;

use lambda2_lang::ast::Expr;
use lambda2_lang::env::Env;
use lambda2_lang::error::EvalError;
use lambda2_lang::symbol::Symbol;
use lambda2_lang::term::{Node, TermArena, TermId};
use lambda2_lang::ty::{Subst, Type};
use lambda2_lang::value::Value;

use crate::failpoints::{self, FailAction};
use crate::govern::{Budget, BudgetExceeded};
use crate::library::Library;
use crate::obs::metrics::Histogram;
use crate::spec::Spec;

/// A term's outputs on each example environment.
pub type Signature = Vec<Result<Value, EvalError>>;

/// Key identifying an enumeration context: the variables in scope (with
/// types) and the example environments. Two holes with equal keys see
/// exactly the same term universe, so stores are cached on this key.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct StoreKey {
    scope: Vec<(Symbol, String)>,
    envs: Vec<Vec<(Symbol, Value)>>,
    probes: Vec<Vec<(Symbol, Value)>>,
}

impl StoreKey {
    /// Builds the key for a scope and the environments of a spec.
    pub fn new(scope: &[(Symbol, Type)], spec: &Spec) -> StoreKey {
        StoreKey::with_probes(scope, spec, &[])
    }

    /// Like [`StoreKey::new`], additionally keyed on trace-probe
    /// environments (see [`crate::deduce::Deduction::probes`]).
    pub fn with_probes(scope: &[(Symbol, Type)], spec: &Spec, probes: &[Env]) -> StoreKey {
        StoreKey {
            scope: scope
                .iter()
                .map(|(s, t)| (*s, canonical(t).to_string()))
                .collect(),
            envs: spec.envs().map(Env::fingerprint).collect(),
            probes: probes.iter().map(Env::fingerprint).collect(),
        }
    }
}

/// Hard limits guarding against blow-up when observational equivalence is
/// unavailable (empty-spec holes in the no-deduction ablation).
#[derive(Clone, Copy, Debug)]
pub struct EnumLimits {
    /// Maximum number of terms kept per cost level.
    pub max_level_terms: usize,
    /// Maximum number of terms kept in the whole store.
    pub max_terms: usize,
    /// Evaluate terms on synthetic perturbation probes (see
    /// [`TermStore::with_probes`]). Disabling is an ablation knob.
    pub synthetic_probes: bool,
}

impl Default for EnumLimits {
    /// Loose safety valves: memory across stores is governed globally by
    /// the search's byte budget (LRU store eviction), so per-store caps
    /// only guard against single-context blow-ups.
    fn default() -> EnumLimits {
        EnumLimits {
            max_level_terms: 150_000,
            max_terms: 1_500_000,
            synthetic_probes: true,
        }
    }
}

/// An enumerated term: interned id, type, signature, and cost.
#[derive(Clone, Debug)]
pub struct TermEntry {
    /// The interned term (combinator-free, lambda-free) in the owning
    /// store's arena; materialize with [`TermStore::expr_of`].
    pub term: TermId,
    /// Its (canonicalized) type; may contain variables for empty containers.
    pub ty: Type,
    /// Its outputs per example environment (empty when there are none).
    pub sig: Signature,
    /// Its exact cost.
    pub cost: u32,
}

/// A cost-stratified store of enumerated terms for one context.
#[derive(Debug)]
pub struct TermStore {
    scope: Vec<(Symbol, Type)>,
    envs: Vec<Env>,
    /// Number of leading entries of `envs` that are real spec rows; the
    /// rest are dedup probes. Closing checks and argument values use only
    /// the row part.
    n_rows: usize,
    /// Hash-consing arena holding every kept term. Append-only: rollbacks
    /// drop [`TermEntry`]s but never arena nodes — re-building a rolled
    /// back level re-interns identical content onto identical ids, so the
    /// store stays a deterministic cache.
    arena: TermArena,
    terms: Vec<TermEntry>,
    levels: Vec<Vec<usize>>, // levels[k] = indices of terms with cost k
    // Observational-equivalence index: hash of (type, signature) -> term
    // indices with that hash (collisions resolved by real comparison).
    seen: HashMap<u64, Vec<usize>>,
    built_upto: u32,
    limits: EnumLimits,
    truncated: bool,
    approx_bytes: usize,
    /// Monotone count of terms ever materialized into this store. Unlike
    /// `terms.len()` it never decreases: level rollbacks and (at the
    /// search level) LRU eviction + rebuild keep adding to it, so it
    /// measures enumeration *work done*, not the current cache size.
    inserted: u64,
    /// Terms surviving dedup per *completed* enumeration level — one
    /// observation per level built. The search folds this into
    /// `Stats::metrics` (once per store build; see `evict_stores`).
    level_terms: Histogram,
}

impl TermStore {
    /// Creates an empty store for a scope and the environments of `spec`.
    ///
    /// Besides the spec's environments, the store evaluates every term on
    /// deterministically *perturbed* probe environments. Probes sharpen
    /// the observational-equivalence classes: deduced specs are necessary
    /// but not sufficient, so two terms that agree on the (few) deduced
    /// rows may still behave differently on the full examples — without
    /// probes, deduplication could discard the true solution in favor of a
    /// row-equivalent term that fails final verification.
    pub fn new(scope: Vec<(Symbol, Type)>, spec: &Spec, limits: EnumLimits) -> TermStore {
        TermStore::with_probes(scope, spec, &[], limits)
    }

    /// Like [`TermStore::new`] with additional *trace probe* environments
    /// (real upcoming argument combinations emitted by deduction; see
    /// [`crate::deduce::Deduction::probes`]). Trace probes join the
    /// synthetic perturbation probes in the dedup signature.
    pub fn with_probes(
        scope: Vec<(Symbol, Type)>,
        spec: &Spec,
        trace_probes: &[Env],
        limits: EnumLimits,
    ) -> TermStore {
        let rows: Vec<Env> = spec.envs().cloned().collect();
        let n_rows = rows.len();
        let mut envs = rows;
        if limits.synthetic_probes {
            let probes = probe_envs(&envs);
            envs.extend(trace_probes.iter().cloned());
            envs.extend(probes);
        } else {
            envs.extend(trace_probes.iter().cloned());
        }
        TermStore {
            scope,
            envs,
            n_rows,
            arena: TermArena::new(),
            terms: Vec::new(),
            levels: vec![Vec::new()], // level 0 is always empty
            seen: HashMap::new(),
            built_upto: 0,
            limits,
            truncated: false,
            approx_bytes: 0,
            inserted: 0,
            level_terms: Histogram::new(crate::obs::metrics::EXP2_BOUNDS),
        }
    }

    /// `true` if a limit forced the store to drop terms; completeness up to
    /// the requested cost is no longer guaranteed.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Total number of terms currently stored.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Monotone count of terms ever materialized (survives rollbacks;
    /// never decreases). The search accumulates deltas of this counter
    /// into `Stats::enumerated_terms`.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Distribution of terms surviving dedup per completed level — one
    /// observation per level this store has built.
    pub fn level_terms(&self) -> &Histogram {
        &self.level_terms
    }

    /// Takes the per-level histogram, leaving it empty. A store parked in
    /// a [`WarmStores`] cache between searches has its levels folded into
    /// the owning run's metrics exactly once; clearing here keeps a later
    /// search from folding the same levels again.
    pub fn take_level_terms(&mut self) -> Histogram {
        std::mem::replace(
            &mut self.level_terms,
            Histogram::new(crate::obs::metrics::EXP2_BOUNDS),
        )
    }

    /// Rough heap footprint of the stored terms. Signatures dominate:
    /// each holds one value per environment, and values can be large
    /// nested structures; the search's eviction budget is denominated in
    /// these bytes rather than in term counts.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// `true` if no terms are stored.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Materializes an entry's expression from the arena (memoized:
    /// repeated extraction of the same term returns one shared `Arc`).
    pub fn expr_of(&self, t: &TermEntry) -> Arc<Expr> {
        self.arena.extract(t.term)
    }

    /// Renders an entry's expression (test/debug aid).
    pub fn render(&self, t: &TermEntry) -> String {
        self.arena.render(t.term)
    }

    /// Asserts that interned-id equality agrees with structural equality
    /// for every stored term: `intern(extract(id)) == id`. Compiled in
    /// only under `check-invariants`.
    #[cfg(feature = "check-invariants")]
    pub fn assert_term_invariants(&mut self) {
        for i in 0..self.terms.len() {
            let id = self.terms[i].term;
            self.arena.assert_roundtrip(id);
        }
    }

    /// Builds all levels up to and including `cost`.
    pub fn ensure(&mut self, cost: u32, library: &Library) {
        self.ensure_within(cost, library, &Budget::unlimited())
            .expect("an unlimited budget cannot trip");
    }

    /// [`TermStore::ensure`] under a resource [`Budget`]: the budget is
    /// ticked inside every candidate loop, so a deadline or cancellation
    /// interrupts level construction mid-way with bounded overshoot.
    ///
    /// On abort the partially built level is **rolled back** — terms,
    /// dedup index, and byte accounting return to the last completed
    /// level — so an interrupted store remains a deterministic cache: a
    /// later `ensure` (e.g. from a retry) rebuilds the level from scratch
    /// and produces exactly the terms an uninterrupted build would have.
    ///
    /// # Errors
    ///
    /// Propagates the budget's (latched) [`BudgetExceeded`] verdict.
    pub fn ensure_within(
        &mut self,
        cost: u32,
        library: &Library,
        budget: &Budget,
    ) -> Result<(), BudgetExceeded> {
        while self.built_upto < cost {
            if let Some(FailAction::ExpireDeadline) = failpoints::check("enumerate.level") {
                budget.force_expire();
            }
            budget.check_now()?;
            let next = self.built_upto + 1;
            if let Err(e) = self.build_level(next, library, budget) {
                self.rollback_level(next);
                return Err(e);
            }
            self.level_terms
                .record_usize(self.levels.get(next as usize).map_or(0, Vec::len));
            self.built_upto = next;
        }
        Ok(())
    }

    /// Undoes a partially built level `cost`: pops the level, drops its
    /// terms (always a suffix of `terms` — inserts only append), removes
    /// them from the dedup index, and returns their bytes.
    fn rollback_level(&mut self, cost: u32) {
        debug_assert_eq!(self.levels.len(), cost as usize + 1);
        let removed = self.levels.pop().expect("level was pushed at build entry");
        let keep = self.terms.len() - removed.len();
        debug_assert!(removed.iter().all(|&i| i >= keep));
        for t in self.terms.drain(keep..) {
            self.approx_bytes -= 160
                + t.sig
                    .iter()
                    .map(|r| match r {
                        Ok(v) => 24 * v.size(),
                        Err(_) => 8,
                    })
                    .sum::<usize>();
            if !self.envs.is_empty() {
                use std::hash::{Hash, Hasher};
                let mut h = std::collections::hash_map::DefaultHasher::new();
                t.ty.hash(&mut h);
                t.sig.hash(&mut h);
                let key = h.finish();
                if let Some(bucket) = self.seen.get_mut(&key) {
                    bucket.retain(|&i| i < keep);
                    if bucket.is_empty() {
                        self.seen.remove(&key);
                    }
                }
            }
        }
    }

    /// Terms of exactly `cost` (must have been built with [`TermStore::ensure`]).
    pub fn at_cost(&self, cost: u32) -> impl Iterator<Item = &TermEntry> {
        self.levels
            .get(cost as usize)
            .into_iter()
            .flatten()
            .map(move |&i| &self.terms[i])
    }

    /// Terms of cost `<= cost`.
    pub fn up_to_cost(&self, cost: u32) -> impl Iterator<Item = &TermEntry> {
        (1..=cost).flat_map(move |k| self.at_cost(k))
    }

    /// Terms at exactly `cost` that close a hole of type `ty` with the given
    /// spec: the type must be compatible and the signature must match every
    /// row's output. For an empty spec only the type filter applies.
    pub fn closings<'a>(
        &'a self,
        cost: u32,
        ty: &'a Type,
        spec: &'a Spec,
    ) -> impl Iterator<Item = &'a TermEntry> {
        debug_assert_eq!(spec.len(), self.n_rows);
        self.at_cost(cost).filter(move |t| {
            if !unifiable(&t.ty, ty) {
                return false;
            }
            if spec.is_empty() {
                return true;
            }
            t.sig[..self.n_rows]
                .iter()
                .zip(spec.rows())
                .all(|(s, row)| matches!(s, Ok(v) if *v == row.output))
        })
    }

    /// Terms of cost `<= cost` whose signature is error-free on every row,
    /// paired with their per-row values. These are the argument candidates
    /// for combinator expansion (collections and fold initial values).
    pub fn error_free(&self, cost: u32) -> Vec<(&TermEntry, Vec<Value>)> {
        let mut out = Vec::new();
        for t in self.up_to_cost(cost) {
            let mut vals = Vec::with_capacity(self.n_rows);
            let mut ok = true;
            for s in &t.sig[..self.n_rows] {
                match s {
                    Ok(v) => vals.push(v.clone()),
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                out.push((t, vals));
            }
        }
        out
    }

    /// Collection candidates for combinator expansion: list- or tree-typed
    /// terms of cost `<= cost` whose signature is error-free on every row.
    /// Returns `(entry, per-row values)`.
    pub fn collections(&self, cost: u32) -> Vec<(&TermEntry, Vec<Value>)> {
        self.error_free(cost)
            .into_iter()
            .filter(|(t, _)| matches!(t.ty, Type::List(_) | Type::Tree(_)))
            .collect()
    }

    fn build_level(
        &mut self,
        cost: u32,
        library: &Library,
        budget: &Budget,
    ) -> Result<(), BudgetExceeded> {
        debug_assert_eq!(self.levels.len(), cost as usize);
        self.levels.push(Vec::new());
        let costs = library.costs().clone();

        // Leaves: constants.
        if cost == costs.lit {
            for c in library.constants() {
                let mut n = 0u32;
                let ty = c.type_of(&mut || {
                    n += 1;
                    Type::Var(n - 1)
                });
                let sig: Signature = self.envs.iter().map(|_| Ok(c.clone())).collect();
                self.insert(Node::Lit(c.clone()), ty, sig, cost);
            }
        }
        // Leaves: variables.
        if cost == costs.var {
            for (sym, ty) in self.scope.clone() {
                let sig: Signature = self
                    .envs
                    .iter()
                    .map(|env| env.lookup(sym).cloned().ok_or(EvalError::Unbound(sym)))
                    .collect();
                self.insert(Node::Var(sym), ty.clone(), sig, cost);
            }
        }

        // Operator applications, iterating only shape-compatible argument
        // candidates via the per-level shape index (arithmetic never sees
        // list-typed terms, `car` never sees integers, …).
        for &op in library.ops() {
            if self.over_op_limit(cost) {
                break;
            }
            let node = costs.op_cost(op);
            if cost <= node {
                continue;
            }
            let arg_budget = cost - node;
            match op.arity() {
                1 => {
                    let shape = unary_arg_shape(op);
                    for i in self.shaped_indices(arg_budget, shape) {
                        budget.tick()?;
                        self.try_op1(op, i, cost);
                        if self.over_op_limit(cost) {
                            break;
                        }
                    }
                }
                2 => {
                    let (s1, s2) = binary_arg_shapes(op);
                    for k1 in 1..arg_budget {
                        if self.over_op_limit(cost) {
                            break;
                        }
                        let k2 = arg_budget - k1;
                        let lhs = self.shaped_indices(k1, s1);
                        if lhs.is_empty() {
                            continue;
                        }
                        let rhs = self.shaped_indices(k2, s2);
                        'op2: for &i in &lhs {
                            for &j in &rhs {
                                budget.tick()?;
                                self.try_op2(op, i, j, cost);
                                if self.over_op_limit(cost) {
                                    break 'op2;
                                }
                            }
                        }
                    }
                }
                _ => unreachable!("operators have arity 1 or 2"),
            }
        }

        // Conditionals: branches must share a type, so iterate same-type
        // buckets (plus the rare variable-typed terms against everything).
        // Buckets are iterated lazily — materializing the cross product
        // can reach hundreds of millions of pairs on large levels.
        if cost > costs.if_ {
            let arg_budget = cost - costs.if_;
            for kc in 1..arg_budget.saturating_sub(1) {
                let conds = self.shaped_indices(kc, Shape::Bool);
                if conds.is_empty() {
                    continue;
                }
                for kt in 1..arg_budget - kc {
                    let ke = arg_budget - kc - kt;
                    let thens = self.type_buckets(kt);
                    let elses = self.type_buckets(ke);
                    for (tty, tis) in &thens {
                        for (ety, eis) in &elses {
                            // Ground types must match exactly; any
                            // variable-typed side joins with everything
                            // (the precise join is re-checked in try_if).
                            let compatible = if tty.is_ground() && ety.is_ground() {
                                tty == ety
                            } else {
                                true
                            };
                            if !compatible {
                                continue;
                            }
                            for &ti in tis {
                                for &ei in eis {
                                    for &ci in &conds {
                                        budget.tick()?;
                                        self.try_if(ci, ti, ei, cost);
                                        if self.over_limit(cost) {
                                            return Ok(());
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Groups a level's term indices by canonical type.
    fn type_buckets(&self, cost: u32) -> Vec<(Type, Vec<usize>)> {
        let mut out: Vec<(Type, Vec<usize>)> = Vec::new();
        for &i in self.levels.get(cost as usize).into_iter().flatten() {
            let ty = &self.terms[i].ty;
            match out.iter_mut().find(|(t, _)| t == ty) {
                Some((_, ids)) => ids.push(i),
                None => out.push((ty.clone(), vec![i])),
            }
        }
        out
    }

    /// Indices at exactly `cost` whose type matches `shape` (variable-typed
    /// terms match every shape).
    fn shaped_indices(&self, cost: u32, shape: Shape) -> Vec<usize> {
        self.levels
            .get(cost as usize)
            .into_iter()
            .flatten()
            .copied()
            .filter(|&i| shape.admits(&self.terms[i].ty))
            .collect()
    }

    fn over_limit(&mut self, cost: u32) -> bool {
        self.over_cap(cost, self.limits.max_level_terms)
    }

    /// Like [`TermStore::over_limit`] with a reduced level cap — the
    /// operator phase leaves headroom so conditionals (built last) are
    /// never entirely starved when a level truncates.
    fn over_op_limit(&mut self, cost: u32) -> bool {
        self.over_cap(cost, self.limits.max_level_terms / 4 * 3)
    }

    fn over_cap(&mut self, cost: u32, level_cap: usize) -> bool {
        let over = self.levels[cost as usize].len() >= level_cap
            || self.terms.len() >= self.limits.max_terms;
        if over {
            self.truncated = true;
        }
        over
    }

    fn try_op1(&mut self, op: lambda2_lang::ast::Op, i: usize, cost: u32) {
        let Some(ret) = op_result_type(op, &[self.terms[i].ty.clone()]) else {
            return;
        };
        let sig: Signature = self.terms[i]
            .sig
            .iter()
            .map(|a| match a {
                Ok(v) => op.apply(std::slice::from_ref(v)),
                Err(e) => Err(*e),
            })
            .collect();
        if self.all_err(&sig) {
            return;
        }
        self.insert(Node::Op1(op, self.terms[i].term), ret, sig, cost);
    }

    fn try_op2(&mut self, op: lambda2_lang::ast::Op, i: usize, j: usize, cost: u32) {
        let Some(ret) = op_result_type(op, &[self.terms[i].ty.clone(), self.terms[j].ty.clone()])
        else {
            return;
        };
        let sig: Signature = self.terms[i]
            .sig
            .iter()
            .zip(&self.terms[j].sig)
            .map(|(a, b)| match (a, b) {
                (Ok(x), Ok(y)) => op.apply(&[x.clone(), y.clone()]),
                (Err(e), _) | (_, Err(e)) => Err(*e),
            })
            .collect();
        if self.all_err(&sig) {
            return;
        }
        self.insert(
            Node::Op2(op, self.terms[i].term, self.terms[j].term),
            ret,
            sig,
            cost,
        );
    }

    fn try_if(&mut self, ci: usize, ti: usize, ei: usize, cost: u32) {
        let (tty, ety) = (self.terms[ti].ty.clone(), self.terms[ei].ty.clone());
        let Some(ret) = join_types(&tty, &ety) else {
            return;
        };
        let sig: Signature = (0..self.envs.len().max(self.terms[ci].sig.len()))
            .map(|r| match &self.terms[ci].sig[r] {
                Ok(Value::Bool(true)) => self.terms[ti].sig[r].clone(),
                Ok(Value::Bool(false)) => self.terms[ei].sig[r].clone(),
                Ok(_) => Err(EvalError::TypeMismatch),
                Err(e) => Err(*e),
            })
            .collect();
        if self.all_err(&sig) {
            return;
        }
        self.insert(
            Node::If(
                self.terms[ci].term,
                self.terms[ti].term,
                self.terms[ei].term,
            ),
            ret,
            sig,
            cost,
        );
    }

    fn all_err(&self, sig: &Signature) -> bool {
        self.n_rows > 0 && sig[..self.n_rows].iter().all(Result::is_err)
    }

    fn insert(&mut self, node: Node, ty: Type, sig: Signature, cost: u32) {
        let ty = canonical(&ty);
        // Observational equivalence: with at least one environment, terms
        // with equal (type, signature) are interchangeable — keep the first
        // (cheapest, since levels are built in cost order).
        if !self.envs.is_empty() {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            ty.hash(&mut h);
            sig.hash(&mut h);
            let key = h.finish();
            let bucket = self.seen.entry(key).or_default();
            if bucket
                .iter()
                .any(|&i| self.terms[i].ty == ty && self.terms[i].sig == sig)
            {
                return;
            }
            bucket.push(self.terms.len());
        }
        let idx = self.terms.len();
        self.inserted += 1;
        self.approx_bytes += 160
            + sig
                .iter()
                .map(|r| match r {
                    Ok(v) => 24 * v.size(),
                    Err(_) => 8,
                })
                .sum::<usize>();
        // Intern only terms that survive dedup: the arena holds exactly
        // the kept universe (entries sharing a structurally identical
        // term — possible only in dedup-free empty-spec stores — share
        // one id).
        let term = self.arena.intern(node);
        self.terms.push(TermEntry {
            term,
            ty,
            sig,
            cost,
        });
        self.levels[cost as usize].push(idx);
    }
}

/// Deterministic probe environments: for each of (up to) the first three
/// row environments, two variants with every binding perturbed. Perturbing
/// keeps the value's type: integers shift, booleans flip, lists and trees
/// grow or shrink.
fn probe_envs(rows: &[Env]) -> Vec<Env> {
    fn perturb(v: &Value, variant: i64) -> Value {
        match v {
            Value::Int(n) => Value::Int(n.wrapping_add(variant).wrapping_mul(2) + 1),
            Value::Bool(b) => Value::Bool(*b == (variant % 2 == 0)),
            Value::List(xs) => {
                let mut out: Vec<Value> = xs.iter().map(|x| perturb(x, variant)).collect();
                match xs.first() {
                    Some(first) if variant % 2 == 0 => {
                        // Grow: duplicate-and-perturb the first element.
                        out.insert(0, perturb(first, variant + 1));
                    }
                    Some(_) => {
                        out.remove(0);
                    }
                    None => {
                        // Empty lists MUST change under perturbation:
                        // otherwise a term seeded from `[]` (e.g. a fold
                        // accumulator) would be probe-equal to one that
                        // ignores it. The seed may be heterogeneous with
                        // the list's nominal element type — probes are
                        // dedup-only, so a type-error entry in the
                        // signature distinguishes just as well.
                        out.push(Value::Int(variant.wrapping_mul(3) + 2));
                    }
                }
                Value::list(out)
            }
            Value::Tree(t) => match t.root() {
                None => {
                    // Same reasoning as empty lists: seed a node.
                    Value::Tree(lambda2_lang::value::Tree::node(
                        Value::Int(variant.wrapping_mul(5) + 3),
                        Vec::new(),
                    ))
                }
                Some(n) => {
                    if variant % 2 == 0 {
                        Value::Tree(lambda2_lang::value::Tree::node(
                            perturb(&n.value, variant),
                            n.children.clone(),
                        ))
                    } else {
                        // Shrink: drop the children.
                        Value::Tree(lambda2_lang::value::Tree::node(
                            perturb(&n.value, variant),
                            Vec::new(),
                        ))
                    }
                }
            },
            Value::Pair(p) => Value::pair(perturb(&p.0, variant), perturb(&p.1, variant + 1)),
            Value::Closure(_) | Value::Comb(_) => v.clone(),
        }
    }
    let mut out = Vec::new();
    // Few rows mean coarse observational classes; compensate with more
    // probe variants so distinct behaviors stay distinct (a single-row
    // store gets 8 probes, three-plus rows get 2 each).
    let probed_rows = rows.len().clamp(1, 3);
    let variants_per_row = (8 / probed_rows).max(2);
    for (i, env) in rows.iter().take(3).enumerate() {
        for v in 0..variants_per_row {
            let variant = (variants_per_row * i + v) as i64;
            // Salt each binding differently: two variables that happen to
            // be *equal* in the rows (e.g. a fold accumulator seeded with
            // another variable) must diverge under the probes, or the
            // dedup would conflate terms that differ only in which of the
            // two they mention.
            let mut bindings: Vec<(Symbol, Value)> = env
                .bindings()
                .into_iter()
                .enumerate()
                .map(|(j, (s, v))| (s, perturb(v, variant * 16 + j as i64)))
                .collect();
            bindings.reverse(); // outermost first
            out.push(Env::from_bindings(bindings));
        }
    }
    out
}

/// Coarse type shapes used to pre-filter operator argument candidates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Shape {
    Int,
    Bool,
    List,
    Tree,
    Pair,
    Any,
}

impl Shape {
    fn admits(self, ty: &Type) -> bool {
        match self {
            Shape::Any => true,
            Shape::Int => matches!(ty, Type::Int | Type::Var(_)),
            Shape::Bool => matches!(ty, Type::Bool | Type::Var(_)),
            Shape::List => matches!(ty, Type::List(_) | Type::Var(_)),
            Shape::Tree => matches!(ty, Type::Tree(_) | Type::Var(_)),
            Shape::Pair => matches!(ty, Type::Pair(..) | Type::Var(_)),
        }
    }
}

fn unary_arg_shape(op: lambda2_lang::ast::Op) -> Shape {
    use lambda2_lang::ast::Op;
    match op {
        Op::Not => Shape::Bool,
        Op::Car | Op::Cdr | Op::IsEmpty | Op::Last => Shape::List,
        Op::TreeValue | Op::TreeChildren | Op::IsEmptyTree | Op::IsLeaf => Shape::Tree,
        Op::Fst | Op::Snd => Shape::Pair,
        _ => Shape::Any,
    }
}

fn binary_arg_shapes(op: lambda2_lang::ast::Op) -> (Shape, Shape) {
    use lambda2_lang::ast::Op;
    match op {
        Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod | Op::Lt | Op::Le | Op::Gt | Op::Ge => {
            (Shape::Int, Shape::Int)
        }
        Op::And | Op::Or => (Shape::Bool, Shape::Bool),
        Op::Cons | Op::Member => (Shape::Any, Shape::List),
        Op::Cat => (Shape::List, Shape::List),
        Op::TreeMake => (Shape::Any, Shape::List),
        Op::Eq | Op::Neq => (Shape::Any, Shape::Any),
        // Unary operators never reach this table.
        _ => (Shape::Any, Shape::Any),
    }
}

/// A cross-search enumeration-store cache with a byte-budgeted LRU.
///
/// Term stores are deterministic caches: a store's contents are a pure
/// function of its [`StoreKey`], the library, and the enumeration limits
/// it was built under. That makes them safe to reuse *across* searches —
/// the serve daemon parks each finished search's stores here (keyed by a
/// caller-supplied configuration fingerprint plus the [`StoreKey`]) and
/// seeds the next search for the same signature from them, amortizing
/// closed-term enumeration across requests.
///
/// Reuse never changes a search's answer: [`TermStore::ensure_within`]
/// only builds levels the store does not already have, and every read is
/// bounded by the cost the reader asks for, so a warm store behaves
/// observably like a cold one built to the same level (only the work
/// counters differ). Memory is bounded by `max_bytes`: inserting past the
/// budget evicts least-recently-used entries.
///
/// Since the arena refactor made [`TermStore`] `Send`, a `WarmStores` can
/// move between threads; for *shared* concurrent access wrap it in a
/// [`WarmCache`] (one mutex-guarded cache for a whole worker pool).
#[derive(Debug)]
pub struct WarmStores {
    max_bytes: usize,
    tick: u64,
    entries: HashMap<(u64, StoreKey), (TermStore, u64)>,
    /// Incrementally maintained sum of parked stores' `approx_bytes`.
    /// Audited against a full recomputation under `check-invariants`
    /// (the PR 3 bug class: evicted entries vanishing from totals).
    total_bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl WarmStores {
    /// An empty cache holding at most ~`max_bytes` of store footprint.
    pub fn new(max_bytes: usize) -> WarmStores {
        WarmStores {
            max_bytes,
            tick: 0,
            entries: HashMap::new(),
            total_bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Removes and returns the store cached under `(config, key)`, if any.
    /// Ownership moves to the caller (the running search); return it with
    /// [`WarmStores::put`] when the search finishes.
    pub fn take(&mut self, config: u64, key: &StoreKey) -> Option<TermStore> {
        let out = match self.entries.remove(&(config, key.clone())) {
            Some((store, _)) => {
                self.hits += 1;
                self.total_bytes -= store.approx_bytes();
                Some(store)
            }
            None => {
                self.misses += 1;
                None
            }
        };
        self.assert_accounting();
        out
    }

    /// Parks a store under `(config, key)`, then evicts least-recently-used
    /// entries until the cache fits its byte budget again. The histogram of
    /// per-level term counts is cleared on the way in (the owning run
    /// already folded it — see [`TermStore::take_level_terms`]).
    pub fn put(&mut self, config: u64, key: StoreKey, mut store: TermStore) {
        if self.max_bytes == 0 {
            return;
        }
        let _ = store.take_level_terms();
        self.tick += 1;
        self.total_bytes += store.approx_bytes();
        if let Some((replaced, _)) = self.entries.insert((config, key), (store, self.tick)) {
            // Re-parking over an existing entry replaces it; its bytes
            // must leave the total or the budget leaks upward forever.
            self.total_bytes -= replaced.approx_bytes();
        }
        while self.total_bytes > self.max_bytes && !self.entries.is_empty() {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(k, (s, _))| (k.clone(), s.approx_bytes()));
            match victim {
                Some((key, bytes)) => {
                    self.entries.remove(&key);
                    self.evictions += 1;
                    self.total_bytes -= bytes;
                }
                None => break,
            }
        }
        self.assert_accounting();
    }

    /// Number of stores currently parked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate heap footprint of every parked store (incrementally
    /// maintained; O(1)).
    pub fn approx_bytes(&self) -> usize {
        self.total_bytes
    }

    /// `(hits, misses, evictions)` since construction.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Drops every parked store (drain-time release).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.total_bytes = 0;
        self.assert_accounting();
    }

    /// Audits the incremental byte total against a full recomputation.
    /// A no-op unless `check-invariants` is enabled.
    #[cfg(feature = "check-invariants")]
    fn assert_accounting(&self) {
        let recomputed: usize = self.entries.values().map(|(s, _)| s.approx_bytes()).sum();
        assert_eq!(
            self.total_bytes, recomputed,
            "warm-cache byte accounting drifted from the parked stores"
        );
    }

    #[cfg(not(feature = "check-invariants"))]
    #[inline(always)]
    fn assert_accounting(&self) {}
}

/// A thread-shareable warm store cache: one mutex-guarded [`WarmStores`]
/// for a whole worker pool.
///
/// The serve daemon's workers all park into and seed from this single
/// cache, so a store warmed by one worker serves every later request for
/// the same signature regardless of which worker picks it up — and the
/// byte budget bounds the *pool's* total footprint instead of
/// `workers × budget`. Calls hold the lock only for the cache operation
/// itself (a map lookup plus byte accounting), never for a search.
#[derive(Debug)]
pub struct WarmCache(std::sync::Mutex<WarmStores>);

impl WarmCache {
    /// An empty shared cache holding at most ~`max_bytes` of footprint.
    pub fn new(max_bytes: usize) -> WarmCache {
        WarmCache(std::sync::Mutex::new(WarmStores::new(max_bytes)))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WarmStores> {
        // Cache ops don't panic mid-mutation; a poisoned lock only means
        // some *other* code panicked while holding it — the data is still
        // consistent, so recover rather than wedge every worker.
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// [`WarmStores::take`] under the lock.
    pub fn take(&self, config: u64, key: &StoreKey) -> Option<TermStore> {
        self.lock().take(config, key)
    }

    /// [`WarmStores::put`] under the lock.
    pub fn put(&self, config: u64, key: StoreKey, store: TermStore) {
        self.lock().put(config, key, store);
    }

    /// Number of stores currently parked.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Approximate heap footprint of every parked store.
    pub fn approx_bytes(&self) -> usize {
        self.lock().approx_bytes()
    }

    /// `(hits, misses, evictions)` since construction.
    pub fn counters(&self) -> (u64, u64, u64) {
        self.lock().counters()
    }

    /// Drops every parked store (drain-time release).
    pub fn clear(&self) {
        self.lock().clear();
    }
}

/// Renames type variables to `t0, t1, …` in first-occurrence order so that
/// structurally identical types compare equal.
pub fn canonical(ty: &Type) -> Type {
    let mut vs = Vec::new();
    ty.vars(&mut vs);
    if vs.is_empty() {
        return ty.clone();
    }
    fn go(ty: &Type, vs: &[u32]) -> Type {
        match ty {
            Type::Int | Type::Bool => ty.clone(),
            Type::List(e) => Type::list(go(e, vs)),
            Type::Tree(e) => Type::tree(go(e, vs)),
            Type::Pair(a, b) => Type::pair(go(a, vs), go(b, vs)),
            Type::Fun(ps, r) => Type::fun(ps.iter().map(|p| go(p, vs)).collect(), go(r, vs)),
            Type::Var(v) => {
                let i = vs.iter().position(|w| w == v).expect("collected var");
                Type::Var(u32::try_from(i).expect("few vars"))
            }
        }
    }
    go(ty, &vs)
}

/// `true` if two types unify (vars from the two sides are kept disjoint).
pub fn unifiable(a: &Type, b: &Type) -> bool {
    if a.is_ground() && b.is_ground() {
        return a == b;
    }
    let mut s = Subst::new();
    let a = s.instantiate(a);
    let b = s.instantiate(b);
    s.unify(&a, &b).is_ok()
}

/// Computes the result type of applying `op` to arguments of the given
/// types, or `None` if ill-typed. Argument type variables are treated as
/// independent unknowns.
///
/// This sits on the enumerator's hottest path (millions of candidate
/// pairs), so ground argument types take an allocation-free fast path;
/// only types containing variables (empty-container literals and their
/// derivatives) fall back to full unification.
pub fn op_result_type(op: lambda2_lang::ast::Op, args: &[Type]) -> Option<Type> {
    use lambda2_lang::ast::Op;
    if args.len() != op.arity() {
        return None;
    }
    if args.iter().all(Type::is_ground) {
        return match op {
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod => {
                (args[0] == Type::Int && args[1] == Type::Int).then_some(Type::Int)
            }
            Op::Lt | Op::Le | Op::Gt | Op::Ge => {
                (args[0] == Type::Int && args[1] == Type::Int).then_some(Type::Bool)
            }
            Op::Eq | Op::Neq => (args[0] == args[1]).then_some(Type::Bool),
            Op::And | Op::Or => {
                (args[0] == Type::Bool && args[1] == Type::Bool).then_some(Type::Bool)
            }
            Op::Not => (args[0] == Type::Bool).then_some(Type::Bool),
            Op::Cons => match &args[1] {
                Type::List(e) if **e == args[0] => Some(args[1].clone()),
                _ => None,
            },
            Op::Car | Op::Last => match &args[0] {
                Type::List(e) => Some((**e).clone()),
                _ => None,
            },
            Op::Cdr => matches!(args[0], Type::List(_)).then(|| args[0].clone()),
            Op::IsEmpty => matches!(args[0], Type::List(_)).then_some(Type::Bool),
            Op::Member => match &args[1] {
                Type::List(e) if **e == args[0] => Some(Type::Bool),
                _ => None,
            },
            Op::Cat => match (&args[0], &args[1]) {
                (Type::List(_), Type::List(_)) if args[0] == args[1] => Some(args[0].clone()),
                _ => None,
            },
            Op::TreeMake => match &args[1] {
                Type::List(inner) => match &**inner {
                    Type::Tree(e) if **e == args[0] => Some((**inner).clone()),
                    _ => None,
                },
                _ => None,
            },
            Op::TreeValue => match &args[0] {
                Type::Tree(e) => Some((**e).clone()),
                _ => None,
            },
            Op::TreeChildren => match &args[0] {
                Type::Tree(_) => Some(Type::list(args[0].clone())),
                _ => None,
            },
            Op::IsEmptyTree | Op::IsLeaf => matches!(args[0], Type::Tree(_)).then_some(Type::Bool),
            Op::MkPair => Some(Type::pair(args[0].clone(), args[1].clone())),
            Op::Fst => match &args[0] {
                Type::Pair(a, _) => Some((**a).clone()),
                _ => None,
            },
            Op::Snd => match &args[0] {
                Type::Pair(_, b) => Some((**b).clone()),
                _ => None,
            },
        };
    }
    op_result_type_slow(op, args)
}

fn op_result_type_slow(op: lambda2_lang::ast::Op, args: &[Type]) -> Option<Type> {
    let mut s = Subst::new();
    let scheme = s.instantiate(&op.type_scheme());
    let Type::Fun(params, ret) = scheme else {
        unreachable!("op schemes are functions")
    };
    if params.len() != args.len() {
        return None;
    }
    for (p, a) in params.iter().zip(args) {
        let a = s.instantiate(a); // disjoint vars per argument
        s.unify(p, &a).ok()?;
    }
    Some(s.apply(&ret))
}

/// The common instance of two types (for `if` branches), or `None`.
pub fn join_types(a: &Type, b: &Type) -> Option<Type> {
    if a.is_ground() && b.is_ground() {
        return (a == b).then(|| a.clone());
    }
    let mut s = Subst::new();
    let a = s.instantiate(a);
    let b = s.instantiate(b);
    s.unify(&a, &b).ok()?;
    Some(s.apply(&a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ExampleRow, Spec};
    use lambda2_lang::ast::Op;
    use lambda2_lang::parser::parse_value;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    /// Context: one int-list variable `l`, two example rows.
    fn store_with_rows() -> (TermStore, Spec) {
        let scope = vec![(sym("l"), Type::list(Type::Int))];
        let rows = vec![
            ExampleRow::new(
                Env::empty().bind(sym("l"), parse_value("[1 2]").unwrap()),
                Value::Int(1),
            ),
            ExampleRow::new(
                Env::empty().bind(sym("l"), parse_value("[5]").unwrap()),
                Value::Int(5),
            ),
        ];
        let spec = Spec::new(rows).unwrap();
        (TermStore::new(scope, &spec, EnumLimits::default()), spec)
    }

    #[test]
    fn level_one_contains_leaves() {
        let (mut st, _) = store_with_rows();
        st.ensure(1, &Library::default());
        let names: Vec<String> = st.at_cost(1).map(|t| st.render(t)).collect();
        assert!(names.contains(&"l".to_string()));
        assert!(names.contains(&"0".to_string()));
        assert!(names.contains(&"[]".to_string()));
    }

    #[test]
    fn car_l_closes_the_head_spec() {
        let (mut st, spec) = store_with_rows();
        st.ensure(2, &Library::default());
        let found: Vec<String> = st
            .closings(2, &Type::Int, &spec)
            .map(|t| st.render(t))
            .collect();
        assert_eq!(found, vec!["(car l)".to_string()]);
    }

    #[test]
    fn observational_equivalence_dedups() {
        let (mut st, _) = store_with_rows();
        st.ensure(3, &Library::default());
        // (+ 0 0), (* 0 1), (- 0 0) … all collapse onto the constant 0.
        let zeros: Vec<String> = st
            .up_to_cost(3)
            .filter(|t| t.ty == Type::Int && t.sig.iter().all(|s| *s == Ok(Value::Int(0))))
            .map(|t| st.render(t))
            .collect();
        assert_eq!(zeros, vec!["0".to_string()]);
    }

    #[cfg(feature = "check-invariants")]
    #[test]
    fn interned_id_equality_is_structural_equality() {
        // The hash-consing contract: extracting a stored term and
        // re-interning it must land on the same id, for every term the
        // enumerator ever produced — so id comparison is a sound stand-in
        // for structural comparison everywhere in the engine.
        let (mut st, _) = store_with_rows();
        st.ensure(4, &Library::default());
        assert!(st.len() > 0, "levels 1..=4 produce terms");
        st.assert_term_invariants();
    }

    #[test]
    fn all_error_terms_are_pruned() {
        // In a context where l is always [], (car l) errors on every row.
        let scope = vec![(sym("l"), Type::list(Type::Int))];
        let spec = Spec::new(vec![ExampleRow::new(
            Env::empty().bind(sym("l"), Value::nil()),
            Value::Int(0),
        )])
        .unwrap();
        let mut st = TermStore::new(scope, &spec, EnumLimits::default());
        st.ensure(3, &Library::default());
        assert!(!st.up_to_cost(3).any(|t| st.render(t) == "(car l)"));
    }

    #[test]
    fn collections_are_error_free_lists_or_trees() {
        let (mut st, _) = store_with_rows();
        st.ensure(2, &Library::default());
        let colls = st.collections(2);
        let names: Vec<String> = colls.iter().map(|(t, _)| st.render(t)).collect();
        assert!(names.contains(&"l".to_string()));
        assert!(names.contains(&"(cdr l)".to_string()));
        // (cdr l) values are per-row tails.
        let (_, vals) = colls
            .iter()
            .find(|(t, _)| st.render(t) == "(cdr l)")
            .unwrap();
        assert_eq!(vals[0], parse_value("[2]").unwrap());
        assert_eq!(vals[1], parse_value("[]").unwrap());
    }

    #[test]
    fn if_terms_appear_with_correct_semantics() {
        // Scope: x:int. Rows: x=1 -> 5, x=2 -> 9. Closing requires an `if`.
        let scope = vec![(sym("x"), Type::Int)];
        let spec = Spec::new(vec![
            ExampleRow::new(Env::empty().bind(sym("x"), Value::Int(1)), Value::Int(5)),
            ExampleRow::new(Env::empty().bind(sym("x"), Value::Int(2)), Value::Int(9)),
        ])
        .unwrap();
        let mut st = TermStore::new(scope, &spec, EnumLimits::default());
        let lib = Library::default()
            .with_constant(Value::Int(5))
            .with_constant(Value::Int(9));
        let mut found = None;
        for k in 1..=6 {
            st.ensure(k, &lib);
            if let Some(t) = st.closings(k, &Type::Int, &spec).next() {
                found = Some(st.render(t));
                break;
            }
        }
        let found = found.expect("an if-term closes this spec within cost 6");
        assert!(found.starts_with("(if "), "{found}");
    }

    #[test]
    fn canonicalization_makes_types_comparable() {
        assert_eq!(
            canonical(&Type::list(Type::Var(7))),
            Type::list(Type::Var(0))
        );
        assert_eq!(
            canonical(&Type::fun(vec![Type::Var(3), Type::Var(3)], Type::Var(5))),
            Type::fun(vec![Type::Var(0), Type::Var(0)], Type::Var(1))
        );
    }

    #[test]
    fn op_result_type_enforces_consistency() {
        // cons : (a, [a]) -> [a] — int vs [bool] must fail.
        assert!(op_result_type(Op::Cons, &[Type::Int, Type::list(Type::Bool)]).is_none());
        assert_eq!(
            op_result_type(Op::Cons, &[Type::Int, Type::list(Type::Int)]),
            Some(Type::list(Type::Int))
        );
        // cons onto an empty list: the element type wins.
        assert_eq!(
            op_result_type(Op::Cons, &[Type::Int, Type::list(Type::Var(0))]),
            Some(Type::list(Type::Int))
        );
    }

    #[test]
    fn unifiable_and_join() {
        assert!(unifiable(&Type::list(Type::Var(0)), &Type::list(Type::Int)));
        assert!(!unifiable(&Type::Int, &Type::Bool));
        assert_eq!(
            join_types(&Type::list(Type::Var(0)), &Type::list(Type::Int)),
            Some(Type::list(Type::Int))
        );
        assert_eq!(join_types(&Type::Int, &Type::Bool), None);
    }

    #[test]
    fn probes_distinguish_equal_bindings() {
        // Regression: with `a` and `v` bound to the SAME value in every
        // row (a fold accumulator seeded with `v`), `(+ a x)` and
        // `(+ v x)` are row-equivalent; the per-binding probe salts must
        // keep them as distinct terms, or the true solution can be
        // deduped into a broken representative.
        let a = sym("a");
        let v = sym("v");
        let x = sym("x");
        let scope = vec![(a, Type::Int), (v, Type::Int), (x, Type::Int)];
        let spec = Spec::new(vec![ExampleRow::new(
            Env::empty()
                .bind(v, Value::Int(3))
                .bind(a, Value::Int(3))
                .bind(x, Value::Int(9)),
            Value::Int(12),
        )])
        .unwrap();
        let mut st = TermStore::new(scope, &spec, EnumLimits::default());
        st.ensure(3, &Library::default());
        let names: Vec<String> = st
            .closings(3, &Type::Int, &spec)
            .map(|t| st.render(t))
            .collect();
        assert!(names.iter().any(|n| n == "(+ a x)"), "{names:?}");
        assert!(names.iter().any(|n| n == "(+ v x)"), "{names:?}");
    }

    #[test]
    fn probes_distinguish_terms_seeded_from_empty_containers() {
        // Regression: `a = []` in the only row made `(cat a x)` and `x`
        // probe-equal until empty containers learned to grow a seed
        // element under perturbation.
        let a = sym("a");
        let x = sym("x");
        let scope = vec![(a, Type::list(Type::Int)), (x, Type::list(Type::Int))];
        let spec = Spec::new(vec![ExampleRow::new(
            Env::empty()
                .bind(a, Value::nil())
                .bind(x, parse_value("[9 4]").unwrap()),
            parse_value("[9 4]").unwrap(),
        )])
        .unwrap();
        let mut st = TermStore::new(scope, &spec, EnumLimits::default());
        st.ensure(3, &Library::default());
        let names: Vec<String> = st
            .closings(3, &Type::list(Type::Int), &spec)
            .map(|t| st.render(t))
            .collect();
        assert!(names.iter().any(|n| n == "(cat a x)"), "{names:?}");
    }

    #[test]
    fn tripped_budget_stops_ensure_at_a_level_boundary() {
        let (mut st, _) = store_with_rows();
        st.ensure(2, &Library::default());
        let len2 = st.len();
        let b = Budget::unlimited();
        b.force_expire();
        assert!(st.ensure_within(4, &Library::default(), &b).is_err());
        // Nothing was built past the completed levels.
        assert_eq!(st.len(), len2);
        // A fresh unlimited ensure proceeds normally afterwards.
        st.ensure(3, &Library::default());
        assert!(st.len() > len2);
    }

    #[test]
    fn rollback_restores_the_previous_level_state_exactly() {
        let (mut st, _) = store_with_rows();
        st.ensure(2, &Library::default());
        let len2 = st.len();
        let bytes2 = st.approx_bytes();
        let seen2: usize = st.seen.values().map(Vec::len).sum();
        st.ensure(3, &Library::default());
        assert!(st.len() > len2);
        // Simulate a mid-level abort: roll level 3 back and rebuild.
        st.rollback_level(3);
        st.built_upto = 2;
        assert_eq!(st.len(), len2);
        assert_eq!(st.approx_bytes(), bytes2);
        assert_eq!(st.seen.values().map(Vec::len).sum::<usize>(), seen2);
        st.ensure(3, &Library::default());
        let (mut fresh, _) = store_with_rows();
        fresh.ensure(3, &Library::default());
        let rebuilt: Vec<String> = st.up_to_cost(3).map(|t| st.render(t)).collect();
        let scratch: Vec<String> = fresh.up_to_cost(3).map(|t| fresh.render(t)).collect();
        assert_eq!(rebuilt, scratch);
    }

    #[test]
    fn approx_bytes_grows_with_terms() {
        let (mut st, _) = store_with_rows();
        assert_eq!(st.approx_bytes(), 0);
        st.ensure(1, &Library::default());
        let b1 = st.approx_bytes();
        assert!(b1 > 0);
        st.ensure(3, &Library::default());
        assert!(st.approx_bytes() > b1);
    }

    #[test]
    fn limits_truncate_gracefully() {
        let (mut st, _) = store_with_rows();
        let limits = EnumLimits {
            max_level_terms: 5,
            max_terms: 10,
            synthetic_probes: true,
        };
        let mut st2 = TermStore::new(std::mem::take(&mut st.scope), &Spec::empty(), limits);
        // Empty spec means no OE dedup — limits must kick in. Caps are
        // approximate: each production may overshoot by one term per
        // operator before the check fires.
        st2.ensure(4, &Library::default());
        assert!(st2.truncated());
        assert!(st2.len() <= 10 + 40, "{}", st2.len());
    }
}
