//! Synthesis problems.
//!
//! A [`Problem`] is a named function signature plus input-output examples
//! and (optionally) a per-problem component [`Library`]. The builder parses
//! types and values from the s-expression surface syntax, which keeps
//! benchmark definitions readable.

use std::fmt;

use lambda2_lang::parser::{parse_type, parse_value};
use lambda2_lang::symbol::Symbol;
use lambda2_lang::ty::Type;
use lambda2_lang::value::Value;

use crate::library::Library;

/// One input-output example: argument values and the expected result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Example {
    /// Argument values, one per parameter.
    pub inputs: Vec<Value>,
    /// Expected output.
    pub output: Value,
}

/// A synthesis problem.
#[derive(Clone, Debug)]
pub struct Problem {
    name: String,
    description: Option<String>,
    params: Vec<(Symbol, Type)>,
    ret: Type,
    examples: Vec<Example>,
    library: Library,
}

/// Error constructing a [`Problem`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProblemError {
    /// A type or value failed to parse.
    Parse(String),
    /// An example has the wrong number of arguments.
    Arity {
        /// Declared parameter count.
        expected: usize,
        /// Argument count in the offending example.
        got: usize,
    },
    /// An example value does not conform to the declared type.
    TypeMismatch {
        /// The offending value, rendered.
        value: String,
        /// The declared type, rendered.
        ty: String,
    },
    /// The problem has no examples.
    NoExamples,
    /// The problem has no parameters.
    NoParams,
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::Parse(m) => write!(f, "parse error in problem: {m}"),
            ProblemError::Arity { expected, got } => {
                write!(f, "example has {got} arguments, expected {expected}")
            }
            ProblemError::TypeMismatch { value, ty } => {
                write!(f, "example value `{value}` does not have type `{ty}`")
            }
            ProblemError::NoExamples => write!(f, "problem has no examples"),
            ProblemError::NoParams => write!(f, "problem has no parameters"),
        }
    }
}

impl std::error::Error for ProblemError {}

/// Checks that a first-order value inhabits a type. Type variables match
/// any value shape (they arise from empty containers).
pub fn value_conforms(value: &Value, ty: &Type) -> bool {
    match (value, ty) {
        (_, Type::Var(_)) => true,
        (Value::Int(_), Type::Int) => true,
        (Value::Bool(_), Type::Bool) => true,
        (Value::List(xs), Type::List(e)) => xs.iter().all(|x| value_conforms(x, e)),
        (Value::Tree(t), Type::Tree(e)) => t.values().iter().all(|v| value_conforms(v, e)),
        (Value::Pair(p), Type::Pair(a, b)) => value_conforms(&p.0, a) && value_conforms(&p.1, b),
        _ => false,
    }
}

impl Problem {
    /// Starts building a problem.
    pub fn builder(name: impl Into<String>) -> ProblemBuilder {
        ProblemBuilder {
            name: name.into(),
            description: None,
            params: Vec::new(),
            ret: None,
            examples: Vec::new(),
            library: None,
            error: None,
        }
    }

    /// The problem's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Optional prose description.
    pub fn description(&self) -> Option<&str> {
        self.description.as_deref()
    }

    /// Parameter names and types, in order.
    pub fn params(&self) -> &[(Symbol, Type)] {
        &self.params
    }

    /// The return type.
    pub fn return_type(&self) -> &Type {
        &self.ret
    }

    /// The input-output examples.
    pub fn examples(&self) -> &[Example] {
        &self.examples
    }

    /// The component library for this problem.
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// Returns a copy with a different library (used by ablations and by
    /// benchmark definitions that restrict the vocabulary).
    pub fn with_library(mut self, library: Library) -> Problem {
        self.library = library;
        self
    }

    /// Returns a copy keeping only the first `n` examples (used by the
    /// example-sensitivity experiment). Keeps at least one example.
    pub fn truncate_examples(mut self, n: usize) -> Problem {
        self.examples.truncate(n.max(1));
        self
    }
}

/// Builder for [`Problem`]; see [`Problem::builder`].
///
/// # Examples
///
/// ```
/// use lambda2_synth::Problem;
/// let p = Problem::builder("sum")
///     .param("l", "[int]")
///     .returns("int")
///     .example(&["[]"], "0")
///     .example(&["[1 2]"], "3")
///     .build()?;
/// assert_eq!(p.name(), "sum");
/// assert_eq!(p.examples().len(), 2);
/// # Ok::<(), lambda2_synth::ProblemError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ProblemBuilder {
    name: String,
    description: Option<String>,
    params: Vec<(Symbol, Type)>,
    ret: Option<Type>,
    examples: Vec<Example>,
    library: Option<Library>,
    error: Option<ProblemError>,
}

impl ProblemBuilder {
    /// Adds a parameter with an s-expression type (`"[int]"`, `"(tree int)"`).
    pub fn param(mut self, name: &str, ty: &str) -> ProblemBuilder {
        match parse_type(ty) {
            Ok(t) => self.params.push((Symbol::intern(name), t)),
            Err(e) => self.set_error(ProblemError::Parse(e.to_string())),
        }
        self
    }

    /// Sets the return type from s-expression syntax.
    pub fn returns(mut self, ty: &str) -> ProblemBuilder {
        match parse_type(ty) {
            Ok(t) => self.ret = Some(t),
            Err(e) => self.set_error(ProblemError::Parse(e.to_string())),
        }
        self
    }

    /// Adds an example with s-expression argument and output values.
    pub fn example(mut self, inputs: &[&str], output: &str) -> ProblemBuilder {
        let mut vals = Vec::with_capacity(inputs.len());
        for i in inputs {
            match parse_value(i) {
                Ok(v) => vals.push(v),
                Err(e) => {
                    self.set_error(ProblemError::Parse(e.to_string()));
                    return self;
                }
            }
        }
        match parse_value(output) {
            Ok(out) => self.examples.push(Example {
                inputs: vals,
                output: out,
            }),
            Err(e) => self.set_error(ProblemError::Parse(e.to_string())),
        }
        self
    }

    /// Adds an example from already-parsed values.
    pub fn example_values(mut self, inputs: Vec<Value>, output: Value) -> ProblemBuilder {
        self.examples.push(Example { inputs, output });
        self
    }

    /// Sets the prose description.
    pub fn describe(mut self, text: impl Into<String>) -> ProblemBuilder {
        self.description = Some(text.into());
        self
    }

    /// Overrides the component library.
    pub fn library(mut self, library: Library) -> ProblemBuilder {
        self.library = Some(library);
        self
    }

    fn set_error(&mut self, e: ProblemError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// Finishes the builder, validating shape and types.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProblemError`] encountered: parse failures,
    /// missing pieces, arity mismatches, or example values that do not
    /// conform to the declared signature.
    pub fn build(self) -> Result<Problem, ProblemError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.params.is_empty() {
            return Err(ProblemError::NoParams);
        }
        if self.examples.is_empty() {
            return Err(ProblemError::NoExamples);
        }
        let ret = self.ret.ok_or_else(|| {
            ProblemError::Parse("missing return type (call `.returns(..)`)".into())
        })?;
        for ex in &self.examples {
            if ex.inputs.len() != self.params.len() {
                return Err(ProblemError::Arity {
                    expected: self.params.len(),
                    got: ex.inputs.len(),
                });
            }
            for (v, (_, t)) in ex.inputs.iter().zip(&self.params) {
                if !value_conforms(v, t) {
                    return Err(ProblemError::TypeMismatch {
                        value: v.to_string(),
                        ty: t.to_string(),
                    });
                }
            }
            if !value_conforms(&ex.output, &ret) {
                return Err(ProblemError::TypeMismatch {
                    value: ex.output.to_string(),
                    ty: ret.to_string(),
                });
            }
        }
        Ok(Problem {
            name: self.name,
            description: self.description,
            params: self.params,
            ret,
            examples: self.examples,
            library: self.library.unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda2_lang::value::Tree;

    #[test]
    fn builder_happy_path() {
        let p = Problem::builder("reverse")
            .describe("reverse a list")
            .param("l", "[int]")
            .returns("[int]")
            .example(&["[]"], "[]")
            .example(&["[1 2]"], "[2 1]")
            .build()
            .unwrap();
        assert_eq!(p.name(), "reverse");
        assert_eq!(p.params().len(), 1);
        assert_eq!(p.return_type(), &Type::list(Type::Int));
        assert_eq!(p.examples().len(), 2);
        assert_eq!(p.description(), Some("reverse a list"));
    }

    #[test]
    fn arity_mismatch_detected() {
        let err = Problem::builder("f")
            .param("a", "int")
            .param("b", "int")
            .returns("int")
            .example(&["1"], "2")
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ProblemError::Arity {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn type_mismatch_detected() {
        let err = Problem::builder("f")
            .param("l", "[int]")
            .returns("int")
            .example(&["[true]"], "0")
            .build()
            .unwrap_err();
        assert!(matches!(err, ProblemError::TypeMismatch { .. }));

        let err = Problem::builder("f")
            .param("l", "[int]")
            .returns("int")
            .example(&["[1]"], "true")
            .build()
            .unwrap_err();
        assert!(matches!(err, ProblemError::TypeMismatch { .. }));
    }

    #[test]
    fn missing_pieces_detected() {
        assert!(matches!(
            Problem::builder("f")
                .returns("int")
                .example(&[], "1")
                .build(),
            Err(ProblemError::NoParams)
        ));
        assert!(matches!(
            Problem::builder("f")
                .param("x", "int")
                .returns("int")
                .build(),
            Err(ProblemError::NoExamples)
        ));
        assert!(Problem::builder("f")
            .param("x", "int")
            .example(&["1"], "1")
            .build()
            .is_err());
    }

    #[test]
    fn parse_errors_surface() {
        let err = Problem::builder("f")
            .param("x", "floaty")
            .returns("int")
            .example(&["1"], "1")
            .build()
            .unwrap_err();
        assert!(matches!(err, ProblemError::Parse(_)));
    }

    #[test]
    fn value_conformance() {
        assert!(value_conforms(&Value::Int(1), &Type::Int));
        assert!(!value_conforms(&Value::Int(1), &Type::Bool));
        assert!(value_conforms(&Value::nil(), &Type::list(Type::Int)));
        assert!(value_conforms(
            &Value::list(vec![Value::nil()]),
            &Type::list(Type::list(Type::Bool))
        ));
        let t = Value::Tree(Tree::node(Value::Int(1), vec![Tree::empty()]));
        assert!(value_conforms(&t, &Type::tree(Type::Int)));
        assert!(!value_conforms(&t, &Type::tree(Type::Bool)));
        assert!(value_conforms(&Value::nil(), &Type::Var(0)));
    }

    #[test]
    fn truncate_examples_keeps_at_least_one() {
        let p = Problem::builder("f")
            .param("x", "int")
            .returns("int")
            .example(&["1"], "1")
            .example(&["2"], "2")
            .build()
            .unwrap();
        assert_eq!(p.clone().truncate_examples(1).examples().len(), 1);
        assert_eq!(p.truncate_examples(0).examples().len(), 1);
    }
}
