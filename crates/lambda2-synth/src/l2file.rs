//! Parser for the `.l2` problem-file format.
//!
//! The surface syntax is a single s-expression:
//!
//! ```text
//! (problem <name>
//!   (params (<name> <type>) …)
//!   (returns <type>)
//!   (example (<arg> …) <output>) …
//!   (describe "<prose>")                      ; optional
//!   (library (ops <op> …) (combs <comb> …))  ; optional
//! )
//! ```
//!
//! The optional `library` stanza restricts the component library: a
//! declared `(ops …)` / `(combs …)` list replaces the default operator /
//! combinator set (constants are unaffected). Omitted lists keep the
//! defaults. Names follow [`Op::name`] / [`Comb::name`].
//!
//! Parsing yields a [`ProblemFile`] — the file's raw pieces — rather than
//! a [`Problem`] directly, so `lambda2 lint` can run static checks on
//! files that would fail [`crate::ProblemBuilder::build`]'s validation;
//! [`ProblemFile::to_problem`] performs that final validation. The CLI's
//! `synth`/`run`/`eval` commands use [`parse_problem`], which chains the
//! two.

use lambda2_lang::ast::{Comb, Op};
use lambda2_lang::parser::{parse_sexps, type_of_sexp, value_of_sexp, Sexp};
use lambda2_lang::ty::Type;
use lambda2_lang::value::Value;

use crate::library::Library;
use crate::problem::{Problem, ProblemError};

/// The raw, structurally parsed contents of a `.l2` file, prior to the
/// builder's shape/type validation.
#[derive(Clone, Debug)]
pub struct ProblemFile {
    /// Problem name.
    pub name: String,
    /// Parameter names and declared types, in order.
    pub params: Vec<(String, Type)>,
    /// Declared return type, when the `returns` section is present.
    pub returns: Option<Type>,
    /// Examples: argument values and expected output.
    pub examples: Vec<(Vec<Value>, Value)>,
    /// Optional prose description.
    pub describe: Option<String>,
    /// Optional library restriction.
    pub library: Option<LibrarySpec>,
}

/// A parsed `(library …)` stanza. Declaration order and duplicates are
/// preserved so the linter can report shadowed bindings.
#[derive(Clone, Debug, Default)]
pub struct LibrarySpec {
    /// `Some` when an `(ops …)` list was declared.
    pub ops: Option<Vec<Op>>,
    /// `Some` when a `(combs …)` list was declared.
    pub combs: Option<Vec<Comb>>,
}

impl LibrarySpec {
    /// Materializes the restriction against the default [`Library`].
    pub fn to_library(&self) -> Library {
        let mut lib = Library::default();
        if let Some(ops) = &self.ops {
            lib = lib.without_ops(&Op::ALL).with_ops(ops);
        }
        if let Some(combs) = &self.combs {
            lib = lib.without_combs(&Comb::ALL).with_combs(combs);
        }
        lib
    }

    /// The effective operator set (declared or default), for analyses.
    pub fn effective_ops(&self) -> Vec<Op> {
        match &self.ops {
            Some(ops) => ops.clone(),
            None => Library::default().ops().to_vec(),
        }
    }

    /// The effective combinator set (declared or default), for analyses.
    pub fn effective_combs(&self) -> Vec<Comb> {
        match &self.combs {
            Some(combs) => combs.clone(),
            None => Library::default().combs().to_vec(),
        }
    }
}

impl ProblemFile {
    /// Runs the builder's full validation, producing a synthesizable
    /// [`Problem`].
    ///
    /// # Errors
    ///
    /// Returns the first [`ProblemError`] the builder finds (missing
    /// sections, arity mismatches, ill-typed example values).
    pub fn to_problem(&self) -> Result<Problem, ProblemError> {
        let mut builder = Problem::builder(&self.name);
        for (pname, ty) in &self.params {
            builder = builder.param(pname, &ty.to_string());
        }
        if let Some(ret) = &self.returns {
            builder = builder.returns(&ret.to_string());
        }
        for (inputs, output) in &self.examples {
            builder = builder.example_values(inputs.clone(), output.clone());
        }
        if let Some(text) = &self.describe {
            builder = builder.describe(text.clone());
        }
        if let Some(spec) = &self.library {
            builder = builder.library(spec.to_library());
        }
        builder.build()
    }
}

/// Parses `.l2 ` source into its raw pieces.
///
/// # Errors
///
/// Returns a rendered message for malformed s-expressions, unknown
/// sections, or unknown operator/combinator names in a `library` stanza.
pub fn parse_problem_file(src: &str) -> Result<ProblemFile, String> {
    let forms = parse_sexps(src).map_err(|e| e.to_string())?;
    let [Sexp::List(items)] = forms.as_slice() else {
        return Err("expected a single top-level `(problem …)` form".into());
    };
    let mut it = items.iter();
    match it.next() {
        Some(Sexp::Atom(a)) if a == "problem" => {}
        _ => return Err("file must start with `(problem <name> …)`".into()),
    }
    let name = match it.next() {
        Some(Sexp::Atom(n)) => n.clone(),
        _ => return Err("missing problem name".into()),
    };
    let mut file = ProblemFile {
        name,
        params: Vec::new(),
        returns: None,
        examples: Vec::new(),
        describe: None,
        library: None,
    };
    for form in it {
        let Sexp::List(parts) = form else {
            return Err(format!("unexpected form `{form}`"));
        };
        match parts.split_first() {
            Some((Sexp::Atom(head), rest)) => match head.as_str() {
                "params" => {
                    for p in rest {
                        let Sexp::List(pair) = p else {
                            return Err(format!("bad param `{p}`"));
                        };
                        let [Sexp::Atom(pname), ty] = pair.as_slice() else {
                            return Err(format!("bad param `{p}` (want `(name type)`)"));
                        };
                        let ty = type_of_sexp(ty).map_err(|e| e.to_string())?;
                        file.params.push((pname.clone(), ty));
                    }
                }
                "returns" => {
                    let [ty] = rest else {
                        return Err("`returns` takes one type".into());
                    };
                    file.returns = Some(type_of_sexp(ty).map_err(|e| e.to_string())?);
                }
                "example" => {
                    let [Sexp::List(ins), out] = rest else {
                        return Err("`example` takes `(args…)` and an output".into());
                    };
                    let inputs = ins
                        .iter()
                        .map(value_of_sexp)
                        .collect::<Result<Vec<_>, _>>()
                        .map_err(|e| e.to_string())?;
                    let output = value_of_sexp(out).map_err(|e| e.to_string())?;
                    file.examples.push((inputs, output));
                }
                "describe" => {
                    let [Sexp::Atom(text)] = rest else {
                        return Err("`describe` takes one atom".into());
                    };
                    file.describe = Some(text.clone());
                }
                "library" => {
                    file.library = Some(parse_library(rest)?);
                }
                other => return Err(format!("unknown section `{other}`")),
            },
            _ => return Err(format!("unexpected form `{form}`")),
        }
    }
    Ok(file)
}

/// Parses the sub-forms of a `(library …)` stanza.
fn parse_library(forms: &[Sexp]) -> Result<LibrarySpec, String> {
    let mut spec = LibrarySpec::default();
    for form in forms {
        let Sexp::List(items) = form else {
            return Err(format!(
                "bad library entry `{form}` (want `(ops …)` or `(combs …)`)"
            ));
        };
        match items.split_first() {
            Some((Sexp::Atom(kind), names)) if kind == "ops" => {
                let mut ops = Vec::with_capacity(names.len());
                for n in names {
                    let Sexp::Atom(n) = n else {
                        return Err(format!("bad operator name `{n}`"));
                    };
                    ops.push(Op::from_name(n).ok_or_else(|| format!("unknown operator `{n}`"))?);
                }
                spec.ops = Some(ops);
            }
            Some((Sexp::Atom(kind), names)) if kind == "combs" => {
                let mut combs = Vec::with_capacity(names.len());
                for n in names {
                    let Sexp::Atom(n) = n else {
                        return Err(format!("bad combinator name `{n}`"));
                    };
                    combs.push(
                        Comb::from_name(n).ok_or_else(|| format!("unknown combinator `{n}`"))?,
                    );
                }
                spec.combs = Some(combs);
            }
            _ => {
                return Err(format!(
                    "bad library entry `{form}` (want `(ops …)` or `(combs …)`)"
                ))
            }
        }
    }
    Ok(spec)
}

/// Parses and validates a `.l2` file into a [`Problem`] in one step.
///
/// # Errors
///
/// Renders either the structural parse error or the builder's
/// [`ProblemError`].
pub fn parse_problem(src: &str) -> Result<Problem, String> {
    parse_problem_file(src)?
        .to_problem()
        .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "(problem evens\n  (params (l [int]))\n  (returns [int])\n  \
                          (example ([]) [])\n  (example ([1 2 3 4]) [2 4])\n  \
                          (example ([5 6]) [6]))";

    #[test]
    fn parses_the_documented_format() {
        let p = parse_problem(SAMPLE).unwrap();
        assert_eq!(p.name(), "evens");
        assert_eq!(p.params().len(), 1);
        assert_eq!(p.examples().len(), 3);
        assert_eq!(p.return_type().to_string(), "[int]");
    }

    #[test]
    fn rejects_malformed_files() {
        assert!(parse_problem("(nonsense)").is_err());
        assert!(parse_problem("(problem)").is_err());
        assert!(parse_problem("(problem p (params (l [int])) (wat))").is_err());
        assert!(parse_problem("(problem p (params (l [int])) (returns [int]))").is_err());
        assert!(parse_problem("atom").is_err());
    }

    #[test]
    fn checks_example_shapes() {
        let bad = "(problem p (params (l [int])) (returns [int]) (example [1] [1]))";
        assert!(parse_problem(bad).is_err());
    }

    #[test]
    fn library_stanza_restricts_ops_and_combs() {
        let src = "(problem p (params (l [int])) (returns int)\
                   (example ([1]) 1)\
                   (library (ops car +) (combs foldl)))";
        let p = parse_problem(src).unwrap();
        assert_eq!(p.library().ops(), &[Op::Car, Op::Add]);
        assert_eq!(p.library().combs(), &[Comb::Foldl]);

        // Declaring only ops keeps the default combinators.
        let src = "(problem p (params (l [int])) (returns int)\
                   (example ([1]) 1)\
                   (library (ops car)))";
        let p = parse_problem(src).unwrap();
        assert_eq!(p.library().ops(), &[Op::Car]);
        assert_eq!(p.library().combs(), Library::default().combs());
    }

    #[test]
    fn library_stanza_rejects_unknown_names() {
        let src = "(problem p (params (l [int])) (returns int)\
                   (example ([1]) 1) (library (ops warp)))";
        assert!(parse_problem(src).unwrap_err().contains("unknown operator"));
        let src = "(problem p (params (l [int])) (returns int)\
                   (example ([1]) 1) (library (combs warp)))";
        assert!(parse_problem(src)
            .unwrap_err()
            .contains("unknown combinator"));
        let src = "(problem p (params (l [int])) (returns int)\
                   (example ([1]) 1) (library ops))";
        assert!(parse_problem(src).is_err());
    }

    #[test]
    fn problem_file_preserves_duplicates_for_the_linter() {
        let src = "(problem p (params (l [int])) (returns int)\
                   (example ([1]) 1) (library (ops car car)))";
        let file = parse_problem_file(src).unwrap();
        let spec = file.library.as_ref().unwrap();
        assert_eq!(spec.ops.as_deref(), Some(&[Op::Car, Op::Car][..]));
        // The materialized library dedups.
        assert_eq!(file.to_problem().unwrap().library().ops(), &[Op::Car]);
    }

    #[test]
    fn effective_sets_fall_back_to_defaults() {
        let spec = LibrarySpec::default();
        assert_eq!(spec.effective_ops(), Library::default().ops());
        assert_eq!(spec.effective_combs(), Library::default().combs());
        let spec = LibrarySpec {
            ops: Some(vec![Op::Car]),
            combs: None,
        };
        assert_eq!(spec.effective_ops(), vec![Op::Car]);
    }
}
