//! End-to-end exit-code tests for `l2 client stats`: against a live
//! daemon it renders the counter table and exits 0; against a daemon
//! that answers with an error status — or an `ok` reply missing the
//! `server` counters object — it exits 1. The failure daemons are fake:
//! a plain TCP listener speaking the 4-byte length-prefix framing, so
//! the tests pin the *client's* judgment, not the server's behavior.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::thread;

const L2: &str = env!("CARGO_BIN_EXE_l2");

/// Boots `l2 serve` on an ephemeral port and returns the child plus the
/// address parsed from its startup line.
fn spawn_daemon() -> (Child, String) {
    let mut child = Command::new(L2)
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn l2 serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("daemon prints its address before exiting")
            .expect("read daemon stderr");
        if let Some(addr) = line.strip_prefix("serve: listening on ") {
            break addr.to_owned();
        }
    };
    // Keep draining stderr so the daemon never blocks on a full pipe.
    thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn client(args: &[&str]) -> std::process::Output {
    Command::new(L2)
        .arg("client")
        .args(args)
        .output()
        .expect("run l2 client")
}

#[test]
fn stats_against_live_daemon_renders_table_and_exits_zero() {
    let (mut daemon, addr) = spawn_daemon();

    let out = client(&["stats", "--addr", &addr]);
    assert!(out.status.success(), "exit: {:?}", out.status);
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    for row in ["accepted", "queue_wait_us", "service_us", "ops"] {
        assert!(stdout.contains(row), "table carries `{row}`:\n{stdout}");
    }
    assert!(
        !stdout.trim_start().starts_with('{'),
        "default output is a table, not raw JSON:\n{stdout}"
    );

    // `--json` switches to the raw reply line.
    let out = client(&["stats", "--addr", &addr, "--json"]);
    assert!(out.status.success(), "exit: {:?}", out.status);
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    assert!(
        stdout.trim_start().starts_with('{') && stdout.contains("\"server\""),
        "raw JSON reply:\n{stdout}"
    );

    let out = client(&["shutdown", "--addr", &addr]);
    assert!(out.status.success(), "shutdown exit: {:?}", out.status);
    daemon.wait().expect("daemon exits after shutdown");
}

/// A fake daemon answering every request with one fixed framed reply.
fn spawn_fake_daemon(reply: &'static str) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake daemon");
    let addr = listener.local_addr().expect("local addr").to_string();
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { return };
            // Read one frame (length prefix + payload), then answer.
            let mut len = [0u8; 4];
            if stream.read_exact(&mut len).is_err() {
                continue;
            }
            let mut payload = vec![0u8; u32::from_be_bytes(len) as usize];
            if stream.read_exact(&mut payload).is_err() {
                continue;
            }
            let body = reply.as_bytes();
            let _ = stream.write_all(&(body.len() as u32).to_be_bytes());
            let _ = stream.write_all(body);
            let _ = stream.flush();
        }
    });
    addr
}

#[test]
fn stats_against_error_reply_exits_nonzero() {
    let addr = spawn_fake_daemon(r#"{"v":1,"status":"error","error":"boom"}"#);
    let out = client(&["stats", "--addr", &addr]);
    assert_eq!(out.status.code(), Some(1), "error status must exit 1");
    let stderr = String::from_utf8(out.stderr).expect("utf8 stderr");
    assert!(stderr.contains("boom"), "names the error:\n{stderr}");
}

#[test]
fn stats_ok_without_server_object_exits_nonzero() {
    let addr = spawn_fake_daemon(r#"{"v":1,"status":"ok"}"#);
    let out = client(&["stats", "--addr", &addr]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "ok-without-counters must exit 1"
    );
    let stderr = String::from_utf8(out.stderr).expect("utf8 stderr");
    assert!(
        stderr.contains("server"),
        "names the missing object:\n{stderr}"
    );
}
