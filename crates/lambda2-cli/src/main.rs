//! `l2` — the λ² synthesizer command-line tool.
//!
//! ```text
//! l2 synth <problem.l2>...  synthesize a program from each problem file
//! l2 run <problem.l2> ARGS  synthesize, then run the program on ARGS
//! l2 eval <expr> [x=v]...   evaluate an expression under bindings
//! l2 lint <problem.l2>...   statically check problem files
//! l2 bench <name>...        run suite benchmarks by name
//! l2 list                   list the benchmark suite
//! l2 profile summary <trace.jsonl>     per-combinator/per-rule attribution
//! l2 profile tree <trace.jsonl>        collapsed stacks for flamegraphs
//! l2 profile diff <a.jsonl> <b.jsonl>  first divergence of two traces
//! l2 profile report <trace.jsonl>      self-contained HTML report
//! l2 corpus ingest <dir> <file>...     backfill run records from
//!                                      --stats-json / BENCH_*.json files
//! l2 corpus list <dir>                 one line per problem+config
//! l2 corpus stats <dir>                cross-run aggregates (solve rate,
//!                                      costs, wall-time quantiles)
//! l2 corpus regress <baseline> <fresh> compare fresh runs to the baseline
//! l2 serve                  run the synthesis daemon (TCP or unix: socket)
//! l2 client synth <p.l2>... send problems to a running daemon
//! l2 client ping|stats|shutdown        poke a running daemon
//!
//! flags (synth/run/bench):
//!   --trace <path>          stream search telemetry as JSON Lines to <path>
//!   --stats-json            print each measurement as one JSON line
//!   --stats-json=<path>     ...or append the lines to <path> instead
//!   --corpus <dir>          append each measurement to the run corpus in
//!                           <dir> (see `l2 corpus`)
//!   --progress              render a live status line on stderr while the
//!                           search runs (sequential commands only)
//!   --timeout-ms <n>        wall-clock budget per problem (default 60000)
//!   --max-overshoot-ms <n>  deadline overshoot bound (default 100)
//!   --retry-ladder          on resource exhaustion, retry with degraded
//!                           options, then the enumerative baseline
//!   --jobs <n>              worker threads (0 = one per CPU; default 1,
//!                           sequential). Several problems: fan the batch
//!                           across the pool. One problem: parallelize
//!                           *within* its search (byte-identical results)
//!   --portfolio             race the retry-ladder rungs concurrently;
//!                           same answer as --retry-ladder, less wall time
//!   --no-static-analysis    disable the abstract-interpretation refutation
//!                           pre-pass entirely (both tiers; same results)
//!   --no-static-prune       keep the pre-pass but disable its pruning
//!                           tier (the ablation arm: same programs and
//!                           costs, strictly more search work)
//!
//! flags (lint):
//!   --json                  one JSON object per diagnostic per line
//!
//! flags (profile):
//!   --json                  machine-readable output (summary/diff)
//!   --weight pops|time      tree weighting (default pops)
//!   --out <path>            write tree/report output to a file
//!
//! flags (serve):
//!   --addr <a>              listen address: host:port, or unix:/path
//!                           (default 127.0.0.1:7207; port 0 = ephemeral)
//!   --jobs <n>              synthesis worker threads (0 = one per CPU;
//!                           default 2)
//!   --queue <n>             admission-queue capacity (default 16);
//!                           requests beyond workers+queue are shed with
//!                           a structured `overloaded` + retry hint
//!   --timeout-ms <n>        default per-request budget (default 2000)
//!   --max-timeout-ms <n>    hard cap on any request's budget (30000)
//!   --warm-bytes <n>        warm term-store byte budget shared by the
//!                           whole worker pool (0 = off)
//!   --drain-grace-ms <n>    how long in-flight jobs get to finish on
//!                           drain before cancellation (default 1000)
//!   --corpus <dir>          append every served synthesis to a corpus
//!
//! flags (client):
//!   --addr <a>              daemon address (default 127.0.0.1:7207)
//!   --retries <n>           retry budget for sheds/transport errors (0)
//!   --backoff-ms <n>        base retry delay, exponential + jitter (100)
//!   --seed <n>              jitter seed (deterministic backoff; 0)
//!   --timeout-ms <n>        per-request budget sent to the daemon
//!   --portfolio             ask the daemon to race the ladder rungs
//! ```
//!
//! `client` exit codes: 0 every request answered `ok`, 1 any request
//! failed (`error`, `unsolved`, `shutting_down`, or transport failure
//! after retries), 2 on usage or local I/O errors, 3 when the daemon
//! answered `overloaded` even after the retry budget — the daemon is
//! healthy but saturated, a distinct condition from failure.
//!
//! `lint` exit codes: 0 when every file is clean, 1 when any diagnostic
//! was reported, 2 on usage or I/O errors. An unreadable file does not
//! stop the remaining files from being linted — it is reported (code
//! `io-error` under `--json`) and the exit code deferred. Each diagnostic
//! carries a stable machine-readable code (`parse-error`,
//! `type-mismatch`, `contradictory-examples`, `duplicate-examples`,
//! `constant-input`, `permutation-conflict`, `unsat-abstract`,
//! `library-shadowed`, `library-unused`). `profile diff` exit codes: 0 when the traces are
//! identical, 1 when they diverge or one is a truncated prefix of the
//! other, 2 on usage or I/O errors.
//!
//! Batch runs (`synth`/`bench` with several problems) isolate each
//! problem: a failure — timeout, exhaustion, even a panic — is reported
//! (and recorded in the `--stats-json` line) and the batch continues;
//! the exit code is nonzero only if at least one problem failed. With
//! `--jobs`, problems fan out across a worker pool but results are
//! printed in input order, and `--trace` events carry `problem`/`worker`
//! tags, so output is deterministic up to timings. A single-problem
//! invocation instead spends `--jobs` *inside* the search
//! ([`SearchOptions::jobs`]): candidate verification fans out to worker
//! threads while the program, cost, counters, and trace stay
//! byte-identical to the sequential run.
//!
//! Problem files are s-expressions:
//!
//! ```text
//! (problem evens
//!   (params (l [int]))
//!   (returns [int])
//!   (example ([]) [])
//!   (example ([1 2 3 4]) [2 4])
//!   (example ([5 6]) [6]))
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use lambda2_synth::govern::panic_message;
use lambda2_synth::obs::json::Json;
use lambda2_synth::par::{
    effective_jobs, synthesize_batch, tagged_event_json, ParEngine, ParOutcome, ParTask,
};
use lambda2_synth::serve::{request_with_retry, Backoff};
use lambda2_synth::{
    aggregate, collapse_tree, diff_traces, ingest_bench, ingest_measurement, lint_source,
    load_access_log, load_records, load_trace, options_fingerprint, parse_problem, regress,
    render_access_html, render_html, summarize, AccessReport, Corpus, DiffOutcome, FindingKind,
    JsonlTracer, Measurement, Problem, RegressThresholds, RunRecord, SearchOptions, SearchReport,
    ServeConfig, Server, Synthesizer, TraceEvent, Tracer, Weight,
};

/// Default daemon address shared by `l2 serve` and `l2 client`.
const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7207";

/// Flags shared by the synthesizing commands.
#[derive(Debug, Default)]
struct Flags {
    /// Write a JSONL trace of the search to this path.
    trace: Option<PathBuf>,
    /// Print the final `Measurement` as a single JSON line on stdout.
    stats_json: bool,
    /// `--stats-json=<path>`: append the measurement lines to a file
    /// instead of stdout.
    stats_json_out: Option<PathBuf>,
    /// Append each measurement to the run corpus in this directory.
    corpus: Option<PathBuf>,
    /// Render a live status line on stderr while the search runs.
    progress: bool,
    /// Wall-clock budget per problem, in milliseconds.
    timeout_ms: Option<u64>,
    /// Deadline overshoot bound, in milliseconds.
    max_overshoot_ms: Option<u64>,
    /// Retry with degraded options, then the baseline, on resource limits.
    retry_ladder: bool,
    /// Worker threads for batch commands (`None` = sequential, 0 = one
    /// per CPU).
    jobs: Option<usize>,
    /// Race the retry-ladder rungs concurrently within each problem.
    portfolio: bool,
    /// Disable the abstract-interpretation refutation pre-pass.
    no_static_analysis: bool,
    /// Keep the pre-pass but disable its pruning tier (ablation arm).
    no_static_prune: bool,
    /// `lint`/`profile`: print machine-readable JSON instead of human text.
    json: bool,
    /// `profile tree`/`profile report`: write the output to this file
    /// instead of stdout (report defaults to `<trace>.html`).
    out: Option<PathBuf>,
    /// `profile tree`: weight stacks by `pops` (default) or `time`.
    weight: Option<String>,
    /// `corpus regress`: wall-time ratio threshold (default 1.5).
    wall_ratio: Option<f64>,
    /// `corpus regress`: wall-time absolute floor in ms (default 100).
    wall_floor_ms: Option<f64>,
    /// `corpus regress`: skip the wall-time comparison (cross-machine CI).
    no_wall_check: bool,
    /// `serve`/`client`: daemon address (`host:port` or `unix:/path`).
    addr: Option<String>,
    /// `serve`: admission-queue capacity.
    queue: Option<usize>,
    /// `serve`: hard cap on any request's timeout, in milliseconds.
    max_timeout_ms: Option<u64>,
    /// `serve`: pool-shared warm term-store byte budget (0 disables).
    warm_bytes: Option<usize>,
    /// `serve`: drain grace for in-flight jobs, in milliseconds.
    drain_grace_ms: Option<u64>,
    /// `serve`: append one JSONL access record per request to this file.
    access_log: Option<PathBuf>,
    /// `serve`: capture a full search trace for requests at or above
    /// this many milliseconds of service time.
    slow_trace_ms: Option<u64>,
    /// `serve`: directory where slow-request traces are written, one
    /// `<req_id>.jsonl` per captured request.
    slow_trace_dir: Option<PathBuf>,
    /// `client`: retry budget for sheds and transport errors.
    retries: Option<u32>,
    /// `client`: base backoff delay, in milliseconds.
    backoff_ms: Option<u64>,
    /// `client`: jitter seed (same seed, same backoff schedule).
    seed: Option<u64>,
}

impl Flags {
    /// Extracts the known flags from `args` (any position), leaving the
    /// positional arguments behind.
    fn extract(args: &mut Vec<String>) -> Result<Flags, String> {
        fn ms_arg(flag: &str, next: Option<String>) -> Result<u64, String> {
            let raw = next.ok_or_else(|| format!("{flag} requires a millisecond count"))?;
            raw.parse::<u64>()
                .map_err(|_| format!("{flag}: `{raw}` is not a whole number of milliseconds"))
        }
        let mut flags = Flags::default();
        let mut rest = Vec::with_capacity(args.len());
        let mut it = args.drain(..);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--trace" => match it.next() {
                    Some(path) => flags.trace = Some(PathBuf::from(path)),
                    None => return Err("--trace requires a file path".into()),
                },
                "--stats-json" => flags.stats_json = true,
                "--corpus" => match it.next() {
                    Some(dir) => flags.corpus = Some(PathBuf::from(dir)),
                    None => return Err("--corpus requires a directory path".into()),
                },
                "--progress" => flags.progress = true,
                "--no-wall-check" => flags.no_wall_check = true,
                "--wall-ratio" => {
                    let raw = it
                        .next()
                        .ok_or("--wall-ratio requires a factor (e.g. 1.5)")?;
                    let v = raw
                        .parse::<f64>()
                        .map_err(|_| format!("--wall-ratio: `{raw}` is not a number"))?;
                    if !v.is_finite() || v < 1.0 {
                        return Err(format!("--wall-ratio: `{raw}` must be a factor >= 1"));
                    }
                    flags.wall_ratio = Some(v);
                }
                "--wall-floor-ms" => {
                    let raw = it
                        .next()
                        .ok_or("--wall-floor-ms requires a millisecond count")?;
                    let v = raw
                        .parse::<f64>()
                        .map_err(|_| format!("--wall-floor-ms: `{raw}` is not a number"))?;
                    if !v.is_finite() || v < 0.0 {
                        return Err(format!("--wall-floor-ms: `{raw}` must be >= 0"));
                    }
                    flags.wall_floor_ms = Some(v);
                }
                "--timeout-ms" => flags.timeout_ms = Some(ms_arg("--timeout-ms", it.next())?),
                "--max-overshoot-ms" => {
                    flags.max_overshoot_ms = Some(ms_arg("--max-overshoot-ms", it.next())?);
                }
                "--max-timeout-ms" => {
                    flags.max_timeout_ms = Some(ms_arg("--max-timeout-ms", it.next())?);
                }
                "--drain-grace-ms" => {
                    flags.drain_grace_ms = Some(ms_arg("--drain-grace-ms", it.next())?);
                }
                "--access-log" => match it.next() {
                    Some(path) => flags.access_log = Some(PathBuf::from(path)),
                    None => return Err("--access-log requires a file path".into()),
                },
                "--slow-trace-ms" => {
                    flags.slow_trace_ms = Some(ms_arg("--slow-trace-ms", it.next())?);
                }
                "--slow-trace-dir" => match it.next() {
                    Some(dir) => flags.slow_trace_dir = Some(PathBuf::from(dir)),
                    None => return Err("--slow-trace-dir requires a directory path".into()),
                },
                "--backoff-ms" => flags.backoff_ms = Some(ms_arg("--backoff-ms", it.next())?),
                "--addr" => match it.next() {
                    Some(addr) => flags.addr = Some(addr),
                    None => return Err("--addr requires an address".into()),
                },
                "--queue" => {
                    let raw = it.next().ok_or("--queue requires a capacity")?;
                    flags.queue =
                        Some(raw.parse::<usize>().map_err(|_| {
                            format!("--queue: `{raw}` is not a whole number of slots")
                        })?);
                }
                "--warm-bytes" => {
                    let raw = it.next().ok_or("--warm-bytes requires a byte count")?;
                    flags.warm_bytes = Some(raw.parse::<usize>().map_err(|_| {
                        format!("--warm-bytes: `{raw}` is not a whole number of bytes")
                    })?);
                }
                "--retries" => {
                    let raw = it.next().ok_or("--retries requires a count")?;
                    flags.retries = Some(
                        raw.parse::<u32>()
                            .map_err(|_| format!("--retries: `{raw}` is not a whole number"))?,
                    );
                }
                "--seed" => {
                    let raw = it.next().ok_or("--seed requires a number")?;
                    flags.seed = Some(
                        raw.parse::<u64>()
                            .map_err(|_| format!("--seed: `{raw}` is not a whole number"))?,
                    );
                }
                "--retry-ladder" => flags.retry_ladder = true,
                "--jobs" => {
                    let raw = it.next().ok_or("--jobs requires a worker count")?;
                    flags.jobs = Some(raw.parse::<usize>().map_err(|_| {
                        format!("--jobs: `{raw}` is not a whole number of workers")
                    })?);
                }
                "--portfolio" => flags.portfolio = true,
                "--no-static-analysis" => flags.no_static_analysis = true,
                "--no-static-prune" => flags.no_static_prune = true,
                "--json" => flags.json = true,
                "--out" => match it.next() {
                    Some(path) => flags.out = Some(PathBuf::from(path)),
                    None => return Err("--out requires a file path".into()),
                },
                "--weight" => {
                    let raw = it.next().ok_or("--weight requires `pops` or `time`")?;
                    if raw != "pops" && raw != "time" {
                        return Err(format!("--weight: `{raw}` is not `pops` or `time`"));
                    }
                    flags.weight = Some(raw);
                }
                other if other.starts_with("--stats-json=") => {
                    let path = &other["--stats-json=".len()..];
                    if path.is_empty() {
                        return Err("--stats-json=<path> requires a file path".into());
                    }
                    flags.stats_json_out = Some(PathBuf::from(path));
                }
                other if other.starts_with("--") => {
                    return Err(format!("unknown flag `{other}`"));
                }
                _ => rest.push(a),
            }
        }
        drop(it);
        *args = rest;
        Ok(flags)
    }

    /// Applies the governance flags on top of `options`.
    fn apply(&self, mut options: SearchOptions) -> SearchOptions {
        if let Some(ms) = self.timeout_ms {
            options.timeout = Some(Duration::from_millis(ms));
        }
        if let Some(ms) = self.max_overshoot_ms {
            options.max_overshoot = Duration::from_millis(ms);
        }
        if self.retry_ladder {
            options.retry_ladder = true;
        }
        if self.no_static_analysis {
            options.static_analysis = false;
        }
        if self.no_static_prune {
            options.static_prune = false;
        }
        if self.progress {
            options.progress = true;
        }
        options
    }

    /// The resolved worker count: `--jobs 0` means one per CPU, no flag
    /// means sequential.
    fn effective_jobs(&self) -> usize {
        match self.jobs {
            Some(n) => effective_jobs(n),
            None => 1,
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match Flags::extract(&mut args) {
        Ok(f) => f,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let result = match args.first().map(String::as_str) {
        Some("synth") if args.len() >= 2 => cmd_synth(&args[1..], &flags),
        Some("run") if args.len() >= 3 => cmd_run(&args[1], &args[2..], &flags),
        Some("eval") if args.len() >= 2 => cmd_eval(&args[1], &args[2..]),
        Some("lint") if args.len() >= 2 => return cmd_lint(&args[1..], &flags),
        Some("bench") if args.len() >= 2 => cmd_bench(&args[1..], &flags),
        Some("list") => cmd_list(),
        Some("profile") if args.len() >= 2 => return cmd_profile(&args[1..], &flags),
        Some("corpus") if args.len() >= 2 => return cmd_corpus(&args[1..], &flags),
        Some("serve") => return cmd_serve(&args[1..], &flags),
        Some("client") if args.len() >= 2 => return cmd_client(&args[1..], &flags),
        _ => {
            eprintln!(
                "usage:\n  l2 [flags] synth <problem.l2>...\n  \
                 l2 [flags] run <problem.l2> <arg>...\n  \
                 l2 eval <expr> [x=v]...\n  \
                 l2 [--json] lint <problem.l2>...\n  \
                 l2 [flags] bench <name>...\n  l2 list\n  \
                 l2 profile summary|tree|diff|report <trace.jsonl>...\n  \
                 l2 corpus ingest|list|stats|regress ...\n  \
                 l2 serve [serve flags]\n  \
                 l2 serve report <access.jsonl> [--json] [--out <html>]\n  \
                 l2 client synth <problem.l2>... | ping | stats | shutdown\n\
                 flags: --trace <path>  --stats-json[=<path>]  --corpus <dir>  \
                 --progress  --timeout-ms <n>  \
                 --max-overshoot-ms <n>  --retry-ladder  --jobs <n>  --portfolio  \
                 --no-static-analysis  --no-static-prune\n\
                 profile flags: --json  --weight pops|time  --out <path>\n\
                 corpus flags: --json  --wall-ratio <f>  --wall-floor-ms <n>  \
                 --no-wall-check\n\
                 serve flags: --addr <a>  --jobs <n>  --queue <n>  --timeout-ms <n>  \
                 --max-timeout-ms <n>  --warm-bytes <n>  --drain-grace-ms <n>  \
                 --corpus <dir>  --access-log <path>  --slow-trace-ms <n>  \
                 --slow-trace-dir <dir>\n\
                 client flags: --addr <a>  --retries <n>  --backoff-ms <n>  \
                 --seed <n>  --timeout-ms <n>  --portfolio  --json"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Writes `content` to stdout verbatim, ignoring broken pipes: every
/// subcommand's stdout must survive `l2 ... | head` without a panic or a
/// spurious nonzero exit. Write errors other than a closed pipe are also
/// ignored — stdout is a best-effort channel here; anything that decides
/// exit codes goes through return values, not print success.
fn emit(content: &str) {
    use std::io::Write;
    let stdout = std::io::stdout();
    let _ = stdout.lock().write_all(content.as_bytes());
}

/// [`emit`] plus a trailing newline — the broken-pipe-safe `println!`.
fn emit_line(content: impl std::fmt::Display) {
    emit(&format!("{content}\n"));
}

/// Checks up front that a `--flag <path>` output target points somewhere
/// writable: a missing parent directory is a usage error reported before
/// any synthesis work starts, not after a whole batch has already run
/// (the parallel path only opens the trace file once all workers finish).
fn validate_out_path(flag: &str, path: &std::path::Path) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() && !parent.is_dir() {
            return Err(format!(
                "{flag} {}: parent directory {} does not exist",
                path.display(),
                parent.display()
            ));
        }
    }
    Ok(())
}

fn validate_trace_path(flags: &Flags) -> Result<(), String> {
    match &flags.trace {
        Some(path) => validate_out_path("--trace", path),
        None => Ok(()),
    }
}

/// Where the synthesizing commands deliver their measurements, beyond
/// stdout/stderr. Built once per command, *before* any search work, so
/// every output path failure is immediate (see [`validate_out_path`]).
#[derive(Debug)]
struct Sinks {
    /// `--corpus <dir>`: the opened (and thus created) run corpus.
    corpus: Option<Corpus>,
    /// `--stats-json=<path>`: measurement lines are appended here.
    stats_json_out: Option<PathBuf>,
}

/// Validates every output flag and opens the corpus. The `--stats-json=`
/// target file is created (truncated) up front: a bad path fails the
/// command before the first search, and a rerun never mixes old and new
/// lines.
fn prepare_sinks(flags: &Flags) -> Result<Sinks, String> {
    validate_trace_path(flags)?;
    let corpus = match &flags.corpus {
        Some(dir) => Some(Corpus::open(dir).map_err(|e| format!("--corpus: {e}"))?),
        None => None,
    };
    if let Some(path) = &flags.stats_json_out {
        validate_out_path("--stats-json", path)?;
        std::fs::File::create(path).map_err(|e| format!("--stats-json {}: {e}", path.display()))?;
    }
    Ok(Sinks {
        corpus,
        stats_json_out: flags.stats_json_out.clone(),
    })
}

impl Sinks {
    /// Records one measurement in every configured sink. Failures here are
    /// reported but do not fail the run: the synthesis result already
    /// exists and has been printed.
    fn record(&self, measurement: &Measurement, fingerprint: &str) {
        if let Some(corpus) = &self.corpus {
            let record = RunRecord::of_measurement(measurement, fingerprint);
            if let Err(e) = corpus.append(&[record]) {
                eprintln!("warning: --corpus: {e}");
            }
        }
        if let Some(path) = &self.stats_json_out {
            use std::io::Write;
            let appended = std::fs::OpenOptions::new()
                .append(true)
                .open(path)
                .and_then(|mut f| writeln!(f, "{}", measurement.to_json()));
            if let Err(e) = appended {
                eprintln!("warning: --stats-json {}: {e}", path.display());
            }
        }
    }
}

/// Renders [`TraceEvent::Progress`] heartbeats as a single rewriting
/// status line on stderr, forwarding every event to the inner tracer
/// (when there is one). `enabled()` mirrors the inner tracer so the
/// engine keeps skipping payload rendering when only `--progress` is on.
struct ProgressLine<'a> {
    inner: Option<&'a mut dyn Tracer>,
    render: bool,
    wrote: bool,
}

impl ProgressLine<'_> {
    /// Terminates the status line so later stderr output starts clean.
    fn finish_line(&mut self) {
        if self.wrote {
            eprintln!();
            self.wrote = false;
        }
    }
}

impl Tracer for ProgressLine<'_> {
    fn enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|t| t.enabled())
    }

    fn emit(&mut self, event: TraceEvent) {
        if self.render {
            if let TraceEvent::Progress {
                budget,
                queue,
                best_cost,
                ..
            } = &event
            {
                eprint!(
                    "\r  {:6.1}s  {} pops  queue {}  cost {}  store {:.1} MB   ",
                    budget.elapsed.as_secs_f64(),
                    budget.pops,
                    queue,
                    best_cost,
                    budget.peak_store_bytes as f64 / (1024.0 * 1024.0),
                );
                self.wrote = true;
            }
        }
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.emit(event);
        }
    }
}

/// Runs one governed synthesis, honoring `--trace` and `--progress`, with
/// panic isolation: a crash inside the engine becomes an error
/// measurement, not an abort.
fn run_synthesis(
    synthesizer: &Synthesizer,
    problem: &Problem,
    flags: &Flags,
) -> Result<SearchReport, String> {
    let mut jsonl = match &flags.trace {
        Some(path) => Some(
            JsonlTracer::create(path)
                .map_err(|e| format!("opening trace file {}: {e}", path.display()))?,
        ),
        None => None,
    };
    let report = {
        let mut line = ProgressLine {
            inner: jsonl.as_mut().map(|t| t as &mut dyn Tracer),
            render: flags.progress,
            wrote: false,
        };
        let tracer = &mut line;
        let r = catch_unwind(AssertUnwindSafe(|| {
            if flags.portfolio {
                synthesizer.synthesize_report_portfolio_traced(problem, tracer)
            } else {
                synthesizer.synthesize_report_traced(problem, tracer)
            }
        }));
        line.finish_line();
        r
    };
    if let (Some(tracer), Some(path)) = (jsonl, &flags.trace) {
        let lines = tracer
            .finish()
            .map_err(|e| format!("writing trace file {}: {e}", path.display()))?;
        eprintln!("trace: {lines} events -> {}", path.display());
    }
    report.map_err(|payload| format!("synthesis panicked: {}", panic_message(&*payload)))
}

/// Prints the result summary (and the `--stats-json` line), and records
/// the measurement in the configured [`Sinks`]. Returns `true` when the
/// problem was solved.
fn report(
    problem: &Problem,
    outcome: &Result<SearchReport, String>,
    flags: &Flags,
    sinks: &Sinks,
    fingerprint: &str,
) -> bool {
    let (solved, error, measurement) = match outcome {
        Ok(report) => {
            let m = report.to_measurement(problem.name(), problem.examples().len());
            match &report.outcome {
                Ok(s) => {
                    emit_line(&s.program);
                    eprintln!(
                        "cost {}, {:.1} ms, {}",
                        s.cost,
                        report.elapsed.as_secs_f64() * 1e3,
                        s.stats
                    );
                    eprintln!("phases: {}", s.stats.phases);
                    (true, None, m)
                }
                Err(e) => {
                    if !report.frontier.is_empty() {
                        eprintln!("best incomplete candidates:");
                        for item in &report.frontier {
                            eprintln!("  cost {:3}  {}", item.cost, item.sketch);
                        }
                    }
                    (false, Some(e.to_string()), m)
                }
            }
        }
        Err(msg) => {
            let m = Measurement {
                name: problem.name().to_owned(),
                elapsed: Duration::ZERO,
                solved: false,
                cost: 0,
                size: 0,
                program: String::new(),
                examples: problem.examples().len(),
                stats: Default::default(),
                error: Some(msg.clone()),
            };
            (false, Some(msg.clone()), m)
        }
    };
    if let Some(e) = &error {
        eprintln!("{}: error: {e}", problem.name());
    }
    if flags.stats_json {
        emit_line(measurement.to_json());
    }
    sinks.record(&measurement, fingerprint);
    solved
}

fn cmd_synth(paths: &[String], flags: &Flags) -> Result<(), String> {
    let sinks = prepare_sinks(flags)?;
    // A single problem has no batch to fan out: `--jobs` becomes
    // within-problem parallelism inside the one search instead.
    if flags.effective_jobs() <= 1 || paths.len() == 1 {
        let mut failed = 0usize;
        for path in paths {
            match load_problem(path) {
                Ok(problem) => {
                    eprintln!(
                        "synthesizing `{}` from {} examples...",
                        problem.name(),
                        problem.examples().len()
                    );
                    let synthesizer = synthesizer_single(flags);
                    let fingerprint = options_fingerprint(synthesizer.options());
                    let outcome = run_synthesis(&synthesizer, &problem, flags);
                    if !report(&problem, &outcome, flags, &sinks, &fingerprint) {
                        failed += 1;
                    }
                }
                Err(msg) => {
                    eprintln!("{path}: error: {msg}");
                    failed += 1;
                }
            }
        }
        return batch_verdict(failed, paths.len());
    }

    // Parallel: load everything up front, fan the problems across the
    // worker pool, then print results in input order.
    let mut failed = 0usize;
    let mut tasks = Vec::new();
    for path in paths {
        match load_problem(path) {
            Ok(problem) => tasks.push(par_task(&problem, synthesizer_for(flags), flags)),
            Err(msg) => {
                eprintln!("{path}: error: {msg}");
                failed += 1;
            }
        }
    }
    failed += run_batch(tasks, flags, &sinks)?;
    batch_verdict(failed, paths.len())
}

/// Packages one problem for the worker pool.
fn par_task(problem: &Problem, synthesizer: Synthesizer, flags: &Flags) -> ParTask {
    ParTask {
        spec: problem.clone(),
        options: synthesizer.options().clone(),
        engine: ParEngine::Search,
        portfolio: flags.portfolio,
        collect_trace: flags.trace.is_some(),
    }
}

/// Fans `tasks` across the worker pool, writes the merged worker-tagged
/// trace, and reports every outcome in input order. Returns the number of
/// failed problems.
fn run_batch(tasks: Vec<ParTask>, flags: &Flags, sinks: &Sinks) -> Result<usize, String> {
    let jobs = flags.effective_jobs();
    eprintln!("running {} problems across {jobs} workers...", tasks.len());
    // Outcomes come back in input order, so the per-task fingerprints
    // (bench tuning varies the options per problem) line up by index.
    let fingerprints: Vec<String> = tasks
        .iter()
        .map(|t| options_fingerprint(&t.options))
        .collect();
    let outcomes = synthesize_batch(tasks, jobs);
    write_tagged_trace(&outcomes, flags)?;
    Ok(outcomes
        .iter()
        .zip(&fingerprints)
        .filter(|(o, fp)| !report_par(o, flags, sinks, fp))
        .count())
}

/// Writes the batch's trace events — tagged with problem and worker — as
/// one JSONL file, in input (not completion) order.
fn write_tagged_trace(outcomes: &[ParOutcome], flags: &Flags) -> Result<(), String> {
    let Some(path) = &flags.trace else {
        return Ok(());
    };
    use std::io::Write;
    let io_err = |e: std::io::Error| format!("writing trace file {}: {e}", path.display());
    let file = std::fs::File::create(path)
        .map_err(|e| format!("opening trace file {}: {e}", path.display()))?;
    let mut out = std::io::BufWriter::new(file);
    let mut lines = 0u64;
    for outcome in outcomes {
        for event in &outcome.events {
            // Progress heartbeats are wall-clock driven — volatile, like
            // `t_us` — so they are dropped from the merged trace to keep
            // it diffable across runs.
            if matches!(event, TraceEvent::Progress { .. }) {
                continue;
            }
            writeln!(
                out,
                "{}",
                tagged_event_json(event, &outcome.name, outcome.worker)
            )
            .map_err(io_err)?;
            lines += 1;
        }
    }
    out.flush().map_err(io_err)?;
    eprintln!("trace: {lines} events -> {}", path.display());
    Ok(())
}

/// [`report`] for a pool outcome: same summary lines, same `--stats-json`
/// record, same sink recording. Returns `true` when the problem was
/// solved.
fn report_par(outcome: &ParOutcome, flags: &Flags, sinks: &Sinks, fingerprint: &str) -> bool {
    let (solved, error, measurement) = match &outcome.result {
        Ok(report) => {
            let m = report.to_measurement(&outcome.name, outcome.examples);
            match &report.outcome {
                Ok(s) => {
                    emit_line(&s.program);
                    eprintln!(
                        "cost {}, {:.1} ms, {}",
                        s.cost,
                        report.elapsed.as_secs_f64() * 1e3,
                        s.stats
                    );
                    eprintln!("phases: {}", s.stats.phases);
                    (true, None, m)
                }
                Err(e) => {
                    if !report.frontier.is_empty() {
                        eprintln!("best incomplete candidates:");
                        for item in &report.frontier {
                            eprintln!("  cost {:3}  {}", item.cost, item.sketch);
                        }
                    }
                    (false, Some(e.to_string()), m)
                }
            }
        }
        Err(msg) => {
            let msg = format!("synthesis panicked: {msg}");
            let m = Measurement {
                name: outcome.name.clone(),
                elapsed: Duration::ZERO,
                solved: false,
                cost: 0,
                size: 0,
                program: String::new(),
                examples: outcome.examples,
                stats: Default::default(),
                error: Some(msg.clone()),
            };
            (false, Some(msg), m)
        }
    };
    if let Some(e) = &error {
        eprintln!("{}: error: {e}", outcome.name);
    }
    if flags.stats_json {
        emit_line(measurement.to_json());
    }
    sinks.record(&measurement, fingerprint);
    solved
}

fn cmd_run(path: &str, run_args: &[String], flags: &Flags) -> Result<(), String> {
    let sinks = prepare_sinks(flags)?;
    let problem = load_problem(path)?;
    eprintln!(
        "synthesizing `{}` from {} examples...",
        problem.name(),
        problem.examples().len()
    );
    let synthesizer = synthesizer_single(flags);
    let fingerprint = options_fingerprint(synthesizer.options());
    let outcome = run_synthesis(&synthesizer, &problem, flags);
    if !report(&problem, &outcome, flags, &sinks, &fingerprint) {
        return Err(format!("`{}` was not solved", problem.name()));
    }
    let program = match outcome {
        Ok(r) => r.outcome.expect("reported solved").program,
        Err(_) => unreachable!("report() returned true"),
    };
    let vals = run_args
        .iter()
        .map(|a| lambda2_lang::parser::parse_value(a).map_err(|e| e.to_string()))
        .collect::<Result<Vec<_>, _>>()?;
    let out = program.apply(&vals).map_err(|e| e.to_string())?;
    emit_line(&out);
    Ok(())
}

fn cmd_eval(expr: &str, bindings: &[String]) -> Result<(), String> {
    let e = lambda2_lang::parser::parse_expr(expr).map_err(|e| e.to_string())?;
    let mut env = lambda2_lang::env::Env::empty();
    for b in bindings {
        let (name, value) = b
            .split_once('=')
            .ok_or_else(|| format!("binding `{b}` is not of the form name=value"))?;
        let v = lambda2_lang::parser::parse_value(value).map_err(|e| e.to_string())?;
        env = env.bind(lambda2_lang::symbol::Symbol::intern(name), v);
    }
    let out = lambda2_lang::eval::eval_default(&e, &env).map_err(|e| e.to_string())?;
    emit_line(&out);
    Ok(())
}

fn cmd_bench(names: &[String], flags: &Flags) -> Result<(), String> {
    let sinks = prepare_sinks(flags)?;
    // One benchmark: `--jobs` parallelizes within the search rather than
    // fanning a one-item batch across the pool.
    let parallel = flags.effective_jobs() > 1 && names.len() > 1;
    let mut failed = 0usize;
    let mut tasks = Vec::new();
    for name in names {
        let Some(bench) = lambda2_bench_suite::by_name(name) else {
            eprintln!("{name}: error: unknown benchmark (try `l2 list`)");
            failed += 1;
            continue;
        };
        let mut options = bench.tune(SearchOptions::default());
        options.timeout = Some(Duration::from_secs(if bench.hard { 180 } else { 60 }));
        let mut options = flags.apply(options);
        if names.len() == 1 {
            options.jobs = flags.effective_jobs();
        }
        let synthesizer = Synthesizer::with_options(options);
        if parallel {
            tasks.push(par_task(&bench.problem, synthesizer, flags));
            continue;
        }
        let fingerprint = options_fingerprint(synthesizer.options());
        let outcome = run_synthesis(&synthesizer, &bench.problem, flags);
        if !report(&bench.problem, &outcome, flags, &sinks, &fingerprint) {
            failed += 1;
        }
    }
    if parallel {
        failed += run_batch(tasks, flags, &sinks)?;
    }
    batch_verdict(failed, names.len())
}

/// Statically checks each problem file, printing diagnostics as
/// `path: code: message` lines (or JSON Lines with `--json`). Exit codes:
/// 0 every file clean, 1 any diagnostic reported, 2 usage or I/O error.
///
/// Every file is checked even when an earlier one fails to read — an
/// unreadable file is reported (as an `io-error` JSON line with `--json`)
/// and the nonzero exit is deferred to the end, mirroring how a multi-
/// problem `l2 synth` reports every problem before failing the batch.
fn cmd_lint(paths: &[String], flags: &Flags) -> ExitCode {
    let mut diagnostics = 0usize;
    let mut io_errors = 0usize;
    for path in paths {
        let src = match std::fs::read_to_string(path) {
            Ok(src) => src,
            Err(e) => {
                io_errors += 1;
                if flags.json {
                    emit_line(Json::obj([
                        ("file", path.as_str().into()),
                        ("code", "io-error".into()),
                        ("message", e.to_string().as_str().into()),
                    ]));
                } else {
                    eprintln!("error: reading {path}: {e}");
                }
                continue;
            }
        };
        for d in lint_source(&src) {
            diagnostics += 1;
            if flags.json {
                emit_line(Json::obj([
                    ("file", path.as_str().into()),
                    ("code", d.code.name().into()),
                    ("message", d.message.as_str().into()),
                ]));
            } else {
                emit_line(format_args!("{path}: {}: {}", d.code.name(), d.message));
            }
        }
    }
    if io_errors > 0 {
        eprintln!(
            "{diagnostics} diagnostic(s), {io_errors} unreadable file(s) across {} file(s)",
            paths.len()
        );
        ExitCode::from(2)
    } else if diagnostics == 0 {
        eprintln!("{} file(s) clean", paths.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("{diagnostics} diagnostic(s) across {} file(s)", paths.len());
        ExitCode::FAILURE
    }
}

/// `l2 profile <summary|tree|diff|report> <trace>...` — offline analysis
/// of `--trace` JSONL files. Exit codes: 0 on success (for `diff`:
/// identical traces), 1 when `diff` finds a divergence or truncation,
/// 2 on usage or I/O errors.
fn cmd_profile(args: &[String], flags: &Flags) -> ExitCode {
    fn usage() -> ExitCode {
        eprintln!(
            "usage:\n  l2 profile summary <trace.jsonl> [--json]\n  \
             l2 profile tree <trace.jsonl> [--weight pops|time] [--out <path>]\n  \
             l2 profile diff <a.jsonl> <b.jsonl> [--json]\n  \
             l2 profile report <trace.jsonl> [--out <path>]"
        );
        ExitCode::from(2)
    }
    fn fail(msg: impl std::fmt::Display) -> ExitCode {
        eprintln!("error: {msg}");
        ExitCode::from(2)
    }
    /// Writes `content` to `--out` (or stdout when absent).
    fn deliver(content: &str, out: Option<&PathBuf>, what: &str) -> ExitCode {
        match out {
            Some(path) => match std::fs::write(path, content) {
                Ok(()) => {
                    eprintln!("{what} -> {}", path.display());
                    ExitCode::SUCCESS
                }
                Err(e) => fail(format_args!("writing {}: {e}", path.display())),
            },
            None => {
                emit(content);
                ExitCode::SUCCESS
            }
        }
    }

    match (args.first().map(String::as_str), &args[1..]) {
        (Some("summary"), [trace]) => {
            let trace = match load_trace(std::path::Path::new(trace)) {
                Ok(t) => t,
                Err(e) => return fail(e),
            };
            let summary = summarize(&trace);
            if flags.json {
                emit(&format!("{}\n", summary.to_json()));
            } else {
                emit(&summary.render_text());
            }
            ExitCode::SUCCESS
        }
        (Some("tree"), [trace]) => {
            let trace = match load_trace(std::path::Path::new(trace)) {
                Ok(t) => t,
                Err(e) => return fail(e),
            };
            let weight = match flags.weight.as_deref() {
                Some("time") => Weight::Time,
                _ => Weight::Pops,
            };
            let stacks = match collapse_tree(&trace, weight) {
                Ok(s) => s,
                Err(e) => return fail(e),
            };
            let mut out = String::new();
            for (stack, w) in &stacks {
                out.push_str(&format!("{stack} {w}\n"));
            }
            deliver(&out, flags.out.as_ref(), "collapsed stacks")
        }
        (Some("diff"), [a, b]) => {
            let (ta, tb) = match (
                load_trace(std::path::Path::new(a)),
                load_trace(std::path::Path::new(b)),
            ) {
                (Ok(ta), Ok(tb)) => (ta, tb),
                (Err(e), _) | (_, Err(e)) => return fail(e),
            };
            let outcome = diff_traces(&ta, &tb);
            if flags.json {
                emit(&format!("{}\n", diff_json(&outcome)));
            } else {
                let text = match &outcome {
                    DiffOutcome::Identical { events } => {
                        format!("identical: {events} events\n")
                    }
                    DiffOutcome::Truncated {
                        common,
                        len_a,
                        len_b,
                    } => format!(
                        "truncated: traces agree on the first {common} events, \
                         then one stops early ({len_a} vs {len_b} events)\n"
                    ),
                    DiffOutcome::Divergence {
                        index,
                        key_a,
                        key_b,
                    } => {
                        format!("divergence at event {index}:\n  a: {key_a}\n  b: {key_b}\n")
                    }
                };
                emit(&text);
            }
            if outcome.is_identical() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        (Some("report"), [trace_path]) => {
            let trace = match load_trace(std::path::Path::new(trace_path)) {
                Ok(t) => t,
                Err(e) => return fail(e),
            };
            let html = render_html(&trace, trace_path);
            let default_out = PathBuf::from(trace_path).with_extension("html");
            let out = flags.out.clone().unwrap_or(default_out);
            deliver(&html, Some(&out), "report")
        }
        _ => usage(),
    }
}

/// One JSON object describing a [`DiffOutcome`].
fn diff_json(outcome: &DiffOutcome) -> Json {
    match outcome {
        DiffOutcome::Identical { events } => Json::obj([
            ("outcome", "identical".into()),
            ("events", (*events as u64).into()),
        ]),
        DiffOutcome::Truncated {
            common,
            len_a,
            len_b,
        } => Json::obj([
            ("outcome", "truncated".into()),
            ("common", (*common as u64).into()),
            ("len_a", (*len_a as u64).into()),
            ("len_b", (*len_b as u64).into()),
        ]),
        DiffOutcome::Divergence {
            index,
            key_a,
            key_b,
        } => Json::obj([
            ("outcome", "divergence".into()),
            ("index", (*index as u64).into()),
            ("key_a", key_a.as_str().into()),
            ("key_b", key_b.as_str().into()),
        ]),
    }
}

/// `l2 corpus <ingest|list|stats|regress> ...` — the cross-run record
/// store and its regression watchdog. Exit codes: 0 on success (for
/// `regress`: no regression), 1 when `regress` finds a regression, 2 on
/// usage or I/O errors.
fn cmd_corpus(args: &[String], flags: &Flags) -> ExitCode {
    fn usage() -> ExitCode {
        eprintln!(
            "usage:\n  l2 corpus ingest <dir> <file>...\n  \
             l2 corpus list <dir> [--json]\n  \
             l2 corpus stats <dir> [--json]\n  \
             l2 corpus regress <baseline> <fresh> [--json] [--wall-ratio <f>] \
             [--wall-floor-ms <n>] [--no-wall-check]\n\
             <baseline>/<fresh> are corpus directories or runs.jsonl files;\n\
             ingest accepts --stats-json line files and BENCH_*.json documents"
        );
        ExitCode::from(2)
    }
    fn fail(msg: impl std::fmt::Display) -> ExitCode {
        eprintln!("error: {msg}");
        ExitCode::from(2)
    }
    /// Resolves a corpus directory (or a bare record file) to its records.
    fn load_store(raw: &str) -> Result<Vec<RunRecord>, String> {
        let path = std::path::Path::new(raw);
        let store = if path.is_dir() {
            path.join(lambda2_synth::obs::corpus::CORPUS_FILE)
        } else {
            path.to_path_buf()
        };
        if !store.exists() {
            return Err(format!("{}: no corpus store found", store.display()));
        }
        load_records(&store).map_err(|e| e.to_string())
    }
    /// Parses one ingest input: a whole-file JSON document (a bench
    /// report, or a single measurement) or JSON Lines of measurements.
    fn ingest_file(raw: &str) -> Result<Vec<RunRecord>, String> {
        use lambda2_synth::obs::corpus::ingest_fingerprint;
        use lambda2_synth::obs::json::parse;
        let text = std::fs::read_to_string(raw).map_err(|e| format!("reading {raw}: {e}"))?;
        // `--stats-json` lines carry no options, so every such record
        // shares one explicit ingest fingerprint: comparable with each
        // other, never with first-class fingerprinted runs.
        let stats_fp = ingest_fingerprint("stats-json\n");
        if let Ok(doc) = parse(text.trim()) {
            if doc.get("results").is_some() {
                return ingest_bench(&doc).map_err(|e| format!("{raw}: {e}"));
            }
            return ingest_measurement(&doc, &stats_fp)
                .map(|r| vec![r])
                .map_err(|e| format!("{raw}: {e}"));
        }
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let doc = parse(line).map_err(|e| format!("{raw}:{}: {e}", i + 1))?;
            records.push(
                ingest_measurement(&doc, &stats_fp).map_err(|e| format!("{raw}:{}: {e}", i + 1))?,
            );
        }
        Ok(records)
    }

    match (args.first().map(String::as_str), &args[1..]) {
        (Some("ingest"), [dir, files @ ..]) if !files.is_empty() => {
            let corpus = match Corpus::open(std::path::Path::new(dir)) {
                Ok(c) => c,
                Err(e) => return fail(e),
            };
            let mut total = 0usize;
            for file in files {
                let records = match ingest_file(file) {
                    Ok(r) => r,
                    Err(e) => return fail(e),
                };
                if let Err(e) = corpus.append(&records) {
                    return fail(e);
                }
                total += records.len();
            }
            eprintln!(
                "ingested {total} record(s) from {} file(s) -> {}",
                files.len(),
                corpus.store_path().display()
            );
            ExitCode::SUCCESS
        }
        (Some(cmd @ ("list" | "stats")), [dir]) => {
            let records = match load_store(dir) {
                Ok(r) => r,
                Err(e) => return fail(e),
            };
            let aggregates = aggregate(&records);
            let mut out = String::new();
            for a in &aggregates {
                if flags.json {
                    out.push_str(&format!("{}\n", a.to_json()));
                } else if cmd == "list" {
                    out.push_str(&format!(
                        "{:16} {:22} {:3} run(s)  {:3} solved\n",
                        a.problem, a.fingerprint, a.runs, a.solved
                    ));
                } else {
                    let cost = match (a.cost_lo, a.cost_hi) {
                        (Some(lo), Some(hi)) if lo == hi => format!("cost {lo}"),
                        (Some(lo), Some(hi)) => format!("cost {lo}..{hi} (forked!)"),
                        _ => "unsolved".to_owned(),
                    };
                    out.push_str(&format!(
                        "{:16} {:22} {:3}/{:<3} solved  {cost:24} wall p50 {:8.1} ms  \
                         p90 {:8.1} ms  max {:8.1} ms{}\n",
                        a.problem,
                        a.fingerprint,
                        a.solved,
                        a.runs,
                        a.wall_ms(0.5),
                        a.wall_ms(0.9),
                        a.wall_ms(1.0),
                        if a.counters_agree {
                            ""
                        } else {
                            "  [counters diverge across runs]"
                        }
                    ));
                }
            }
            if aggregates.is_empty() && !flags.json {
                out.push_str("(corpus is empty)\n");
            }
            emit(&out);
            ExitCode::SUCCESS
        }
        (Some("regress"), [baseline, fresh]) => {
            let (base, new) = match (load_store(baseline), load_store(fresh)) {
                (Ok(b), Ok(n)) => (b, n),
                (Err(e), _) | (_, Err(e)) => return fail(e),
            };
            let defaults = RegressThresholds::default();
            let thresholds = RegressThresholds {
                wall_ratio: flags.wall_ratio.unwrap_or(defaults.wall_ratio),
                wall_floor_ms: flags.wall_floor_ms.unwrap_or(defaults.wall_floor_ms),
                check_wall: !flags.no_wall_check,
            };
            let findings = regress(&base, &new, &thresholds);
            let regressions = findings
                .iter()
                .filter(|f| f.kind == FindingKind::Regression)
                .count();
            if flags.json {
                let mut out = String::new();
                for f in &findings {
                    out.push_str(&format!("{}\n", f.to_json()));
                }
                emit(&out);
            } else {
                let mut out = String::new();
                for f in &findings {
                    out.push_str(&format!(
                        "{}: {} [{}]: {}\n",
                        f.problem,
                        f.kind.name(),
                        f.fingerprint,
                        f.detail
                    ));
                }
                let groups: std::collections::BTreeSet<_> = new
                    .iter()
                    .map(|r| (r.problem.as_str(), r.fingerprint.as_str()))
                    .collect();
                out.push_str(&format!(
                    "{} fresh group(s) compared: {regressions} regression(s), {} note(s)\n",
                    groups.len(),
                    findings.len() - regressions
                ));
                emit(&out);
            }
            if regressions == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}

/// `l2 serve` — runs the synthesis daemon until a `shutdown` request or
/// (on Unix) SIGTERM/SIGINT, then drains and prints the final accounting
/// as one JSON line on stdout. `--timeout-ms` sets the *default*
/// per-request budget (requests may carry their own, capped by
/// `--max-timeout-ms`). Exit codes: 0 after a clean drain, 1 on a fatal
/// listener error, 2 on usage or bind errors.
fn cmd_serve(args: &[String], flags: &Flags) -> ExitCode {
    if args.first().map(String::as_str) == Some("report") {
        return cmd_serve_report(&args[1..], flags);
    }
    if let Some(extra) = args.first() {
        eprintln!("error: serve takes no positional arguments (got `{extra}`)");
        return ExitCode::from(2);
    }
    if flags.slow_trace_ms.is_some() != flags.slow_trace_dir.is_some() {
        eprintln!("error: --slow-trace-ms and --slow-trace-dir must be given together");
        return ExitCode::from(2);
    }
    if let Some(path) = &flags.access_log {
        if let Err(msg) = validate_out_path("--access-log", path) {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    }
    let mut config = ServeConfig {
        addr: flags
            .addr
            .clone()
            .unwrap_or_else(|| DEFAULT_SERVE_ADDR.to_owned()),
        options: flags.apply(SearchOptions::default()),
        corpus_dir: flags.corpus.clone(),
        access_log: flags.access_log.clone(),
        slow_trace_ms: flags.slow_trace_ms,
        slow_trace_dir: flags.slow_trace_dir.clone(),
        ..ServeConfig::default()
    };
    if let Some(jobs) = flags.jobs {
        config.workers = effective_jobs(jobs);
    }
    if let Some(slots) = flags.queue {
        config.queue_capacity = slots;
    }
    if let Some(ms) = flags.timeout_ms {
        config.default_timeout = Duration::from_millis(ms);
    }
    if let Some(ms) = flags.max_timeout_ms {
        config.max_timeout = Duration::from_millis(ms);
    }
    if let Some(bytes) = flags.warm_bytes {
        config.warm_cache_bytes = bytes;
    }
    if let Some(ms) = flags.drain_grace_ms {
        config.drain_grace = Duration::from_millis(ms);
    }
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: serve: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!("serve: listening on {}", server.local_addr());
    watch_signals(server.control());
    match server.run() {
        Ok(summary) => {
            eprintln!(
                "serve: drained in {:.1} ms ({} accepted, {} solved, {} shed, {} crashed; \
                 service p50/p99 {:.1}/{:.1} ms, queue wait p50/p99 {:.1}/{:.1} ms)",
                summary.drain_elapsed.as_secs_f64() * 1e3,
                summary.accepted,
                summary.solved,
                summary.shed,
                summary.crashed,
                summary.latency_ms(true, 0.5),
                summary.latency_ms(true, 0.99),
                summary.latency_ms(false, 0.5),
                summary.latency_ms(false, 0.99),
            );
            emit_line(summary.to_json());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `l2 serve report <access.jsonl>` — offline analyzer for a daemon's
/// access log. Prints a human-readable summary (or the full analysis as
/// one JSON line with `--json`) and writes a self-contained HTML
/// dashboard next to the log (or to `--out`). Exit codes: 0 on success,
/// 2 on usage errors or an unreadable/invalid log.
fn cmd_serve_report(args: &[String], flags: &Flags) -> ExitCode {
    let [log_path] = args else {
        eprintln!("usage: l2 serve report <access.jsonl> [--json] [--out <html>]");
        return ExitCode::from(2);
    };
    let records = match load_access_log(std::path::Path::new(log_path)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = AccessReport::analyze(&records);
    if flags.json {
        emit_line(report.to_json());
    } else {
        emit(&report.render_text());
    }
    let html = render_access_html(&report, log_path);
    let default_out = PathBuf::from(log_path).with_extension("html");
    let out = flags.out.clone().unwrap_or(default_out);
    match std::fs::write(&out, html) {
        Ok(()) => {
            eprintln!("dashboard -> {}", out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: writing {}: {e}", out.display());
            ExitCode::from(2)
        }
    }
}

/// Forwards SIGTERM/SIGINT to the daemon's drain flag. The handler body
/// is a single atomic store (async-signal-safe); a watcher thread does
/// the actual forwarding, and exits on its own if the daemon starts
/// draining for another reason (a `shutdown` request).
#[cfg(unix)]
fn watch_signals(control: std::sync::Arc<std::sync::atomic::AtomicBool>) {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERMINATE: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }

    extern "C" {
        /// POSIX `signal(2)`, hand-declared to keep the tree
        /// dependency-free; `sighandler_t` is a plain function pointer,
        /// passed as `usize`.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    // SIGTERM = 15 and SIGINT = 2 on every Unix target Rust supports.
    unsafe {
        signal(15, on_signal as extern "C" fn(i32) as usize);
        signal(2, on_signal as extern "C" fn(i32) as usize);
    }
    std::thread::spawn(move || loop {
        if TERMINATE.load(Ordering::SeqCst) {
            control.store(true, Ordering::SeqCst);
            return;
        }
        if control.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });
}

/// Off Unix the daemon is stopped via the `shutdown` protocol op.
#[cfg(not(unix))]
fn watch_signals(_control: std::sync::Arc<std::sync::atomic::AtomicBool>) {}

/// `l2 client` — sends requests to a running daemon, retrying sheds and
/// transport failures with seeded jittered backoff. Every response
/// document is printed as one JSON line on stdout, except `stats`, which
/// renders a human-readable counter table by default (pass `--json` for
/// the raw reply line); a short human summary goes to stderr. Exit
/// codes: 0 all requests `ok`, 1 any request failed (`error`/`unsolved`/
/// `shutting_down`, a `stats` reply without a server object, or
/// transport failure after retries), 2 usage or local I/O error, 3
/// otherwise-healthy runs where the daemon answered `overloaded` even
/// after the retry budget.
fn cmd_client(args: &[String], flags: &Flags) -> ExitCode {
    let addr = flags.addr.as_deref().unwrap_or(DEFAULT_SERVE_ADDR);
    let retries = flags.retries.unwrap_or(0);
    let mut backoff = Backoff::new(
        Duration::from_millis(flags.backoff_ms.unwrap_or(100)),
        Duration::from_secs(5),
        flags.seed.unwrap_or(0),
    );
    let mut requests: Vec<(String, Json)> = Vec::new();
    match args[0].as_str() {
        op @ ("ping" | "stats" | "shutdown") => {
            if args.len() > 1 {
                eprintln!("error: client {op} takes no further arguments");
                return ExitCode::from(2);
            }
            requests.push((
                op.to_owned(),
                Json::obj([("v", 1u64.into()), ("op", op.into())]),
            ));
        }
        "synth" => {
            if args.len() < 2 {
                eprintln!("error: client synth requires at least one problem file");
                return ExitCode::from(2);
            }
            for path in &args[1..] {
                let source = match std::fs::read_to_string(path) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error: reading {path}: {e}");
                        return ExitCode::from(2);
                    }
                };
                let mut pairs = vec![
                    ("v".to_owned(), 1u64.into()),
                    ("op".to_owned(), "synth".into()),
                    ("id".to_owned(), path.as_str().into()),
                    ("problem".to_owned(), source.into()),
                ];
                if let Some(ms) = flags.timeout_ms {
                    pairs.push(("timeout_ms".to_owned(), ms.into()));
                }
                if flags.portfolio {
                    pairs.push(("portfolio".to_owned(), true.into()));
                }
                requests.push((path.clone(), Json::Obj(pairs)));
            }
        }
        other => {
            eprintln!("error: unknown client op `{other}` (synth|ping|stats|shutdown)");
            return ExitCode::from(2);
        }
    }
    let mut failed = false;
    let mut overloaded = false;
    for (label, request) in &requests {
        let is_stats = request.get("op").and_then(Json::as_str) == Some("stats");
        match request_with_retry(addr, request, retries, &mut backoff) {
            Ok(resp) => {
                if !is_stats || flags.json {
                    emit_line(&resp);
                }
                match resp.get("status").and_then(Json::as_str) {
                    Some("ok") if is_stats => match resp.get("server") {
                        Some(server @ Json::Obj(_)) => {
                            if !flags.json {
                                emit(&render_server_stats(server));
                            }
                        }
                        _ => {
                            failed = true;
                            eprintln!("{label}: ok reply carries no `server` counters object");
                        }
                    },
                    Some("ok") => {
                        if let Some(program) = resp.get("program").and_then(Json::as_str) {
                            eprintln!("{label}: {program}");
                        }
                    }
                    Some("overloaded") => {
                        overloaded = true;
                        eprintln!(
                            "{label}: overloaded (retry_after_ms {})",
                            resp.get("retry_after_ms")
                                .and_then(Json::as_u64)
                                .unwrap_or(0)
                        );
                    }
                    status => {
                        failed = true;
                        eprintln!(
                            "{label}: {}: {}",
                            status.unwrap_or("reply carries no status"),
                            resp.get("error").and_then(Json::as_str).unwrap_or("-")
                        );
                    }
                }
            }
            Err(e) => {
                failed = true;
                eprintln!("error: {label}: {e}");
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else if overloaded {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}

/// Renders a daemon's `stats` counters object as an aligned
/// human-readable table: scalars one per row, histogram summaries
/// (`queue_wait_us`, `service_us`, `frame_bytes`) inlined as
/// `count/p50/p99/mean/max`, and count maps (per-op, per-client) as
/// indented sub-rows. Field order follows the reply, so new server
/// counters show up without a client change.
fn render_server_stats(server: &Json) -> String {
    fn scalar(v: &Json) -> String {
        match v {
            Json::Float(f) => format!("{f:.1}"),
            other => other.to_string(),
        }
    }
    let Json::Obj(pairs) = server else {
        return String::new();
    };
    let mut out = String::new();
    for (key, value) in pairs {
        match value {
            Json::Obj(sub) if sub.iter().any(|(k, _)| k == "count") => {
                let mut line = format!("{key:<26}");
                for field in ["count", "p50", "p99", "mean", "max"] {
                    if let Some(v) = value.get(field) {
                        line.push_str(&format!(" {field} {}", scalar(v)));
                    }
                }
                out.push_str(&line);
                out.push('\n');
            }
            Json::Obj(sub) => {
                out.push_str(key);
                out.push('\n');
                for (name, n) in sub {
                    out.push_str(&format!("  {name:<24} {}\n", scalar(n)));
                }
            }
            other => out.push_str(&format!("{key:<26} {}\n", scalar(other))),
        }
    }
    out
}

fn cmd_list() -> Result<(), String> {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for b in lambda2_bench_suite::catalog() {
        // Ignore broken pipes (e.g. `l2 list | head`).
        let _ = writeln!(
            out,
            "{:12} {:7} {:2} examples  {}{}",
            b.problem.name(),
            b.category.to_string(),
            b.problem.examples().len(),
            b.problem.description().unwrap_or(""),
            if b.hard { "  [hard]" } else { "" }
        );
    }
    Ok(())
}

/// Builds the default synthesizer for file-based commands.
fn synthesizer_for(flags: &Flags) -> Synthesizer {
    let options = flags.apply(SearchOptions {
        timeout: Some(Duration::from_secs(60)),
        ..SearchOptions::default()
    });
    Synthesizer::with_options(options)
}

/// [`synthesizer_for`] with `--jobs` applied as *within-problem*
/// parallelism ([`SearchOptions::jobs`]): a single-problem invocation has
/// no batch to fan out, so the workers verify candidates of the one
/// search instead. Results are byte-identical to `--jobs 1`.
fn synthesizer_single(flags: &Flags) -> Synthesizer {
    let mut options = flags.apply(SearchOptions {
        timeout: Some(Duration::from_secs(60)),
        ..SearchOptions::default()
    });
    options.jobs = flags.effective_jobs();
    Synthesizer::with_options(options)
}

/// Reads and parses a problem file.
fn load_problem(path: &str) -> Result<Problem, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse_problem(&src)
}

/// Summarizes a batch: `Ok` when every problem solved, a counting error
/// otherwise (the per-problem diagnostics were already printed).
fn batch_verdict(failed: usize, total: usize) -> Result<(), String> {
    if failed == 0 {
        Ok(())
    } else {
        Err(format!("{failed} of {total} problems failed"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "(problem evens\n  (params (l [int]))\n  (returns [int])\n  \
                          (example ([]) [])\n  (example ([1 2 3 4]) [2 4])\n  \
                          (example ([5 6]) [6]))";

    #[test]
    fn parse_problem_accepts_the_documented_format() {
        let p = parse_problem(SAMPLE).unwrap();
        assert_eq!(p.name(), "evens");
        assert_eq!(p.params().len(), 1);
        assert_eq!(p.examples().len(), 3);
        assert_eq!(p.return_type().to_string(), "[int]");
    }

    #[test]
    fn parse_problem_rejects_malformed_files() {
        assert!(parse_problem("(nonsense)").is_err());
        assert!(parse_problem("(problem)").is_err());
        assert!(parse_problem("(problem p (params (l [int])) (wat))").is_err());
        assert!(parse_problem("(problem p (params (l [int])) (returns [int]))").is_err());
        assert!(parse_problem("atom").is_err());
    }

    #[test]
    fn parse_problem_checks_example_shapes() {
        let bad = "(problem p (params (l [int])) (returns [int]) (example [1] [1]))";
        assert!(parse_problem(bad).is_err());
    }

    #[test]
    fn flags_extract_from_any_position() {
        let mut args: Vec<String> = ["synth", "--trace", "out.jsonl", "p.l2", "--stats-json"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let flags = Flags::extract(&mut args).unwrap();
        assert_eq!(
            flags.trace.as_deref(),
            Some(std::path::Path::new("out.jsonl"))
        );
        assert!(flags.stats_json);
        assert_eq!(args, vec!["synth".to_owned(), "p.l2".to_owned()]);

        let mut missing: Vec<String> = vec!["synth".into(), "--trace".into()];
        assert!(Flags::extract(&mut missing).is_err());
        let mut unknown: Vec<String> = vec!["--wat".into()];
        assert!(Flags::extract(&mut unknown).is_err());
    }

    #[test]
    fn governance_flags_parse_and_apply() {
        let mut args: Vec<String> = [
            "synth",
            "--timeout-ms",
            "250",
            "--max-overshoot-ms",
            "50",
            "--retry-ladder",
            "p.l2",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let flags = Flags::extract(&mut args).unwrap();
        assert_eq!(flags.timeout_ms, Some(250));
        assert_eq!(flags.max_overshoot_ms, Some(50));
        assert!(flags.retry_ladder);
        assert_eq!(args, vec!["synth".to_owned(), "p.l2".to_owned()]);

        let opts = flags.apply(SearchOptions::default());
        assert_eq!(opts.timeout, Some(Duration::from_millis(250)));
        assert_eq!(opts.max_overshoot, Duration::from_millis(50));
        assert!(opts.retry_ladder);
    }

    #[test]
    fn governance_flags_reject_bad_milliseconds() {
        let mut missing: Vec<String> = vec!["--timeout-ms".into()];
        assert!(Flags::extract(&mut missing).is_err());
        let mut junk: Vec<String> = vec!["--timeout-ms".into(), "soon".into()];
        let err = Flags::extract(&mut junk).unwrap_err();
        assert!(err.contains("soon"), "{err}");
        let mut negative: Vec<String> = vec!["--max-overshoot-ms".into(), "-5".into()];
        assert!(Flags::extract(&mut negative).is_err());
    }

    #[test]
    fn parallel_flags_parse() {
        let mut args: Vec<String> = ["bench", "--jobs", "4", "--portfolio", "evens"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let flags = Flags::extract(&mut args).unwrap();
        assert_eq!(flags.jobs, Some(4));
        assert!(flags.portfolio);
        assert_eq!(flags.effective_jobs(), 4);
        assert_eq!(args, vec!["bench".to_owned(), "evens".to_owned()]);

        // No flag = sequential; `--jobs 0` = one worker per CPU.
        assert_eq!(Flags::default().effective_jobs(), 1);
        let auto = Flags {
            jobs: Some(0),
            ..Flags::default()
        };
        assert!(auto.effective_jobs() >= 1);

        let mut missing: Vec<String> = vec!["--jobs".into()];
        assert!(Flags::extract(&mut missing).is_err());
        let mut junk: Vec<String> = vec!["--jobs".into(), "many".into()];
        assert!(Flags::extract(&mut junk).is_err());
    }

    #[test]
    fn lint_and_analysis_flags_parse_and_apply() {
        let mut args: Vec<String> = [
            "lint",
            "--json",
            "p.l2",
            "--no-static-analysis",
            "--no-static-prune",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let flags = Flags::extract(&mut args).unwrap();
        assert!(flags.json);
        assert!(flags.no_static_analysis);
        assert!(flags.no_static_prune);
        assert_eq!(args, vec!["lint".to_owned(), "p.l2".to_owned()]);

        let opts = flags.apply(SearchOptions::default());
        assert!(!opts.static_analysis);
        assert!(!opts.static_prune);
        let defaults = Flags::default().apply(SearchOptions::default());
        assert!(defaults.static_analysis);
        assert!(defaults.static_prune, "pruning ships on by default");
    }

    #[test]
    fn lint_reports_every_file_despite_an_unreadable_one() {
        let dir = std::env::temp_dir().join(format!("l2-lint-multi-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.l2");
        std::fs::write(
            &good,
            "(problem ident\n  (params (l [int]))\n  (returns [int])\n  \
             (example ([]) [])\n  (example ([1 2]) [1 2])\n  (example ([3]) [3]))\n",
        )
        .unwrap();
        let missing = dir.join("does-not-exist.l2");
        let paths = vec![
            missing.to_string_lossy().into_owned(),
            good.to_string_lossy().into_owned(),
        ];
        // The unreadable first file must not stop the second from being
        // linted; the I/O failure is reported and the exit is 2.
        let code = cmd_lint(&paths, &Flags::default());
        assert_eq!(code, ExitCode::from(2));
        // All files readable and clean: success.
        let code = cmd_lint(&paths[1..], &Flags::default());
        assert_eq!(code, ExitCode::SUCCESS);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_verdict_counts_failures() {
        assert!(batch_verdict(0, 3).is_ok());
        let err = batch_verdict(2, 3).unwrap_err();
        assert!(err.contains("2 of 3"), "{err}");
    }

    #[test]
    fn profile_flags_parse() {
        let mut args: Vec<String> = [
            "profile", "tree", "t.jsonl", "--weight", "time", "--out", "t.txt",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let flags = Flags::extract(&mut args).unwrap();
        assert_eq!(flags.weight.as_deref(), Some("time"));
        assert_eq!(flags.out.as_deref(), Some(std::path::Path::new("t.txt")));
        assert_eq!(args, vec!["profile", "tree", "t.jsonl"]);

        let mut bad: Vec<String> = vec!["--weight".into(), "bytes".into()];
        let err = Flags::extract(&mut bad).unwrap_err();
        assert!(err.contains("bytes"), "{err}");
        let mut missing: Vec<String> = vec!["--out".into()];
        assert!(Flags::extract(&mut missing).is_err());
    }

    #[test]
    fn trace_paths_with_missing_parents_are_rejected_up_front() {
        let flags = Flags {
            trace: Some(PathBuf::from("/nonexistent-dir-for-test/trace.jsonl")),
            ..Flags::default()
        };
        let err = validate_trace_path(&flags).unwrap_err();
        assert!(err.contains("/nonexistent-dir-for-test"), "{err}");
        assert!(err.contains("does not exist"), "{err}");

        // A bare filename (empty parent) and an existing directory pass.
        let bare = Flags {
            trace: Some(PathBuf::from("trace.jsonl")),
            ..Flags::default()
        };
        assert!(validate_trace_path(&bare).is_ok());
        let here = Flags {
            trace: Some(std::env::temp_dir().join("trace.jsonl")),
            ..Flags::default()
        };
        assert!(validate_trace_path(&here).is_ok());
        assert!(validate_trace_path(&Flags::default()).is_ok());
    }

    #[test]
    fn corpus_and_progress_flags_parse() {
        let mut args: Vec<String> = [
            "synth",
            "--corpus",
            "results/corpus",
            "--progress",
            "--stats-json=stats.jsonl",
            "p.l2",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let flags = Flags::extract(&mut args).unwrap();
        assert_eq!(
            flags.corpus.as_deref(),
            Some(std::path::Path::new("results/corpus"))
        );
        assert!(flags.progress);
        assert_eq!(
            flags.stats_json_out.as_deref(),
            Some(std::path::Path::new("stats.jsonl"))
        );
        assert!(!flags.stats_json);
        assert_eq!(args, vec!["synth".to_owned(), "p.l2".to_owned()]);

        // `--progress` is an options knob (the engine emits the events).
        assert!(flags.apply(SearchOptions::default()).progress);
        assert!(!Flags::default().apply(SearchOptions::default()).progress);

        let mut missing: Vec<String> = vec!["--corpus".into()];
        assert!(Flags::extract(&mut missing).is_err());
        let mut empty: Vec<String> = vec!["--stats-json=".into()];
        assert!(Flags::extract(&mut empty).is_err());
    }

    #[test]
    fn regress_threshold_flags_parse_and_validate() {
        let mut args: Vec<String> = [
            "corpus",
            "regress",
            "a",
            "b",
            "--wall-ratio",
            "2.0",
            "--wall-floor-ms",
            "250",
            "--no-wall-check",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let flags = Flags::extract(&mut args).unwrap();
        assert_eq!(flags.wall_ratio, Some(2.0));
        assert_eq!(flags.wall_floor_ms, Some(250.0));
        assert!(flags.no_wall_check);
        assert_eq!(args, vec!["corpus", "regress", "a", "b"]);

        let mut sub_one: Vec<String> = vec!["--wall-ratio".into(), "0.5".into()];
        assert!(Flags::extract(&mut sub_one).is_err());
        let mut negative: Vec<String> = vec!["--wall-floor-ms".into(), "-1".into()];
        assert!(Flags::extract(&mut negative).is_err());
        let mut junk: Vec<String> = vec!["--wall-ratio".into(), "fast".into()];
        assert!(Flags::extract(&mut junk).is_err());
    }

    #[test]
    fn output_paths_are_validated_before_any_search() {
        // A `--stats-json=` target with a missing parent fails up front...
        let bad_stats = Flags {
            stats_json_out: Some(PathBuf::from("/nonexistent-dir-for-test/stats.jsonl")),
            ..Flags::default()
        };
        let err = prepare_sinks(&bad_stats).unwrap_err();
        assert!(err.contains("does not exist"), "{err}");

        // ...a corpus path that collides with a file fails up front...
        let file = std::env::temp_dir().join(format!("l2-sink-test-{}", std::process::id()));
        std::fs::write(&file, "x").unwrap();
        let bad_corpus = Flags {
            corpus: Some(file.join("corpus")),
            ..Flags::default()
        };
        assert!(prepare_sinks(&bad_corpus).is_err());
        let _ = std::fs::remove_file(&file);

        // ...and no flags means no sinks.
        let sinks = prepare_sinks(&Flags::default()).unwrap();
        assert!(sinks.corpus.is_none());
        assert!(sinks.stats_json_out.is_none());
    }

    #[test]
    fn diff_json_covers_every_outcome() {
        let identical = diff_json(&DiffOutcome::Identical { events: 4 });
        assert_eq!(
            identical.get("outcome").and_then(Json::as_str),
            Some("identical")
        );
        assert_eq!(identical.get("events").and_then(Json::as_i64), Some(4));

        let truncated = diff_json(&DiffOutcome::Truncated {
            common: 2,
            len_a: 2,
            len_b: 5,
        });
        assert_eq!(
            truncated.get("outcome").and_then(Json::as_str),
            Some("truncated")
        );
        assert_eq!(truncated.get("len_b").and_then(Json::as_i64), Some(5));

        let diverged = diff_json(&DiffOutcome::Divergence {
            index: 1,
            key_a: "{\"ev\":\"pop\"}".into(),
            key_b: "{\"ev\":\"plan\"}".into(),
        });
        assert_eq!(
            diverged.get("outcome").and_then(Json::as_str),
            Some("divergence")
        );
        assert_eq!(diverged.get("index").and_then(Json::as_i64), Some(1));
        assert!(diverged
            .get("key_a")
            .and_then(Json::as_str)
            .unwrap()
            .contains("pop"));
    }
}
