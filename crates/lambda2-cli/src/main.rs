//! `l2` — the λ² synthesizer command-line tool.
//!
//! ```text
//! l2 synth <problem.l2>     synthesize a program from a problem file
//! l2 run <problem.l2> ARGS  synthesize, then run the program on ARGS
//! l2 eval <expr> [x=v]...   evaluate an expression under bindings
//! l2 bench <name>           run one suite benchmark by name
//! l2 list                   list the benchmark suite
//!
//! flags (synth/run/bench):
//!   --trace <path>   stream search telemetry as JSON Lines to <path>
//!   --stats-json     print the final measurement as one JSON line
//! ```
//!
//! Problem files are s-expressions:
//!
//! ```text
//! (problem evens
//!   (params (l [int]))
//!   (returns [int])
//!   (example ([]) [])
//!   (example ([1 2 3 4]) [2 4])
//!   (example ([5 6]) [6]))
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use lambda2_lang::parser::{parse_sexps, type_of_sexp, value_of_sexp, Sexp};
use lambda2_synth::{JsonlTracer, Measurement, Problem, ProblemBuilder, Synthesis, Synthesizer};

/// Telemetry flags shared by the synthesizing commands.
#[derive(Debug, Default)]
struct Flags {
    /// Write a JSONL trace of the search to this path.
    trace: Option<PathBuf>,
    /// Print the final `Measurement` as a single JSON line on stdout.
    stats_json: bool,
}

impl Flags {
    /// Extracts `--trace <path>` and `--stats-json` from `args` (any
    /// position), leaving the positional arguments behind.
    fn extract(args: &mut Vec<String>) -> Result<Flags, String> {
        let mut flags = Flags::default();
        let mut rest = Vec::with_capacity(args.len());
        let mut it = args.drain(..);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--trace" => match it.next() {
                    Some(path) => flags.trace = Some(PathBuf::from(path)),
                    None => return Err("--trace requires a file path".into()),
                },
                "--stats-json" => flags.stats_json = true,
                other if other.starts_with("--") => {
                    return Err(format!("unknown flag `{other}`"));
                }
                _ => rest.push(a),
            }
        }
        drop(it);
        *args = rest;
        Ok(flags)
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match Flags::extract(&mut args) {
        Ok(f) => f,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let result = match args.first().map(String::as_str) {
        Some("synth") if args.len() == 2 => cmd_synth(&args[1], &[], &flags),
        Some("run") if args.len() >= 3 => cmd_synth(&args[1], &args[2..], &flags),
        Some("eval") if args.len() >= 2 => cmd_eval(&args[1], &args[2..]),
        Some("bench") if args.len() == 2 => cmd_bench(&args[1], &flags),
        Some("list") => cmd_list(),
        _ => {
            eprintln!(
                "usage:\n  l2 [--trace <path>] [--stats-json] synth <problem.l2>\n  \
                 l2 [--trace <path>] [--stats-json] run <problem.l2> <arg>...\n  \
                 l2 eval <expr> [x=v]...\n  \
                 l2 [--trace <path>] [--stats-json] bench <name>\n  l2 list"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Runs synthesis, honoring `--trace`.
fn run_synthesis(
    synthesizer: &Synthesizer,
    problem: &Problem,
    flags: &Flags,
) -> Result<Synthesis, String> {
    let result = match &flags.trace {
        Some(path) => {
            let mut tracer = JsonlTracer::create(path)
                .map_err(|e| format!("opening trace file {}: {e}", path.display()))?;
            let r = synthesizer.synthesize_traced(problem, &mut tracer);
            let lines = tracer
                .finish()
                .map_err(|e| format!("writing trace file {}: {e}", path.display()))?;
            eprintln!("trace: {lines} events -> {}", path.display());
            r
        }
        None => synthesizer.synthesize(problem),
    };
    result.map_err(|e| e.to_string())
}

/// Prints the shared result summary (and the `--stats-json` line).
fn report(problem: &Problem, result: &Synthesis, flags: &Flags) {
    println!("{}", result.program);
    eprintln!(
        "cost {}, {:.1} ms, {}",
        result.cost,
        result.elapsed.as_secs_f64() * 1e3,
        result.stats
    );
    eprintln!("phases: {}", result.stats.phases);
    if flags.stats_json {
        let m = Measurement {
            name: problem.name().to_owned(),
            elapsed: result.elapsed,
            solved: true,
            cost: result.cost,
            size: result.program.body().size(),
            program: result.program.to_string(),
            examples: problem.examples().len(),
            stats: result.stats.clone(),
        };
        println!("{}", m.to_json());
    }
}

fn cmd_synth(path: &str, run_args: &[String], flags: &Flags) -> Result<(), String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let problem = parse_problem(&src)?;
    eprintln!(
        "synthesizing `{}` from {} examples...",
        problem.name(),
        problem.examples().len()
    );
    let synthesizer = Synthesizer::new().timeout(Duration::from_secs(60));
    let result = run_synthesis(&synthesizer, &problem, flags)?;
    report(&problem, &result, flags);
    if !run_args.is_empty() {
        let vals = run_args
            .iter()
            .map(|a| lambda2_lang::parser::parse_value(a).map_err(|e| e.to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        let out = result.program.apply(&vals).map_err(|e| e.to_string())?;
        println!("{out}");
    }
    Ok(())
}

fn cmd_eval(expr: &str, bindings: &[String]) -> Result<(), String> {
    let e = lambda2_lang::parser::parse_expr(expr).map_err(|e| e.to_string())?;
    let mut env = lambda2_lang::env::Env::empty();
    for b in bindings {
        let (name, value) = b
            .split_once('=')
            .ok_or_else(|| format!("binding `{b}` is not of the form name=value"))?;
        let v = lambda2_lang::parser::parse_value(value).map_err(|e| e.to_string())?;
        env = env.bind(lambda2_lang::symbol::Symbol::intern(name), v);
    }
    let out = lambda2_lang::eval::eval_default(&e, &env).map_err(|e| e.to_string())?;
    println!("{out}");
    Ok(())
}

fn cmd_bench(name: &str, flags: &Flags) -> Result<(), String> {
    let bench = lambda2_bench_suite::by_name(name)
        .ok_or_else(|| format!("unknown benchmark `{name}` (try `l2 list`)"))?;
    let mut options = bench.tune(lambda2_synth::SearchOptions::default());
    options.timeout = Some(Duration::from_secs(if bench.hard { 180 } else { 60 }));
    let synthesizer = Synthesizer::with_options(options);
    let result = run_synthesis(&synthesizer, &bench.problem, flags)?;
    report(&bench.problem, &result, flags);
    Ok(())
}

fn cmd_list() -> Result<(), String> {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for b in lambda2_bench_suite::catalog() {
        // Ignore broken pipes (e.g. `l2 list | head`).
        let _ = writeln!(
            out,
            "{:12} {:7} {:2} examples  {}{}",
            b.problem.name(),
            b.category.to_string(),
            b.problem.examples().len(),
            b.problem.description().unwrap_or(""),
            if b.hard { "  [hard]" } else { "" }
        );
    }
    Ok(())
}

/// Parses the `(problem …)` file format.
fn parse_problem(src: &str) -> Result<Problem, String> {
    let forms = parse_sexps(src).map_err(|e| e.to_string())?;
    let [Sexp::List(items)] = forms.as_slice() else {
        return Err("expected a single top-level `(problem …)` form".into());
    };
    let mut it = items.iter();
    match it.next() {
        Some(Sexp::Atom(a)) if a == "problem" => {}
        _ => return Err("file must start with `(problem <name> …)`".into()),
    }
    let name = match it.next() {
        Some(Sexp::Atom(n)) => n.clone(),
        _ => return Err("missing problem name".into()),
    };
    let mut builder: ProblemBuilder = Problem::builder(name);
    for form in it {
        let Sexp::List(parts) = form else {
            return Err(format!("unexpected form `{form}`"));
        };
        match parts.split_first() {
            Some((Sexp::Atom(head), rest)) => match head.as_str() {
                "params" => {
                    for p in rest {
                        let Sexp::List(pair) = p else {
                            return Err(format!("bad param `{p}`"));
                        };
                        let [Sexp::Atom(pname), ty] = pair.as_slice() else {
                            return Err(format!("bad param `{p}` (want `(name type)`)"));
                        };
                        let ty = type_of_sexp(ty).map_err(|e| e.to_string())?;
                        builder = builder.param(pname, &ty.to_string());
                    }
                }
                "returns" => {
                    let [ty] = rest else {
                        return Err("`returns` takes one type".into());
                    };
                    let ty = type_of_sexp(ty).map_err(|e| e.to_string())?;
                    builder = builder.returns(&ty.to_string());
                }
                "example" => {
                    let [Sexp::List(ins), out] = rest else {
                        return Err("`example` takes `(args…)` and an output".into());
                    };
                    let inputs = ins
                        .iter()
                        .map(value_of_sexp)
                        .collect::<Result<Vec<_>, _>>()
                        .map_err(|e| e.to_string())?;
                    let output = value_of_sexp(out).map_err(|e| e.to_string())?;
                    builder = builder.example_values(inputs, output);
                }
                "describe" => {
                    let [Sexp::Atom(text)] = rest else {
                        return Err("`describe` takes one atom".into());
                    };
                    builder = builder.describe(text.clone());
                }
                other => return Err(format!("unknown section `{other}`")),
            },
            _ => return Err(format!("unexpected form `{form}`")),
        }
    }
    builder.build().map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "(problem evens\n  (params (l [int]))\n  (returns [int])\n  \
                          (example ([]) [])\n  (example ([1 2 3 4]) [2 4])\n  \
                          (example ([5 6]) [6]))";

    #[test]
    fn parse_problem_accepts_the_documented_format() {
        let p = parse_problem(SAMPLE).unwrap();
        assert_eq!(p.name(), "evens");
        assert_eq!(p.params().len(), 1);
        assert_eq!(p.examples().len(), 3);
        assert_eq!(p.return_type().to_string(), "[int]");
    }

    #[test]
    fn parse_problem_rejects_malformed_files() {
        assert!(parse_problem("(nonsense)").is_err());
        assert!(parse_problem("(problem)").is_err());
        assert!(parse_problem("(problem p (params (l [int])) (wat))").is_err());
        assert!(parse_problem("(problem p (params (l [int])) (returns [int]))").is_err());
        assert!(parse_problem("atom").is_err());
    }

    #[test]
    fn parse_problem_checks_example_shapes() {
        let bad = "(problem p (params (l [int])) (returns [int]) (example [1] [1]))";
        assert!(parse_problem(bad).is_err());
    }

    #[test]
    fn flags_extract_from_any_position() {
        let mut args: Vec<String> = ["synth", "--trace", "out.jsonl", "p.l2", "--stats-json"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let flags = Flags::extract(&mut args).unwrap();
        assert_eq!(
            flags.trace.as_deref(),
            Some(std::path::Path::new("out.jsonl"))
        );
        assert!(flags.stats_json);
        assert_eq!(args, vec!["synth".to_owned(), "p.l2".to_owned()]);

        let mut missing: Vec<String> = vec!["synth".into(), "--trace".into()];
        assert!(Flags::extract(&mut missing).is_err());
        let mut unknown: Vec<String> = vec!["--wat".into()];
        assert!(Flags::extract(&mut unknown).is_err());
    }
}
