//! Workload generators for the scaling experiments.
//!
//! The example-sensitivity figure sweeps the *number of examples* given to
//! the synthesizer. Examples are generated deterministically from a seed:
//! inputs follow the same chain discipline as the curated suite (prefix
//! chains for lists, subtree-closed families for trees), and outputs are
//! computed by the benchmark's reference solution — so every generated
//! problem is consistent and solvable by construction.

use lambda2_lang::eval::DEFAULT_FUEL;
use lambda2_lang::ty::Type;
use lambda2_lang::value::{Tree, Value};
use lambda2_synth::Problem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Benchmark;

/// A uniformly random list of `len` integers in `0..max_val`.
pub fn random_list(len: usize, max_val: i64, rng: &mut StdRng) -> Value {
    (0..len)
        .map(|_| Value::Int(rng.gen_range(0..max_val)))
        .collect()
}

/// A random rose tree with exactly `size` nodes and values in `0..max_val`.
pub fn random_tree(size: usize, max_val: i64, rng: &mut StdRng) -> Tree {
    if size == 0 {
        return Tree::empty();
    }
    let value = Value::Int(rng.gen_range(0..max_val));
    let mut remaining = size - 1;
    let mut children = Vec::new();
    while remaining > 0 {
        let take = rng.gen_range(1..=remaining);
        children.push(random_tree(take, max_val, rng));
        remaining -= take;
    }
    Tree::node(value, children)
}

/// All subtrees of `t` (including `t` itself), smallest first, preceded by
/// the empty tree — a subtree-closed input family for `foldt` deduction.
pub fn subtree_family(t: &Tree) -> Vec<Tree> {
    let mut out = vec![Tree::empty()];
    fn go(t: &Tree, out: &mut Vec<Tree>) {
        if let Some(n) = t.root() {
            for c in &n.children {
                go(c, out);
            }
            out.push(t.clone());
        }
    }
    go(t, &mut out);
    out
}

/// Builds a variant of `bench`'s problem with `k` generated examples.
///
/// Returns `None` for signatures the generator does not support
/// (multi-parameter problems). Inputs are chain-shaped per the input type;
/// outputs come from the reference solution, skipping inputs on which the
/// reference errors (e.g. `head []`).
pub fn example_sweep(bench: &Benchmark, k: usize, seed: u64) -> Option<Problem> {
    let params = bench.problem.params();
    if params.len() != 1 {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let reference = bench.reference_program();

    // Candidate inputs, chain-ordered; generously oversized so that after
    // dropping reference errors we still have k examples.
    let budget = 2 * k + 8;
    let inputs: Vec<Value> = match &params[0].1 {
        Type::List(inner) if **inner == Type::Int => {
            let base = random_list(budget, 10, &mut rng);
            let base = base.as_list().expect("random_list returns a list");
            (0..=base.len())
                .map(|n| Value::list(base[..n].to_vec()))
                .collect()
        }
        Type::List(inner) if **inner == Type::list(Type::Int) => {
            let base: Vec<Value> = (0..budget)
                .map(|_| random_list(rng.gen_range(1..4), 10, &mut rng))
                .collect();
            (0..=base.len())
                .map(|n| Value::list(base[..n].to_vec()))
                .collect()
        }
        Type::Tree(inner) if **inner == Type::Int => {
            let t = random_tree(budget.min(14), 10, &mut rng);
            subtree_family(&t).into_iter().map(Value::Tree).collect()
        }
        _ => return None,
    };

    let mut builder = Problem::builder(format!("{}@{k}", bench.problem.name()))
        .library(bench.problem.library().clone());
    builder = builder.param(params[0].0.as_str(), &params[0].1.to_string());
    builder = builder.returns(&bench.problem.return_type().to_string());
    let mut added = 0;
    for input in inputs {
        if added >= k {
            break;
        }
        if let Ok(output) = reference.apply_with_fuel(std::slice::from_ref(&input), DEFAULT_FUEL) {
            builder = builder.example_values(vec![input], output);
            added += 1;
        }
    }
    if added == 0 {
        return None;
    }
    builder.build().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::by_name;

    #[test]
    fn random_list_has_requested_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = random_list(5, 10, &mut rng);
        assert_eq!(v.as_list().unwrap().len(), 5);
    }

    #[test]
    fn random_tree_has_requested_size() {
        let mut rng = StdRng::seed_from_u64(2);
        for size in [0, 1, 5, 12] {
            let t = random_tree(size, 10, &mut rng);
            assert_eq!(t.size(), size);
        }
    }

    #[test]
    fn subtree_family_is_closed_and_starts_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = random_tree(7, 10, &mut rng);
        let fam = subtree_family(&t);
        assert!(fam[0].is_empty());
        assert_eq!(fam.len(), 8); // 7 subtrees + the empty tree
                                  // Every child of every family member is itself in the family.
        for m in &fam {
            if let Some(n) = m.root() {
                for c in &n.children {
                    assert!(fam.iter().any(|f| f == c));
                }
            }
        }
    }

    #[test]
    fn example_sweep_is_deterministic_and_consistent() {
        let bench = by_name("sum").unwrap();
        let p1 = example_sweep(&bench, 5, 42).unwrap();
        let p2 = example_sweep(&bench, 5, 42).unwrap();
        assert_eq!(p1.examples().len(), 5);
        assert_eq!(p1.examples(), p2.examples());
        // Outputs agree with the reference.
        let reference = bench.reference_program();
        for ex in p1.examples() {
            assert_eq!(
                reference.apply_with_fuel(&ex.inputs, DEFAULT_FUEL).unwrap(),
                ex.output
            );
        }
    }

    #[test]
    fn example_sweep_skips_reference_errors() {
        // `head` errors on []; the sweep must silently drop that input.
        let bench = by_name("head").unwrap();
        let p = example_sweep(&bench, 4, 7).unwrap();
        assert_eq!(p.examples().len(), 4);
        for ex in p.examples() {
            assert!(!ex.inputs[0].as_list().unwrap().is_empty());
        }
    }

    #[test]
    fn example_sweep_supports_trees_and_nested_lists() {
        for name in ["sumt", "sums"] {
            let bench = by_name(name).unwrap();
            let p = example_sweep(&bench, 4, 9).unwrap();
            assert!(p.examples().len() >= 3, "{name}");
        }
    }

    #[test]
    fn example_sweep_rejects_multi_param_problems() {
        let bench = by_name("append").unwrap();
        assert!(example_sweep(&bench, 4, 1).is_none());
    }
}
