//! # `lambda2-bench-suite` — the λ² evaluation benchmark suite
//!
//! The synthesis problems used by the paper's evaluation (PLDI 2015, §6):
//! list transformations, tree transformations over variadic trees, and
//! nested-structure problems, each defined by a typed signature and a
//! curated input-output example set. Fold-shaped problems ship with
//! prefix/tail/subtree *chains* in their examples — exactly the example
//! discipline the paper's deduction rules exploit.
//!
//! Every benchmark carries a reference solution (used by tests and by the
//! workload [`generators`]) and an optional per-problem search-option
//! tweak for the handful of problems whose minimal solutions exceed the
//! default enumeration budgets.
//!
//! # Examples
//!
//! ```
//! use lambda2_bench_suite::{catalog, Category};
//!
//! let suite = catalog();
//! assert!(suite.len() >= 45);
//! assert!(suite.iter().any(|b| b.problem.name() == "dropmins"));
//! assert!(suite.iter().any(|b| b.category == Category::Trees));
//! ```

#![warn(missing_docs)]

mod dups;
pub mod generators;
mod lists;
mod nested;
mod pairs;
mod trees;

use lambda2_synth::{Problem, SearchOptions};

/// Problem family, mirroring the paper's grouping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// Flat list transformations.
    Lists,
    /// Variadic-tree transformations.
    Trees,
    /// Nested structures (lists of lists, lists of trees, trees of lists).
    Nested,
    /// Pair transformations (opt-in `pair`/`fst`/`snd` components).
    Pairs,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Category::Lists => write!(f, "lists"),
            Category::Trees => write!(f, "trees"),
            Category::Nested => write!(f, "nested"),
            Category::Pairs => write!(f, "pairs"),
        }
    }
}

/// One benchmark of the suite.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// The synthesis problem (signature + examples + component library).
    pub problem: Problem,
    /// The problem family.
    pub category: Category,
    /// A reference solution in surface syntax — a witness that the problem
    /// is solvable, used by tests and by the example generators. The
    /// synthesizer may find a different (never costlier) program.
    pub reference: &'static str,
    /// `true` for problems whose minimal solution needs budgets beyond the
    /// defaults; the harness runs these with [`Benchmark::tune`]d options
    /// and a longer timeout.
    pub hard: bool,
    /// Per-problem search-option adjustment (applied by [`Benchmark::tune`]).
    pub adjust: Option<fn(&mut SearchOptions)>,
}

impl Benchmark {
    pub(crate) fn new(category: Category, problem: Problem, reference: &'static str) -> Benchmark {
        Benchmark {
            problem,
            category,
            reference,
            hard: false,
            adjust: None,
        }
    }

    pub(crate) fn hard(mut self) -> Benchmark {
        self.hard = true;
        self
    }

    pub(crate) fn adjust(mut self, f: fn(&mut SearchOptions)) -> Benchmark {
        self.adjust = Some(f);
        self
    }

    /// Applies this benchmark's option adjustments to `options`.
    pub fn tune(&self, mut options: SearchOptions) -> SearchOptions {
        if let Some(f) = self.adjust {
            f(&mut options);
        }
        options
    }

    /// Parses the reference solution into a runnable program.
    ///
    /// # Panics
    ///
    /// Panics if the reference text is malformed — suite definitions are
    /// static data validated by the crate's tests.
    pub fn reference_program(&self) -> lambda2_synth::Program {
        let body =
            lambda2_lang::parser::parse_expr(self.reference).expect("reference solutions parse");
        lambda2_synth::Program::new(self.problem.params().to_vec(), body)
    }
}

/// The full benchmark suite, in a fixed deterministic order
/// (lists, then duplicate-bearing lists, then trees, then nested, then
/// pairs).
pub fn catalog() -> Vec<Benchmark> {
    let mut out = lists::benchmarks();
    out.extend(dups::benchmarks());
    out.extend(trees::benchmarks());
    out.extend(nested::benchmarks());
    out.extend(pairs::benchmarks());
    out
}

/// Looks a benchmark up by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    catalog().into_iter().find(|b| b.problem.name() == name)
}

/// Shorthand used by the suite definition modules.
pub(crate) fn problem(
    name: &str,
    params: &[(&str, &str)],
    ret: &str,
    describe: &str,
    examples: &[(&[&str], &str)],
) -> Problem {
    let mut b = Problem::builder(name).describe(describe);
    for (n, t) in params {
        b = b.param(n, t);
    }
    b = b.returns(ret);
    for (ins, out) in examples {
        b = b.example(ins, out);
    }
    b.build()
        .unwrap_or_else(|e| panic!("benchmark `{name}` is malformed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda2_lang::eval::DEFAULT_FUEL;
    use std::collections::HashSet;

    #[test]
    fn catalog_is_nonempty_and_names_are_unique() {
        let suite = catalog();
        assert!(suite.len() >= 45, "only {} benchmarks", suite.len());
        let names: HashSet<&str> = suite.iter().map(|b| b.problem.name()).collect();
        assert_eq!(names.len(), suite.len(), "duplicate benchmark names");
    }

    #[test]
    fn surface_syntax_round_trips_across_the_catalog() {
        // Pretty-printer ↔ parser audit over every type, value, constant,
        // and reference solution in the suite: rendering and re-parsing
        // must be the identity. This is the lossiness hazard the old
        // string-smuggling thread handoff (`PortableProblem`) lived on;
        // the handoff is gone, but serve's wire protocol still renders
        // specs to surface syntax, so the audit stays.
        use lambda2_lang::parser::{parse_expr, parse_type, parse_value};
        for b in catalog() {
            let p = &b.problem;
            let name = p.name();
            for (sym, ty) in p.params() {
                let rendered = ty.to_string();
                let reparsed = parse_type(&rendered)
                    .unwrap_or_else(|e| panic!("{name}: param {sym}: `{rendered}`: {e}"));
                assert_eq!(reparsed, *ty, "{name}: param {sym} type drifts");
            }
            let ret = p.return_type().to_string();
            assert_eq!(
                parse_type(&ret).unwrap_or_else(|e| panic!("{name}: return `{ret}`: {e}")),
                *p.return_type(),
                "{name}: return type drifts"
            );
            for (i, ex) in p.examples().iter().enumerate() {
                for v in ex.inputs.iter().chain([&ex.output]) {
                    let rendered = v.to_string();
                    let reparsed = parse_value(&rendered)
                        .unwrap_or_else(|e| panic!("{name}: example {i}: `{rendered}`: {e}"));
                    assert_eq!(reparsed, *v, "{name}: example {i} value drifts");
                }
            }
            for c in p.library().constants() {
                let rendered = c.to_string();
                let reparsed = parse_value(&rendered)
                    .unwrap_or_else(|e| panic!("{name}: constant `{rendered}`: {e}"));
                assert_eq!(reparsed, *c, "{name}: constant drifts");
            }
            let body = parse_expr(b.reference).unwrap_or_else(|e| panic!("{name}: reference: {e}"));
            let rendered = body.to_string();
            let reparsed = parse_expr(&rendered)
                .unwrap_or_else(|e| panic!("{name}: rendered reference `{rendered}`: {e}"));
            assert_eq!(reparsed, body, "{name}: reference expr drifts");
        }
    }

    #[test]
    fn every_category_is_represented() {
        let suite = catalog();
        for cat in [Category::Lists, Category::Trees, Category::Nested] {
            assert!(
                suite.iter().filter(|b| b.category == cat).count() >= 5,
                "too few {cat} benchmarks"
            );
        }
        assert!(
            suite
                .iter()
                .filter(|b| b.category == Category::Pairs)
                .count()
                >= 3,
            "too few pair benchmarks"
        );
    }

    #[test]
    fn reference_solutions_satisfy_their_examples() {
        for b in catalog() {
            let prog = b.reference_program();
            for (i, ex) in b.problem.examples().iter().enumerate() {
                let got = prog.apply_with_fuel(&ex.inputs, DEFAULT_FUEL);
                assert_eq!(
                    got.as_ref().ok(),
                    Some(&ex.output),
                    "benchmark `{}` example #{i}: reference `{}` gave {:?}, expected {}",
                    b.problem.name(),
                    b.reference,
                    got,
                    ex.output
                );
            }
        }
    }

    #[test]
    fn every_benchmark_has_enough_examples() {
        for b in catalog() {
            assert!(
                b.problem.examples().len() >= 3,
                "benchmark `{}` has only {} examples",
                b.problem.name(),
                b.problem.examples().len()
            );
        }
    }

    #[test]
    fn by_name_finds_benchmarks() {
        assert!(by_name("reverse").is_some());
        assert!(by_name("dropmins").is_some());
        assert!(by_name("no-such-benchmark").is_none());
    }

    #[test]
    fn hard_benchmarks_are_a_small_minority() {
        let suite = catalog();
        let hard = suite.iter().filter(|b| b.hard).count();
        assert!(hard * 5 <= suite.len(), "{hard} hard of {}", suite.len());
    }
}
