//! Pair-transformation benchmarks.
//!
//! The pair operators (`pair`, `fst`, `snd`) are opt-in components — the
//! default library omits them so they don't enlarge the search space of
//! problems that never mention pairs — so every benchmark here carries an
//! extended library.

use lambda2_lang::ast::Op;
use lambda2_synth::Library;

use crate::{problem, Benchmark, Category};

fn pair_library() -> Library {
    Library::default().with_ops(&[Op::MkPair, Op::Fst, Op::Snd])
}

pub(crate) fn benchmarks() -> Vec<Benchmark> {
    // `pair` composes any two terms, so unrestricted first-order
    // enumeration is quadratic per level; every solution's enumerable
    // fragment costs <= 5, so a tier cap keeps these fast.
    let b = |p: lambda2_synth::Problem, r| {
        Benchmark::new(Category::Pairs, p.with_library(pair_library()), r)
            .adjust(|o| o.max_term_cost = 6)
    };
    vec![
        b(
            problem(
                "firsts",
                &[("l", "[(pair int int)]")],
                "[int]",
                "first component of every pair",
                &[
                    (&["[]"], "[]"),
                    (&["[(pair 1 7)]"], "[1]"),
                    (&["[(pair 3 2) (pair 9 4)]"], "[3 9]"),
                ],
            ),
            "(map (lambda (x) (fst x)) l)",
        ),
        b(
            problem(
                "seconds",
                &[("l", "[(pair int int)]")],
                "[int]",
                "second component of every pair",
                &[
                    (&["[]"], "[]"),
                    (&["[(pair 1 7)]"], "[7]"),
                    (&["[(pair 3 2) (pair 9 4)]"], "[2 4]"),
                ],
            ),
            "(map (lambda (x) (snd x)) l)",
        ),
        b(
            problem(
                "swaps",
                &[("l", "[(pair int int)]")],
                "[(pair int int)]",
                "swap the components of every pair",
                &[
                    (&["[]"], "[]"),
                    (&["[(pair 1 7)]"], "[(pair 7 1)]"),
                    (&["[(pair 3 2) (pair 9 4)]"], "[(pair 2 3) (pair 4 9)]"),
                ],
            ),
            "(map (lambda (x) (pair (snd x) (fst x))) l)",
        ),
        b(
            problem(
                "sumpairs",
                &[("l", "[(pair int int)]")],
                "[int]",
                "componentwise sum of every pair",
                &[
                    (&["[]"], "[]"),
                    (&["[(pair 3 2)]"], "[5]"),
                    (&["[(pair 1 7) (pair 9 4)]"], "[8 13]"),
                    (&["[(pair 2 2)]"], "[4]"),
                ],
            ),
            "(map (lambda (x) (+ (fst x) (snd x))) l)",
        ),
        b(
            problem(
                "swap",
                &[("p", "(pair int int)")],
                "(pair int int)",
                "swap the components of a pair",
                &[
                    (&["(pair 1 7)"], "(pair 7 1)"),
                    (&["(pair 3 3)"], "(pair 3 3)"),
                    (&["(pair 9 4)"], "(pair 4 9)"),
                ],
            ),
            "(pair (snd p) (fst p))",
        ),
        b(
            problem(
                "unzip_firsts",
                &[("p", "(pair [int] [int])")],
                "[int]",
                "project a pair of lists onto its first list",
                &[
                    (&["(pair [] [])"], "[]"),
                    (&["(pair [3 1] [7])"], "[3 1]"),
                    (&["(pair [9] [2 5])"], "[9]"),
                ],
            ),
            "(fst p)",
        ),
    ]
}
