//! List-transformation benchmarks.
//!
//! Example sets follow the paper's discipline:
//!
//! * fold-shaped problems include prefix/tail chains (`[]`, `[a]`,
//!   `[a b]`, `[a b c]`) so the chain-deduction rules fire;
//! * values are irregular (no arithmetic progressions) so that cheap
//!   coincidental programs are rejected by verification — with a
//!   minimal-cost synthesizer, weak examples *will* be overfitted.

use lambda2_lang::ast::Op;
use lambda2_synth::Library;

use crate::{problem, Benchmark, Category};

pub(crate) fn benchmarks() -> Vec<Benchmark> {
    let b = |p, r| Benchmark::new(Category::Lists, p, r);
    vec![
        b(
            problem(
                "ident",
                &[("l", "[int]")],
                "[int]",
                "the identity transformation",
                &[(&["[]"], "[]"), (&["[1 2]"], "[1 2]"), (&["[3]"], "[3]")],
            ),
            "l",
        ),
        b(
            problem(
                "head",
                &[("l", "[int]")],
                "int",
                "first element of a non-empty list",
                &[(&["[3 1]"], "3"), (&["[5]"], "5"), (&["[2 9 4]"], "2")],
            ),
            "(car l)",
        ),
        b(
            problem(
                "tail",
                &[("l", "[int]")],
                "[int]",
                "all but the first element",
                &[
                    (&["[3 1]"], "[1]"),
                    (&["[5]"], "[]"),
                    (&["[2 9 4]"], "[9 4]"),
                ],
            ),
            "(cdr l)",
        ),
        b(
            problem(
                "last",
                &[("l", "[int]")],
                "int",
                "last element of a non-empty list",
                &[
                    (&["[5]"], "5"),
                    (&["[5 2]"], "2"),
                    (&["[5 2 4]"], "4"),
                    (&["[7 1 6 3]"], "3"),
                ],
            ),
            "(foldl (lambda (a x) x) 0 l)",
        ),
        b(
            problem(
                "length",
                &[("l", "[int]")],
                "int",
                "number of elements",
                &[
                    (&["[]"], "0"),
                    (&["[7]"], "1"),
                    (&["[7 4]"], "2"),
                    (&["[7 4 9]"], "3"),
                ],
            ),
            "(foldl (lambda (a x) (+ a 1)) 0 l)",
        ),
        b(
            problem(
                "sum",
                &[("l", "[int]")],
                "int",
                "sum of the elements",
                &[
                    (&["[]"], "0"),
                    (&["[5]"], "5"),
                    (&["[5 3]"], "8"),
                    (&["[5 3 9]"], "17"),
                ],
            ),
            "(foldl (lambda (a x) (+ a x)) 0 l)",
        ),
        b(
            problem(
                "incr",
                &[("l", "[int]")],
                "[int]",
                "add one to every element",
                &[(&["[]"], "[]"), (&["[1 7]"], "[2 8]"), (&["[4]"], "[5]")],
            ),
            "(map (lambda (x) (+ x 1)) l)",
        ),
        b(
            problem(
                "double",
                &[("l", "[int]")],
                "[int]",
                "double every element",
                &[(&["[]"], "[]"), (&["[1 7]"], "[2 14]"), (&["[5]"], "[10]")],
            ),
            "(map (lambda (x) (* x 2)) l)",
        ),
        b(
            problem(
                "square",
                &[("l", "[int]")],
                "[int]",
                "square every element",
                &[
                    (&["[]"], "[]"),
                    (&["[2 3]"], "[4 9]"),
                    (&["[5]"], "[25]"),
                    (&["[1 7]"], "[1 49]"),
                ],
            ),
            "(map (lambda (x) (* x x)) l)",
        ),
        b(
            problem(
                "negate",
                &[("l", "[int]")],
                "[int]",
                "negate every element",
                &[(&["[]"], "[]"), (&["[1 7]"], "[-1 -7]"), (&["[-3]"], "[3]")],
            ),
            "(map (lambda (x) (- 0 x)) l)",
        ),
        b(
            problem(
                "multfirst",
                &[("l", "[int]")],
                "[int]",
                "replace every element by the first",
                &[
                    (&["[]"], "[]"),
                    (&["[7 3]"], "[7 7]"),
                    (&["[2 9 4]"], "[2 2 2]"),
                ],
            ),
            "(map (lambda (x) (car l)) l)",
        ),
        b(
            problem(
                "multlast",
                &[("l", "[int]")],
                "[int]",
                "replace every element by the last",
                &[
                    (&["[5]"], "[5]"),
                    (&["[7 3]"], "[3 3]"),
                    (&["[2 9 4]"], "[4 4 4]"),
                ],
            ),
            "(map (lambda (x) (foldl (lambda (a y) y) x l)) l)",
        ),
        b(
            problem(
                "append",
                &[("p", "[int]"), ("q", "[int]")],
                "[int]",
                "concatenate two lists (the `cat` builtin is removed)",
                &[
                    (&["[]", "[9]"], "[9]"),
                    (&["[1]", "[9]"], "[1 9]"),
                    (&["[2 1]", "[9]"], "[2 1 9]"),
                    (&["[]", "[]"], "[]"),
                    (&["[3]", "[8 2]"], "[3 8 2]"),
                    (&["[5 3]", "[8 2]"], "[5 3 8 2]"),
                ],
            )
            // `cat` would make the task trivial; remove it, as the paper
            // does for this benchmark.
            .with_library(Library::default().without_ops(&[Op::Cat])),
            "(foldr (lambda (x a) (cons x a)) q p)",
        ),
        b(
            problem(
                "reverse",
                &[("l", "[int]")],
                "[int]",
                "reverse the list",
                &[
                    (&["[]"], "[]"),
                    (&["[5]"], "[5]"),
                    (&["[5 2]"], "[2 5]"),
                    (&["[5 2 9]"], "[9 2 5]"),
                ],
            ),
            "(foldl (lambda (a x) (cons x a)) [] l)",
        ),
        b(
            problem(
                "evens",
                &[("l", "[int]")],
                "[int]",
                "keep the even elements",
                &[
                    (&["[]"], "[]"),
                    (&["[1 2 3 4]"], "[2 4]"),
                    (&["[5 6]"], "[6]"),
                    (&["[8]"], "[8]"),
                    (&["[7 0 9]"], "[0]"),
                ],
            ),
            "(filter (lambda (x) (= (% x 2) 0)) l)",
        ),
        b(
            problem(
                "odds",
                &[("l", "[int]")],
                "[int]",
                "keep the odd elements",
                &[
                    (&["[]"], "[]"),
                    (&["[1 2 3 4]"], "[1 3]"),
                    (&["[5 6]"], "[5]"),
                    (&["[8]"], "[]"),
                    (&["[7 0 9]"], "[7 9]"),
                ],
            ),
            "(filter (lambda (x) (= (% x 2) 1)) l)",
        ),
        b(
            problem(
                "positives",
                &[("l", "[int]")],
                "[int]",
                "keep the strictly positive elements",
                &[
                    (&["[]"], "[]"),
                    (&["[1 -2 3]"], "[1 3]"),
                    (&["[-5 6]"], "[6]"),
                    (&["[-1 0]"], "[]"),
                ],
            ),
            "(filter (lambda (x) (> x 0)) l)",
        ),
        b(
            problem(
                "droplast",
                &[("l", "[int]")],
                "[int]",
                "drop the last element",
                &[
                    (&["[3]"], "[]"),
                    (&["[4 7]"], "[4]"),
                    (&["[9 4 7]"], "[9 4]"),
                    (&["[5 1]"], "[5]"),
                    (&["[8 3 8]"], "[8 3]"),
                ],
            ),
            "(recl (lambda (x xs r) (if (empty? xs) r (cons x r))) [] l)",
        ),
        b(
            problem(
                "dupli",
                &[("l", "[int]")],
                "[int]",
                "duplicate every element in place",
                &[
                    (&["[]"], "[]"),
                    (&["[2]"], "[2 2]"),
                    (&["[1 2]"], "[1 1 2 2]"),
                    (&["[3 1 2]"], "[3 3 1 1 2 2]"),
                ],
            ),
            "(foldr (lambda (x a) (cons x (cons x a))) [] l)",
        ),
        b(
            problem(
                "add",
                &[("l", "[int]"), ("n", "int")],
                "[int]",
                "add n to every element",
                &[
                    (&["[]", "5"], "[]"),
                    (&["[1 7]", "5"], "[6 12]"),
                    (&["[3]", "2"], "[5]"),
                ],
            ),
            "(map (lambda (x) (+ x n)) l)",
        ),
        b(
            problem(
                "member",
                &[("l", "[int]"), ("n", "int")],
                "bool",
                "does the list contain n? (the `member` builtin is absent)",
                &[
                    (&["[]", "1"], "false"),
                    (&["[1]", "1"], "true"),
                    (&["[2]", "1"], "false"),
                    (&["[2 1]", "1"], "true"),
                    (&["[4 8 2]", "8"], "true"),
                    (&["[4 8 2]", "4"], "true"),
                    (&["[4 8 2]", "3"], "false"),
                    (&["[8 2]", "8"], "true"),
                    (&["[2]", "8"], "false"),
                    (&["[1 1]", "1"], "true"),
                    (&["[1]", "1"], "true"),
                ],
            ),
            "(foldl (lambda (a x) (| a (= x n))) false l)",
        ),
        b(
            problem(
                "concat",
                &[("l", "[[int]]")],
                "[int]",
                "flatten one level of nesting",
                &[
                    (&["[]"], "[]"),
                    (&["[[3]]"], "[3]"),
                    (&["[[1 2] [3]]"], "[1 2 3]"),
                    (&["[[] [4 7] [9]]"], "[4 7 9]"),
                    (&["[[4 7] [9]]"], "[4 7 9]"),
                    (&["[[9]]"], "[9]"),
                ],
            ),
            "(foldr (lambda (x a) (cat x a)) [] l)",
        ),
        b(
            problem(
                "max",
                &[("l", "[int]")],
                "int",
                "largest element (non-negative lists)",
                &[
                    (&["[]"], "0"),
                    (&["[5]"], "5"),
                    (&["[5 9]"], "9"),
                    (&["[5 9 2]"], "9"),
                    (&["[8]"], "8"),
                    (&["[8 3]"], "8"),
                    (&["[2 7 4]"], "7"),
                ],
            ),
            "(foldl (lambda (a x) (if (< a x) x a)) 0 l)",
        ),
        b(
            problem(
                "min",
                &[("l", "[int]")],
                "int",
                "smallest element of a non-empty list",
                &[
                    (&["[5]"], "5"),
                    (&["[5 2]"], "2"),
                    (&["[5 2 9]"], "2"),
                    (&["[3]"], "3"),
                    (&["[3 8]"], "3"),
                    (&["[7 4 6]"], "4"),
                    (&["[9 2 1]"], "1"),
                    (&["[6 7]"], "6"),
                    (&["[9 2]"], "2"),
                    (&["[9]"], "9"),
                ],
            ),
            "(foldl (lambda (a x) (if (< x a) x a)) (car l) l)",
        ),
        b(
            problem(
                "count",
                &[("l", "[int]"), ("n", "int")],
                "int",
                "number of occurrences of n",
                &[
                    (&["[]", "2"], "0"),
                    (&["[2]", "2"], "1"),
                    (&["[2 3]", "2"], "1"),
                    (&["[2 3 2]", "2"], "2"),
                    (&["[3]", "2"], "0"),
                    (&["[1 2]", "2"], "1"),
                    (&["[5 5 5]", "5"], "3"),
                    (&["[5 5]", "5"], "2"),
                    (&["[5]", "5"], "1"),
                    (&["[4]", "2"], "0"),
                    (&["[2 4]", "2"], "1"),
                    (&["[7]", "2"], "0"),
                    (&["[2]", "4"], "0"),
                    (&["[2 2]", "4"], "0"),
                ],
            ),
            "(foldl (lambda (a x) (if (= x n) (+ a 1) a)) 0 l)",
        ),
        b(
            problem(
                "dedup",
                &[("l", "[int]")],
                "[int]",
                "remove duplicates, keeping last occurrences (`member` is \
                 available as a component for this problem)",
                &[
                    (&["[]"], "[]"),
                    (&["[1]"], "[1]"),
                    (&["[2 1]"], "[2 1]"),
                    (&["[1 2 1]"], "[2 1]"),
                    (&["[3 3]"], "[3]"),
                    (&["[4]"], "[4]"),
                    (&["[6 4]"], "[6 4]"),
                    (&["[5 6 4]"], "[5 6 4]"),
                    (&["[4 5 6 4]"], "[5 6 4]"),
                    (&["[1 1]"], "[1]"),
                    (&["[2 1 1]"], "[2 1]"),
                    (&["[1 2 1 1]"], "[2 1]"),
                ],
            )
            .with_library(Library::default().with_ops(&[Op::Member])),
            "(recl (lambda (x xs r) (if (member x xs) r (cons x r))) [] l)",
        ),
        b(
            problem(
                "shiftl",
                &[("l", "[int]")],
                "[int]",
                "rotate left by one (non-empty lists)",
                &[
                    (&["[5]"], "[5]"),
                    (&["[1 7]"], "[7 1]"),
                    (&["[1 7 3]"], "[7 3 1]"),
                    (&["[4 9 7 2]"], "[9 7 2 4]"),
                ],
            ),
            "(cat (cdr l) (cons (car l) []))",
        ),
        b(
            problem(
                "shiftr",
                &[("l", "[int]")],
                "[int]",
                "rotate right by one (non-empty lists)",
                &[
                    (&["[5]"], "[5]"),
                    (&["[1 7]"], "[7 1]"),
                    (&["[1 7 3]"], "[3 1 7]"),
                    (&["[4 9 7 2]"], "[2 4 9 7]"),
                ],
            ),
            "(recl (lambda (x xs r) (if (empty? xs) (cons x r) (cons (car r) \
             (cons x (cdr r))))) [] l)",
        )
        .hard()
        .adjust(|o| {
            // The minimal known solution's step function costs 13 — just
            // over the default per-hole enumeration budget.
            o.max_term_cost = o.max_term_cost.max(13);
        }),
        b(
            problem(
                "prepend_sum",
                &[("l", "[int]")],
                "[int]",
                "prepend the list's sum (a combinator under a constructor — \
                 exercises the constructor-hypothesis extension)",
                &[
                    (&["[]"], "[0]"),
                    (&["[5]"], "[5 5]"),
                    (&["[5 3]"], "[8 5 3]"),
                    (&["[5 3 9]"], "[17 5 3 9]"),
                ],
            ),
            "(cons (foldl (lambda (a x) (+ a x)) 0 l) l)",
        )
        .adjust(|o| o.constructor_hypotheses = true),
        b(
            problem(
                "takewhile",
                &[("l", "[int]")],
                "[int]",
                "keep the leading positive elements",
                &[
                    (&["[]"], "[]"),
                    (&["[3]"], "[3]"),
                    (&["[-1]"], "[]"),
                    (&["[3 -1]"], "[3]"),
                    (&["[5 3 -1]"], "[5 3]"),
                    (&["[3 -1 5]"], "[3]"),
                    (&["[-1 5]"], "[]"),
                    (&["[5 -2 6]"], "[5]"),
                ],
            ),
            "(recl (lambda (x xs r) (if (< 0 x) (cons x r) [])) [] l)",
        ),
        b(
            problem(
                "dropwhile",
                &[("l", "[int]")],
                "[int]",
                "drop the leading negative elements",
                &[
                    (&["[]"], "[]"),
                    (&["[3]"], "[3]"),
                    (&["[-1]"], "[]"),
                    (&["[-1 3]"], "[3]"),
                    (&["[-2 -1 3]"], "[3]"),
                    (&["[3 -1]"], "[3 -1]"),
                    (&["[-2 5 -1]"], "[5 -1]"),
                    (&["[5 -1]"], "[5 -1]"),
                ],
            ),
            "(recl (lambda (x xs r) (if (< x 0) r (cons x xs))) [] l)",
        ),
    ]
}
