//! Variadic-tree benchmarks.
//!
//! Example sets are *subtree-closed* where the `foldt` chain rule needs
//! them: whenever an interior node appears, its children appear as
//! whole-tree examples too (in the same environment), so deduction can
//! reconstruct the step function's inputs. Values are irregular to starve
//! coincidental programs (a minimal-cost synthesizer will happily return
//! `(* (car rs) (car (cdr rs)))` for a sum if `2 · 3 = 2 + 3 + 1`).

use crate::{problem, Benchmark, Category};

pub(crate) fn benchmarks() -> Vec<Benchmark> {
    let b = |p, r| Benchmark::new(Category::Trees, p, r);
    vec![
        b(
            problem(
                "incrt",
                &[("t", "(tree int)")],
                "(tree int)",
                "add one to every node value",
                &[
                    (&["{}"], "{}"),
                    (&["{4}"], "{5}"),
                    (&["{1 {7} {3}}"], "{2 {8} {4}}"),
                ],
            ),
            "(mapt (lambda (x) (+ x 1)) t)",
        ),
        b(
            problem(
                "doublet",
                &[("t", "(tree int)")],
                "(tree int)",
                "double every node value",
                &[
                    (&["{}"], "{}"),
                    (&["{3}"], "{6}"),
                    (&["{1 {7} {5}}"], "{2 {14} {10}}"),
                ],
            ),
            "(mapt (lambda (x) (* x 2)) t)",
        ),
        b(
            problem(
                "squaret",
                &[("t", "(tree int)")],
                "(tree int)",
                "square every node value",
                &[
                    (&["{}"], "{}"),
                    (&["{3}"], "{9}"),
                    (&["{1 {7} {5}}"], "{1 {49} {25}}"),
                ],
            ),
            "(mapt (lambda (x) (* x x)) t)",
        ),
        b(
            problem(
                "sumt",
                &[("t", "(tree int)")],
                "int",
                "sum of all node values",
                &[
                    (&["{}"], "0"),
                    (&["{2}"], "2"),
                    (&["{4}"], "4"),
                    (&["{1 {2} {4}}"], "7"),
                    (&["{9}"], "9"),
                    (&["{3 {9}}"], "12"),
                ],
            ),
            "(foldt (lambda (v rs) (foldl (lambda (a r) (+ a r)) v rs)) 0 t)",
        ),
        b(
            problem(
                "sizet",
                &[("t", "(tree int)")],
                "int",
                "number of nodes",
                &[
                    (&["{}"], "0"),
                    (&["{5}"], "1"),
                    (&["{9}"], "1"),
                    (&["{1 {5} {9}}"], "3"),
                    (&["{7 {5}}"], "2"),
                    (&["{2 {7 {5}}}"], "3"),
                    (&["{1}"], "1"),
                ],
            ),
            "(foldt (lambda (v rs) (foldl (lambda (a r) (+ a r)) 1 rs)) 0 t)",
        ),
        b(
            problem(
                "height",
                &[("t", "(tree int)")],
                "int",
                "height of the tree (empty tree has height 0)",
                &[
                    (&["{}"], "0"),
                    (&["{5}"], "1"),
                    (&["{2}"], "1"),
                    (&["{3}"], "1"),
                    (&["{5 {2}}"], "2"),
                    (&["{1 {5 {2}} {3}}"], "3"),
                    (&["{9 {1 {5 {2}} {3}}}"], "4"),
                    (&["{1 {3} {5 {2}}}"], "3"),
                    (&["{4}"], "1"),
                    (&["{2 {4}}"], "2"),
                    (&["{5 {2 {4}}}"], "3"),
                    (&["{1 {3} {5 {2 {4}}}}"], "4"),
                    (&["{1 {5 {2 {4}}} {3}}"], "4"),
                    (&["{1 {3}}"], "2"),
                    (&["{7 {3} {4}}"], "2"),
                    (&["{5 {3}}"], "2"),
                    (&["{7 {2 {4}} {5 {3}}}"], "3"),
                ],
            ),
            "(foldt (lambda (v rs) (foldl (lambda (a r) (if (< a (+ r 1)) \
             (+ r 1) a)) 1 rs)) 0 t)",
        )
        .hard(),
        b(
            problem(
                "count_leaves",
                &[("t", "(tree int)")],
                "int",
                "number of leaves",
                &[
                    (&["{}"], "0"),
                    (&["{5}"], "1"),
                    (&["{3}"], "1"),
                    (&["{4}"], "1"),
                    (&["{2 {5} {3}}"], "2"),
                    (&["{1 {2 {5} {3}} {4}}"], "3"),
                    (&["{6 {4}}"], "1"),
                ],
            ),
            "(foldt (lambda (v rs) (foldl (lambda (a r) (+ a r)) \
             (if (empty? rs) 1 0) rs)) 0 t)",
        )
        .hard(),
        b(
            problem(
                "maxt",
                &[("t", "(tree int)")],
                "int",
                "largest node value (non-negative trees)",
                &[
                    (&["{}"], "0"),
                    (&["{2}"], "2"),
                    (&["{9}"], "9"),
                    (&["{3 {2} {9}}"], "9"),
                    (&["{3 {9} {2}}"], "9"),
                    (&["{5 {9}}"], "9"),
                    (&["{8 {2}}"], "8"),
                    (&["{7}"], "7"),
                    (&["{3 {9} {7}}"], "9"),
                ],
            ),
            "(foldt (lambda (v rs) (foldl (lambda (a r) (if (< a r) r a)) v rs)) 0 t)",
        ),
        b(
            problem(
                "membt",
                &[("t", "(tree int)"), ("n", "int")],
                "bool",
                "does any node carry the value n?",
                &[
                    (&["{}", "2"], "false"),
                    (&["{2}", "2"], "true"),
                    (&["{3}", "2"], "false"),
                    (&["{2}", "7"], "false"),
                    (&["{3 {2}}", "2"], "true"),
                    (&["{8}", "2"], "false"),
                    (&["{3 {8}}", "2"], "false"),
                    (&["{2 {8}}", "2"], "true"),
                    (&["{5}", "5"], "true"),
                    (&["{8}", "8"], "true"),
                    (&["{2}", "8"], "false"),
                    (&["{4 {2} {8}}", "8"], "true"),
                    (&["{4 {2} {2}}", "2"], "true"),
                    (&["{4}", "2"], "false"),
                ],
            ),
            "(foldt (lambda (v rs) (foldl (lambda (a r) (| a r)) (= v n) rs)) false t)",
        ),
        b(
            problem(
                "flatten",
                &[("t", "(tree int)")],
                "[int]",
                "node values in preorder",
                &[
                    (&["{}"], "[]"),
                    (&["{2}"], "[2]"),
                    (&["{4}"], "[4]"),
                    (&["{1 {2} {4}}"], "[1 2 4]"),
                    (&["{7}"], "[7]"),
                    (&["{3 {7}}"], "[3 7]"),
                    (&["{5 {3 {7}}}"], "[5 3 7]"),
                ],
            ),
            "(foldt (lambda (v rs) (foldl (lambda (a r) (cat a r)) \
             (cons v []) rs)) [] t)",
        ),
        b(
            problem(
                "flattenl",
                &[("t", "(tree [int])")],
                "[int]",
                "concatenate the node lists in preorder",
                &[
                    (&["{}"], "[]"),
                    (&["{[1 2]}"], "[1 2]"),
                    (&["{[3]}"], "[3]"),
                    (&["{[5] {[1 2]} {[3]}}"], "[5 1 2 3]"),
                    (&["{[9 4]}"], "[9 4]"),
                    (&["{[] {[9 4]}}"], "[9 4]"),
                ],
            ),
            "(foldt (lambda (v rs) (foldl (lambda (a r) (cat a r)) v rs)) [] t)",
        ),
        b(
            problem(
                "leaves",
                &[("t", "(tree int)")],
                "[int]",
                "leaf values, left to right",
                &[
                    (&["{}"], "[]"),
                    (&["{5}"], "[5]"),
                    (&["{2}"], "[2]"),
                    (&["{3}"], "[3]"),
                    (&["{1 {2} {3}}"], "[2 3]"),
                    (&["{4 {1 {2} {3}}}"], "[2 3]"),
                    (&["{7 {5}}"], "[5]"),
                ],
            ),
            "(foldt (lambda (v rs) (foldl (lambda (a r) (cat a r)) \
             (if (empty? rs) (cons v []) []) rs)) [] t)",
        )
        .hard()
        .adjust(|o| {
            // The minimal known solution's initial value costs 7.
            o.max_init_cost = o.max_init_cost.max(7);
        }),
    ]
}
