//! Nested-structure benchmarks: lists of lists, lists of trees, trees of
//! lists. These require combinators *inside* deduced lambda bodies — the
//! paper's headline capability — including `dropmins`, which the paper
//! highlights as "believed to be the world's earliest functional pearl".
//!
//! Example discipline for nested folds: one outer example contains
//! *sibling* inner collections forming a chain (`[]`, `[a]`, `[b a]`, …),
//! so that after `map`'s pointwise deduction the inner fold's chain rule
//! still fires (the rows share the outer environment).

use crate::{problem, Benchmark, Category};

pub(crate) fn benchmarks() -> Vec<Benchmark> {
    let b = |p, r| Benchmark::new(Category::Nested, p, r);
    vec![
        b(
            problem(
                "dropmins",
                &[("l", "[[int]]")],
                "[[int]]",
                "drop the minimum of each (non-empty) inner list — the \
                 paper's functional-pearl highlight",
                &[
                    (&["[]"], "[]"),
                    (&["[[1]]"], "[[]]"),
                    (&["[[2 1]]"], "[[2]]"),
                    (&["[[1 2] [4 3]]"], "[[2] [4]]"),
                    (&["[[5 3 6]]"], "[[5 6]]"),
                    (&["[[1 0 5]]"], "[[1 5]]"),
                    (&["[[6 8 6]]"], "[[8]]"),
                    (&["[[7 9 2 9]]"], "[[7 9 9]]"),
                ],
            ),
            "(map (lambda (x) (filter (lambda (x0) (foldl (lambda (a y) \
             (| a (< y x0))) false x)) x)) l)",
        )
        .hard()
        .adjust(|o| {
            // The pearl's deepest enumerated fragment costs 5 and all its
            // initial values are leaves; tighter budgets keep the triple
            // nesting tractable.
            o.max_term_cost = 8;
            o.max_init_cost = 2;
            o.max_free_init_cost = 1;
        }),
        b(
            problem(
                "dropmax",
                &[("l", "[int]")],
                "[int]",
                "drop every occurrence of the maximum",
                &[
                    (&["[]"], "[]"),
                    (&["[3]"], "[]"),
                    (&["[1 3]"], "[1]"),
                    (&["[5 9 2]"], "[5 2]"),
                    (&["[7 3 7]"], "[3]"),
                    (&["[2 9]"], "[2]"),
                ],
            ),
            "(filter (lambda (x) (foldl (lambda (a y) (| a (< x y))) false l)) l)",
        )
        .hard()
        .adjust(|o| {
            o.max_term_cost = 8;
            o.max_free_init_cost = 1;
        }),
        b(
            problem(
                "sums",
                &[("l", "[[int]]")],
                "[int]",
                "sum of each inner list",
                &[
                    (&["[]"], "[]"),
                    (&["[[]]"], "[0]"),
                    (&["[[] [2] [1 2]]"], "[0 2 3]"),
                    (&["[[3] [9 3]]"], "[3 12]"),
                    (&["[[5 2 4]]"], "[11]"),
                ],
            ),
            "(map (lambda (x) (foldl (lambda (a y) (+ a y)) 0 x)) l)",
        ),
        b(
            problem(
                "incrs",
                &[("l", "[[int]]")],
                "[[int]]",
                "add one to every element of every inner list",
                &[
                    (&["[]"], "[]"),
                    (&["[[1] [7 3]]"], "[[2] [8 4]]"),
                    (&["[[4]]"], "[[5]]"),
                ],
            ),
            "(map (lambda (x) (map (lambda (y) (+ y 1)) x)) l)",
        ),
        b(
            problem(
                "lengths",
                &[("l", "[[int]]")],
                "[int]",
                "length of each inner list",
                &[
                    (&["[]"], "[]"),
                    (&["[[] [7] [4 7]]"], "[0 1 2]"),
                    (&["[[9 2 6]]"], "[3]"),
                    (&["[[4 5]]"], "[2]"),
                ],
            ),
            "(map (lambda (x) (foldl (lambda (a y) (+ a 1)) 0 x)) l)",
        ),
        b(
            problem(
                "reverses",
                &[("l", "[[int]]")],
                "[[int]]",
                "reverse each inner list",
                &[
                    (&["[]"], "[]"),
                    (&["[[] [1] [2 1]]"], "[[] [1] [1 2]]"),
                    (&["[[4 5 6]]"], "[[6 5 4]]"),
                    (&["[[7 3]]"], "[[3 7]]"),
                ],
            ),
            "(map (lambda (x) (foldl (lambda (a y) (cons y a)) [] x)) l)",
        ),
        b(
            problem(
                "maxes",
                &[("l", "[[int]]")],
                "[int]",
                "maximum of each (non-empty, non-negative) inner list",
                &[
                    (&["[]"], "[]"),
                    (&["[[2] [5 2]]"], "[2 5]"),
                    (&["[[1 5] [3 2]]"], "[5 3]"),
                    (&["[[9] [4 9 1]]"], "[9 9]"),
                    (&["[[7 2 8]]"], "[8]"),
                ],
            ),
            "(map (lambda (x) (foldl (lambda (a y) (if (< a y) y a)) 0 x)) l)",
        ),
        b(
            problem(
                "sumtrees",
                &[("l", "[(tree int)]")],
                "[int]",
                "sum of each tree in a list of trees",
                &[
                    (&["[]"], "[]"),
                    (&["[{}]"], "[0]"),
                    (&["[{2} {4} {1 {2} {4}}]"], "[2 4 7]"),
                    (&["[{9} {3 {9}}]"], "[9 12]"),
                ],
            ),
            "(map (lambda (x) (foldt (lambda (v rs) (foldl (lambda (a r) \
             (+ a r)) v rs)) 0 x)) l)",
        )
        .hard(),
        b(
            problem(
                "incrtl",
                &[("t", "(tree [int])")],
                "(tree [int])",
                "add one to every element of every node list",
                &[
                    (&["{}"], "{}"),
                    (&["{[1 7]}"], "{[2 8]}"),
                    (&["{[4] {[2 9]}}"], "{[5] {[3 10]}}"),
                ],
            ),
            "(mapt (lambda (x) (map (lambda (y) (+ y 1)) x)) t)",
        ),
        b(
            problem(
                "heads",
                &[("l", "[[int]]")],
                "[int]",
                "first element of each (non-empty) inner list",
                &[
                    (&["[]"], "[]"),
                    (&["[[3 1]]"], "[3]"),
                    (&["[[5] [2 9]]"], "[5 2]"),
                    (&["[[7 4 6]]"], "[7]"),
                ],
            ),
            "(map (lambda (x) (car x)) l)",
        ),
        b(
            problem(
                "lasts",
                &[("l", "[[int]]")],
                "[int]",
                "last element of each (non-empty) inner list",
                &[
                    (&["[]"], "[]"),
                    (&["[[3 1]]"], "[1]"),
                    (&["[[5] [2 9]]"], "[5 9]"),
                    (&["[[7 4 6]]"], "[6]"),
                ],
            ),
            "(map (lambda (x) (foldl (lambda (a y) y) 0 x)) l)",
        ),
        b(
            problem(
                "tails",
                &[("l", "[[int]]")],
                "[[int]]",
                "tail of each (non-empty) inner list",
                &[
                    (&["[]"], "[]"),
                    (&["[[3 1]]"], "[[1]]"),
                    (&["[[5] [2 9 4]]"], "[[] [9 4]]"),
                    (&["[[7 4]]"], "[[4]]"),
                ],
            ),
            "(map (lambda (x) (cdr x)) l)",
        ),
        b(
            problem(
                "cprod",
                &[("l", "[[int]]")],
                "[[int]]",
                "cartesian product of the inner lists",
                &[
                    (&["[]"], "[[]]"),
                    (&["[[5]]"], "[[5]]"),
                    (&["[[3 5]]"], "[[3] [5]]"),
                    (&["[[1 2] [3 4]]"], "[[1 3] [1 4] [2 3] [2 4]]"),
                ],
            ),
            "(foldr (lambda (x a) (foldr (lambda (y acc) (foldr (lambda (z \
             acc2) (cons (cons y z) acc2)) acc a)) [] x)) (cons [] []) l)",
        )
        .hard()
        .adjust(|o| {
            o.max_cost = o.max_cost.max(34);
            o.max_term_cost = 8;
            o.max_init_cost = 3;
            o.max_free_init_cost = 1;
        }),
    ]
}
