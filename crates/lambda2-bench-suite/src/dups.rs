//! Duplicate-bearing list benchmarks.
//!
//! Every problem here is a *partial* removal or truncation over a list
//! that repeats values: remove one occurrence, cut at the first match,
//! keep a leading run. Their outputs keep *some but not all* occurrences
//! of a duplicated value, which is exactly the situation the cardinality
//! abstract domain refutes for `filter` hypotheses (a filter keeps all
//! occurrences of a value or none). Deduction alone cannot make that
//! refutation, so these problems are where `SearchOptions::static_prune`
//! pays — `fig_static_prune` measures the enumerated-term drop on them.
//!
//! The last benchmark, `rmall`, is the sentinel: a genuine filter whose
//! examples hold to all-or-none, so pruning must *not* fire and the
//! filter solution must survive.
//!
//! Example sets follow the suite discipline: recl-shaped problems carry
//! prefix/tail chains, and values are irregular so coincidental programs
//! fail verification.

use crate::{problem, Benchmark, Category};

pub(crate) fn benchmarks() -> Vec<Benchmark> {
    let b = |p, r| Benchmark::new(Category::Lists, p, r);
    vec![
        b(
            problem(
                "remove",
                &[("l", "[int]"), ("n", "int")],
                "[int]",
                "remove the first occurrence of n",
                &[
                    (&["[]", "7"], "[]"),
                    (&["[7]", "7"], "[]"),
                    (&["[4 7]", "7"], "[4]"),
                    (&["[5 4 7]", "7"], "[5 4]"),
                    (&["[7 4 7]", "7"], "[4 7]"),
                    (&["[3 5 3]", "5"], "[3 3]"),
                ],
            ),
            "(recl (lambda (x xs r) (if (= x n) xs (cons x r))) [] l)",
        ),
        b(
            problem(
                "cutfirst",
                &[("l", "[int]"), ("n", "int")],
                "[int]",
                "the suffix after the first occurrence of n",
                &[
                    (&["[]", "3"], "[]"),
                    (&["[3]", "3"], "[]"),
                    (&["[3 8 6]", "3"], "[8 6]"),
                    (&["[4 3 4 3]", "3"], "[4 3]"),
                    (&["[5 2]", "2"], "[]"),
                    (&["[2 8]", "2"], "[8]"),
                ],
            ),
            "(recl (lambda (x xs r) (if (= x n) xs r)) [] l)",
        ),
        b(
            problem(
                "fromfirst",
                &[("l", "[int]"), ("n", "int")],
                "[int]",
                "the suffix from the first occurrence of n (inclusive)",
                &[
                    (&["[]", "9"], "[]"),
                    (&["[9]", "9"], "[9]"),
                    (&["[5 9]", "9"], "[9]"),
                    (&["[5 9 5]", "9"], "[9 5]"),
                    (&["[2 6 1]", "6"], "[6 1]"),
                    (&["[4 8]", "3"], "[]"),
                ],
            ),
            "(recl (lambda (x xs r) (if (= x n) (cons x xs) r)) [] l)",
        ),
        b(
            problem(
                "upto",
                &[("l", "[int]"), ("n", "int")],
                "[int]",
                "the prefix strictly before the first occurrence of n",
                &[
                    (&["[]", "4"], "[]"),
                    (&["[4]", "4"], "[]"),
                    (&["[6 4]", "4"], "[6]"),
                    (&["[6 4 6]", "4"], "[6]"),
                    (&["[2 7 5]", "5"], "[2 7]"),
                    (&["[8 1]", "9"], "[8 1]"),
                ],
            ),
            "(recl (lambda (x xs r) (if (= x n) [] (cons x r))) [] l)",
        ),
        b(
            problem(
                "tofirst",
                &[("l", "[int]"), ("n", "int")],
                "[int]",
                "the prefix up to and including the first occurrence of n",
                &[
                    (&["[]", "2"], "[]"),
                    (&["[2]", "2"], "[2]"),
                    (&["[8 2]", "2"], "[8 2]"),
                    (&["[8 2 8]", "8"], "[8]"),
                    (&["[3 5 4]", "5"], "[3 5]"),
                    (&["[7 1]", "6"], "[7 1]"),
                ],
            ),
            "(recl (lambda (x xs r) (if (= x n) (cons x []) (cons x r))) [] l)",
        ),
        b(
            problem(
                "trimhead",
                &[("l", "[int]")],
                "[int]",
                "drop the leading run of the head element (non-empty lists)",
                &[
                    (&["[6]"], "[]"),
                    (&["[5 5 5]"], "[]"),
                    (&["[4 9]"], "[9]"),
                    (&["[7 7 3 7]"], "[3 7]"),
                    (&["[2 8 5]"], "[8 5]"),
                ],
            ),
            "(recl (lambda (x xs r) (if (= x (car l)) r (cons x xs))) [] l)",
        ),
        b(
            problem(
                "headrun",
                &[("l", "[int]")],
                "[int]",
                "the leading run of the head element (non-empty lists)",
                &[
                    (&["[5]"], "[5]"),
                    (&["[4 4]"], "[4 4]"),
                    (&["[9 1]"], "[9]"),
                    (&["[7 7 2 7]"], "[7 7]"),
                    (&["[3 3 8]"], "[3 3]"),
                ],
            ),
            "(recl (lambda (x xs r) (if (= x (car l)) (cons x r) [])) [] l)",
        ),
        b(
            problem(
                "stripn",
                &[("l", "[int]"), ("n", "int")],
                "[int]",
                "drop the leading run of n",
                &[
                    (&["[]", "5"], "[]"),
                    (&["[3]", "3"], "[]"),
                    (&["[3 3 3]", "3"], "[]"),
                    (&["[1 4]", "9"], "[1 4]"),
                    (&["[2 2 8 2]", "2"], "[8 2]"),
                    (&["[6 1 6]", "6"], "[1 6]"),
                ],
            ),
            "(recl (lambda (x xs r) (if (= x n) r (cons x xs))) [] l)",
        ),
        b(
            problem(
                "taken",
                &[("l", "[int]"), ("n", "int")],
                "[int]",
                "the leading run of n",
                &[
                    (&["[]", "4"], "[]"),
                    (&["[2]", "2"], "[2]"),
                    (&["[2 2]", "2"], "[2 2]"),
                    (&["[8 5]", "5"], "[]"),
                    (&["[6 6 1 6]", "6"], "[6 6]"),
                    (&["[9 4]", "9"], "[9]"),
                ],
            ),
            "(recl (lambda (x xs r) (if (= x n) (cons x r) [])) [] l)",
        ),
        // Sentinel: a true filter over duplicate-bearing inputs. Every
        // example keeps all-or-none occurrences of each value, so the
        // cardinality domain must stay silent and the filter solution
        // must survive pruning.
        b(
            problem(
                "rmall",
                &[("l", "[int]"), ("n", "int")],
                "[int]",
                "remove every occurrence of n",
                &[
                    (&["[]", "3"], "[]"),
                    (&["[5]", "5"], "[]"),
                    (&["[5 3 5]", "3"], "[5 5]"),
                    (&["[3 9]", "3"], "[9]"),
                    (&["[7 2 7 2]", "2"], "[7 7]"),
                    (&["[1 8]", "4"], "[1 8]"),
                ],
            ),
            "(filter (lambda (x) (!= x n)) l)",
        ),
    ]
}
