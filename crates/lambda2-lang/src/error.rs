//! Error types for evaluation and parsing.

use std::fmt;

use crate::ast::HoleId;
use crate::symbol::Symbol;

/// An evaluation error.
///
/// Evaluation errors are *normal* during synthesis — the enumerator probes
/// millions of candidate terms, most of which crash on some example (car of
/// an empty list, division by zero, …). The type is therefore small and
/// allocation-free.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EvalError {
    /// A variable was not bound in the environment.
    Unbound(Symbol),
    /// An operator or combinator received a value of the wrong shape.
    TypeMismatch,
    /// Division or remainder by zero.
    DivByZero,
    /// `car`, `cdr` or `last` applied to `[]`.
    EmptyList,
    /// `value`, `children` or `leaf?` applied to `{}`.
    EmptyTree,
    /// A function was applied to the wrong number of arguments.
    ArityMismatch,
    /// A non-function appeared in callee position.
    NotAFunction,
    /// Evaluation of a hole: hypotheses cannot be run to completion.
    Hole(HoleId),
    /// The fuel budget was exhausted (guards against runaway recursion
    /// in synthesized candidates).
    OutOfFuel,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Unbound(s) => write!(f, "unbound variable `{s}`"),
            EvalError::TypeMismatch => write!(f, "operand has the wrong shape"),
            EvalError::DivByZero => write!(f, "division by zero"),
            EvalError::EmptyList => write!(f, "list operation on empty list"),
            EvalError::EmptyTree => write!(f, "tree operation on empty tree"),
            EvalError::ArityMismatch => write!(f, "wrong number of arguments"),
            EvalError::NotAFunction => write!(f, "value is not applicable"),
            EvalError::Hole(h) => write!(f, "evaluated hole ◻{h}"),
            EvalError::OutOfFuel => write!(f, "evaluation fuel exhausted"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A parse error with a byte offset into the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(offset: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            EvalError::TypeMismatch,
            EvalError::DivByZero,
            EvalError::EmptyList,
            EvalError::EmptyTree,
            EvalError::ArityMismatch,
            EvalError::NotAFunction,
            EvalError::Hole(3),
            EvalError::OutOfFuel,
            EvalError::Unbound(Symbol::intern("q")),
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn parse_error_reports_offset() {
        let e = ParseError::new(7, "unexpected `)`");
        assert_eq!(e.to_string(), "parse error at byte 7: unexpected `)`");
    }
}
