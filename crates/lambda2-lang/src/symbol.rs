//! Interned identifiers.
//!
//! The synthesizer manipulates millions of small expressions; identifiers are
//! interned into `u32`-sized [`Symbol`]s so that variable lookup and
//! expression hashing never touch string data. The interner is a global,
//! append-only table: symbols are never freed, which is fine for a tool whose
//! identifier population is tiny (input parameters plus a handful of
//! generated lambda binders).

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned identifier.
///
/// Two `Symbol`s are equal iff they were created from equal strings.
/// `Symbol` is `Copy` and 4 bytes, so it can be embedded freely in AST nodes.
///
/// # Examples
///
/// ```
/// use lambda2_lang::symbol::Symbol;
/// let a = Symbol::intern("x");
/// let b = Symbol::intern("x");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "x");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<&'static str>,
    table: HashMap<&'static str, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            table: HashMap::new(),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning its canonical [`Symbol`].
    pub fn intern(name: &str) -> Symbol {
        let mut int = interner().lock().expect("symbol interner poisoned");
        if let Some(&id) = int.table.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(int.names.len()).expect("interner overflow");
        // Leaking is intentional: the identifier population of a synthesis
        // session is small and symbols must live for the program's lifetime.
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        int.names.push(leaked);
        int.table.insert(leaked, id);
        Symbol(id)
    }

    /// Returns the string this symbol was interned from.
    pub fn as_str(self) -> &'static str {
        let int = interner().lock().expect("symbol interner poisoned");
        int.names[self.0 as usize]
    }

    /// Returns a fresh symbol guaranteed not to collide with `taken`.
    ///
    /// Used by the synthesizer to generate lambda binders (`x0`, `x1`, …)
    /// that do not shadow problem parameters.
    pub fn fresh(prefix: &str, taken: &[Symbol]) -> Symbol {
        for i in 0.. {
            let cand = Symbol::intern(&format!("{prefix}{i}"));
            if !taken.contains(&cand) {
                return cand;
            }
        }
        unreachable!("ran out of fresh symbols")
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("hello");
        let b = Symbol::intern("hello");
        let c = Symbol::intern("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "hello");
        assert_eq!(c.as_str(), "world");
    }

    #[test]
    fn display_matches_source() {
        let s = Symbol::intern("acc");
        assert_eq!(s.to_string(), "acc");
        assert_eq!(format!("{s:?}"), "Symbol(acc)");
    }

    #[test]
    fn fresh_avoids_taken() {
        let taken = [Symbol::intern("v0"), Symbol::intern("v1")];
        let f = Symbol::fresh("v", &taken);
        assert!(!taken.contains(&f));
        assert!(f.as_str().starts_with('v'));
    }

    #[test]
    fn symbols_are_ordered_deterministically() {
        let a = Symbol::intern("zeta-test-unique-a");
        let b = Symbol::intern("zeta-test-unique-b");
        // Interning order decides Ord, which is all determinism needs.
        assert!(a < b || b < a);
    }
}
