//! The evaluator.
//!
//! A straightforward environment-passing interpreter with a *fuel* budget.
//! Fuel decrements on every expression node and every combinator step, so
//! any evaluation terminates; the synthesizer evaluates millions of
//! candidate expressions and must never hang on one of them.

use std::sync::Arc;

use crate::ast::{Comb, Expr};
use crate::env::Env;
use crate::error::EvalError;
use crate::value::{Closure, Tree, Value};

/// Default fuel budget, ample for every benchmark example in the suite.
pub const DEFAULT_FUEL: u64 = 100_000;

/// Evaluates `expr` under `env`, spending from `fuel`.
///
/// # Errors
///
/// Returns an [`EvalError`] on shape mismatches, partial operations outside
/// their domain, unbound variables, fuel exhaustion, or when a hole is
/// reached (hypotheses are not executable).
pub fn eval(expr: &Expr, env: &Env, fuel: &mut u64) -> Result<Value, EvalError> {
    if *fuel == 0 {
        return Err(EvalError::OutOfFuel);
    }
    *fuel -= 1;
    match expr {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Var(x) => env.lookup(*x).cloned().ok_or(EvalError::Unbound(*x)),
        Expr::Hole(h) => Err(EvalError::Hole(*h)),
        Expr::Comb(c) => Ok(Value::Comb(*c)),
        Expr::Lambda(params, body) => Ok(Value::Closure(Arc::new(Closure {
            params: params.clone(),
            body: body.clone(),
            env: env.clone(),
        }))),
        Expr::If(c, t, e) => match eval(c, env, fuel)? {
            Value::Bool(true) => eval(t, env, fuel),
            Value::Bool(false) => eval(e, env, fuel),
            _ => Err(EvalError::TypeMismatch),
        },
        Expr::Op(op, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args.iter() {
                vals.push(eval(a, env, fuel)?);
            }
            // Allocation-proportional fuel: operators like `cat` can double
            // a value's (shallow) length per step, so a pure step count
            // would admit exponentially large values within the budget.
            let charge = alloc_charge(*op, &vals);
            if charge > 0 {
                if *fuel < charge {
                    *fuel = 0;
                    return Err(EvalError::OutOfFuel);
                }
                *fuel -= charge;
            }
            op.apply(&vals)
        }
        Expr::App(f, args) => {
            let fv = eval(f, env, fuel)?;
            let mut vals = Vec::with_capacity(args.len());
            for a in args.iter() {
                vals.push(eval(a, env, fuel)?);
            }
            apply_value(&fv, &vals, fuel)
        }
    }
}

/// Evaluates `expr` with the default fuel budget.
///
/// # Errors
///
/// Same as [`eval`].
pub fn eval_default(expr: &Expr, env: &Env) -> Result<Value, EvalError> {
    let mut fuel = DEFAULT_FUEL;
    eval(expr, env, &mut fuel)
}

/// Applies a function value (closure or combinator) to arguments.
///
/// # Errors
///
/// [`EvalError::NotAFunction`] if `f` is first-order,
/// [`EvalError::ArityMismatch`] on wrong argument counts, plus anything the
/// body evaluation can raise.
pub fn apply_value(f: &Value, args: &[Value], fuel: &mut u64) -> Result<Value, EvalError> {
    match f {
        Value::Closure(c) => {
            if c.params.len() != args.len() {
                return Err(EvalError::ArityMismatch);
            }
            let mut env = c.env.clone();
            for (p, a) in c.params.iter().zip(args) {
                env = env.bind(*p, a.clone());
            }
            eval(&c.body, &env, fuel)
        }
        Value::Comb(c) => apply_comb(*c, args, fuel),
        _ => Err(EvalError::NotAFunction),
    }
}

/// Applies a built-in combinator to fully evaluated arguments.
fn apply_comb(comb: Comb, args: &[Value], fuel: &mut u64) -> Result<Value, EvalError> {
    if args.len() != comb.arity() {
        return Err(EvalError::ArityMismatch);
    }
    match comb {
        Comb::Map => {
            let xs = args[1].as_list().ok_or(EvalError::TypeMismatch)?;
            let mut out = Vec::with_capacity(xs.len());
            for x in xs {
                spend(fuel)?;
                out.push(apply_value(&args[0], std::slice::from_ref(x), fuel)?);
            }
            Ok(Value::list(out))
        }
        Comb::Filter => {
            let xs = args[1].as_list().ok_or(EvalError::TypeMismatch)?;
            let mut out = Vec::new();
            for x in xs {
                spend(fuel)?;
                match apply_value(&args[0], std::slice::from_ref(x), fuel)? {
                    Value::Bool(true) => out.push(x.clone()),
                    Value::Bool(false) => {}
                    _ => return Err(EvalError::TypeMismatch),
                }
            }
            Ok(Value::list(out))
        }
        Comb::Foldl => {
            let xs = args[2].as_list().ok_or(EvalError::TypeMismatch)?;
            let mut acc = args[1].clone();
            for x in xs {
                spend(fuel)?;
                acc = apply_value(&args[0], &[acc, x.clone()], fuel)?;
            }
            Ok(acc)
        }
        Comb::Foldr => {
            let xs = args[2].as_list().ok_or(EvalError::TypeMismatch)?;
            let mut acc = args[1].clone();
            for x in xs.iter().rev() {
                spend(fuel)?;
                acc = apply_value(&args[0], &[x.clone(), acc], fuel)?;
            }
            Ok(acc)
        }
        Comb::Recl => {
            let xs = args[2].as_list().ok_or(EvalError::TypeMismatch)?;
            // recl f e (x:xs) = f x xs (recl f e xs): compute inside-out.
            let mut acc = args[1].clone();
            for i in (0..xs.len()).rev() {
                spend(fuel)?;
                let tail = Value::list(xs[i + 1..].to_vec());
                acc = apply_value(&args[0], &[xs[i].clone(), tail, acc], fuel)?;
            }
            Ok(acc)
        }
        Comb::Mapt => {
            let t = args[0].clone();
            let tree = args[1].as_tree().ok_or(EvalError::TypeMismatch)?;
            fn go(f: &Value, t: &Tree, fuel: &mut u64) -> Result<Tree, EvalError> {
                match t.root() {
                    None => Ok(Tree::empty()),
                    Some(n) => {
                        spend(fuel)?;
                        let v = apply_value(f, std::slice::from_ref(&n.value), fuel)?;
                        let children = n.children.iter().map(|c| go(f, c, fuel)).collect::<Result<
                            Vec<_>,
                            _,
                        >>(
                        )?;
                        Ok(Tree::node(v, children))
                    }
                }
            }
            Ok(Value::Tree(go(&t, tree, fuel)?))
        }
        Comb::Foldt => {
            let tree = args[2].as_tree().ok_or(EvalError::TypeMismatch)?;
            fn go(f: &Value, e: &Value, t: &Tree, fuel: &mut u64) -> Result<Value, EvalError> {
                match t.root() {
                    None => Ok(e.clone()),
                    Some(n) => {
                        spend(fuel)?;
                        let results = n
                            .children
                            .iter()
                            .map(|c| go(f, e, c, fuel))
                            .collect::<Result<Vec<_>, _>>()?;
                        apply_value(f, &[n.value.clone(), Value::list(results)], fuel)
                    }
                }
            }
            go(&args[0], &args[1], tree, fuel)
        }
    }
}

/// Shallow output length of allocating operators (element clones are O(1)
/// thanks to structural sharing, so shallow length tracks real allocation).
fn alloc_charge(op: crate::ast::Op, args: &[Value]) -> u64 {
    use crate::ast::Op;
    let len = |v: &Value| v.as_list().map_or(0, <[Value]>::len) as u64;
    match op {
        Op::Cat => len(&args[0]) + len(&args[1]),
        Op::Cons => len(&args[1]),
        Op::Cdr => len(&args[0]).saturating_sub(1),
        Op::TreeMake => len(&args[1]),
        _ => 0,
    }
}

fn spend(fuel: &mut u64) -> Result<(), EvalError> {
    if *fuel == 0 {
        Err(EvalError::OutOfFuel)
    } else {
        *fuel -= 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Op;
    use crate::symbol::Symbol;

    fn ints(ns: &[i64]) -> Value {
        ns.iter().copied().map(Value::Int).collect()
    }

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn run(e: &Expr, env: &Env) -> Result<Value, EvalError> {
        eval_default(e, env)
    }

    #[test]
    fn literals_vars_and_if() {
        let env = Env::empty().bind(sym("x"), Value::Int(10));
        assert_eq!(run(&Expr::int(3), &env), Ok(Value::Int(3)));
        assert_eq!(run(&Expr::var("x"), &env), Ok(Value::Int(10)));
        assert_eq!(
            run(&Expr::var("missing"), &env),
            Err(EvalError::Unbound(sym("missing")))
        );
        let e = Expr::if_(Expr::bool(true), Expr::int(1), Expr::int(2));
        assert_eq!(run(&e, &env), Ok(Value::Int(1)));
        let bad = Expr::if_(Expr::int(0), Expr::int(1), Expr::int(2));
        assert_eq!(run(&bad, &env), Err(EvalError::TypeMismatch));
    }

    #[test]
    fn lambda_application_and_shadowing() {
        // ((lambda (x) (+ x 1)) 41)
        let f = Expr::lambda(
            vec![sym("x")],
            Expr::op(Op::Add, vec![Expr::var("x"), Expr::int(1)]),
        );
        let app = Expr::App(Arc::new(f), [Expr::int(41)].into());
        assert_eq!(run(&app, &Env::empty()), Ok(Value::Int(42)));
    }

    #[test]
    fn closures_capture_their_environment() {
        // let y = 10 in (lambda (x) (+ x y)) applied under an env where y is rebound
        let body = Expr::op(Op::Add, vec![Expr::var("x"), Expr::var("y")]);
        let f = Expr::lambda(vec![sym("x")], body);
        let env_outer = Env::empty().bind(sym("y"), Value::Int(10));
        let clos = run(&f, &env_outer).unwrap();
        let mut fuel = DEFAULT_FUEL;
        let out = apply_value(&clos, &[Value::Int(5)], &mut fuel).unwrap();
        assert_eq!(out, Value::Int(15));
    }

    #[test]
    fn map_and_filter() {
        let env = Env::empty().bind(sym("l"), ints(&[1, 2, 3]));
        let inc = Expr::lambda(
            vec![sym("x")],
            Expr::op(Op::Add, vec![Expr::var("x"), Expr::int(1)]),
        );
        let e = Expr::comb(Comb::Map, vec![inc, Expr::var("l")]);
        assert_eq!(run(&e, &env), Ok(ints(&[2, 3, 4])));

        let odd = Expr::lambda(
            vec![sym("x")],
            Expr::op(
                Op::Eq,
                vec![
                    Expr::op(Op::Mod, vec![Expr::var("x"), Expr::int(2)]),
                    Expr::int(1),
                ],
            ),
        );
        let e = Expr::comb(Comb::Filter, vec![odd, Expr::var("l")]);
        assert_eq!(run(&e, &env), Ok(ints(&[1, 3])));
    }

    #[test]
    fn folds_left_and_right_differ_on_noncommutative_ops() {
        let env = Env::empty().bind(sym("l"), ints(&[1, 2, 3]));
        // foldl (λa x. a - x) 0 [1,2,3] = ((0-1)-2)-3 = -6
        let fl = Expr::lambda(
            vec![sym("a"), sym("x")],
            Expr::op(Op::Sub, vec![Expr::var("a"), Expr::var("x")]),
        );
        let e = Expr::comb(Comb::Foldl, vec![fl, Expr::int(0), Expr::var("l")]);
        assert_eq!(run(&e, &env), Ok(Value::Int(-6)));
        // foldr (λx a. x - a) 0 [1,2,3] = 1-(2-(3-0)) = 2
        let fr = Expr::lambda(
            vec![sym("x"), sym("a")],
            Expr::op(Op::Sub, vec![Expr::var("x"), Expr::var("a")]),
        );
        let e = Expr::comb(Comb::Foldr, vec![fr, Expr::int(0), Expr::var("l")]);
        assert_eq!(run(&e, &env), Ok(Value::Int(2)));
    }

    #[test]
    fn foldr_cons_is_identity_and_reverse_via_foldl() {
        let env = Env::empty().bind(sym("l"), ints(&[1, 2, 3]));
        let f = Expr::lambda(
            vec![sym("x"), sym("a")],
            Expr::op(Op::Cons, vec![Expr::var("x"), Expr::var("a")]),
        );
        let e = Expr::comb(
            Comb::Foldr,
            vec![f, Expr::Lit(Value::nil()), Expr::var("l")],
        );
        assert_eq!(run(&e, &env), Ok(ints(&[1, 2, 3])));

        let f = Expr::lambda(
            vec![sym("a"), sym("x")],
            Expr::op(Op::Cons, vec![Expr::var("x"), Expr::var("a")]),
        );
        let e = Expr::comb(
            Comb::Foldl,
            vec![f, Expr::Lit(Value::nil()), Expr::var("l")],
        );
        assert_eq!(run(&e, &env), Ok(ints(&[3, 2, 1])));
    }

    #[test]
    fn recl_exposes_head_tail_and_recursive_result() {
        // dedup-like: recl (λx xs r. if member x xs then r else cons x r) [] l
        // here simpler: recl (λx xs r. cons (+ x (length-ish)) r)…
        // We test the semantics directly: recl f e [1,2] = f 1 [2] (f 2 [] e).
        let env = Env::empty().bind(sym("l"), ints(&[1, 2]));
        // f x xs r = cons x (cons (car-or-0) r) is fiddly; use: f x xs r = cons x r
        let f = Expr::lambda(
            vec![sym("x"), sym("xs"), sym("r")],
            Expr::op(Op::Cons, vec![Expr::var("x"), Expr::var("r")]),
        );
        let e = Expr::comb(Comb::Recl, vec![f, Expr::Lit(Value::nil()), Expr::var("l")]);
        assert_eq!(run(&e, &env), Ok(ints(&[1, 2])));

        // f x xs r = cat xs r -- checks the tail argument is threaded.
        let f = Expr::lambda(
            vec![sym("x"), sym("xs"), sym("r")],
            Expr::op(Op::Cat, vec![Expr::var("xs"), Expr::var("r")]),
        );
        let e = Expr::comb(Comb::Recl, vec![f, Expr::Lit(Value::nil()), Expr::var("l")]);
        // recl f e [1,2] = cat [2] (cat [] []) = [2]
        assert_eq!(run(&e, &env), Ok(ints(&[2])));
    }

    #[test]
    fn mapt_preserves_shape() {
        let t = Tree::node(
            Value::Int(1),
            vec![Tree::node(Value::Int(2), vec![]), Tree::empty()],
        );
        let env = Env::empty().bind(sym("t"), Value::Tree(t));
        let inc = Expr::lambda(
            vec![sym("x")],
            Expr::op(Op::Mul, vec![Expr::var("x"), Expr::int(10)]),
        );
        let e = Expr::comb(Comb::Mapt, vec![inc, Expr::var("t")]);
        assert_eq!(run(&e, &env).unwrap().to_string(), "{10 {20} {}}");
    }

    #[test]
    fn foldt_computes_tree_sum() {
        // sumt = foldt (λv rs. foldl (+) v rs) 0 t
        let t = Tree::node(
            Value::Int(1),
            vec![
                Tree::node(Value::Int(2), vec![Tree::node(Value::Int(4), vec![])]),
                Tree::node(Value::Int(3), vec![]),
            ],
        );
        let env = Env::empty().bind(sym("t"), Value::Tree(t));
        let add = Expr::lambda(
            vec![sym("a"), sym("b")],
            Expr::op(Op::Add, vec![Expr::var("a"), Expr::var("b")]),
        );
        let inner = Expr::comb(Comb::Foldl, vec![add, Expr::var("v"), Expr::var("rs")]);
        let f = Expr::lambda(vec![sym("v"), sym("rs")], inner);
        let e = Expr::comb(Comb::Foldt, vec![f, Expr::int(0), Expr::var("t")]);
        assert_eq!(run(&e, &env), Ok(Value::Int(10)));
    }

    #[test]
    fn foldt_on_empty_tree_returns_init() {
        let env = Env::empty().bind(sym("t"), Value::Tree(Tree::empty()));
        let f = Expr::lambda(vec![sym("v"), sym("rs")], Expr::var("v"));
        let e = Expr::comb(Comb::Foldt, vec![f, Expr::int(42), Expr::var("t")]);
        assert_eq!(run(&e, &env), Ok(Value::Int(42)));
    }

    #[test]
    fn holes_do_not_evaluate() {
        assert_eq!(run(&Expr::Hole(5), &Env::empty()), Err(EvalError::Hole(5)));
    }

    #[test]
    fn fuel_exhaustion_is_detected() {
        let e = Expr::op(Op::Add, vec![Expr::int(1), Expr::int(2)]);
        let mut fuel = 2; // needs 4
        assert_eq!(
            eval(&e, &Env::empty(), &mut fuel),
            Err(EvalError::OutOfFuel)
        );
    }

    #[test]
    fn first_order_values_are_not_applicable() {
        let e = Expr::App(Arc::new(Expr::int(3)), [Expr::int(1)].into());
        assert_eq!(run(&e, &Env::empty()), Err(EvalError::NotAFunction));
    }

    #[test]
    fn combinator_arity_mismatch() {
        let e = Expr::App(Arc::new(Expr::Comb(Comb::Map)), [Expr::var("l")].into());
        let env = Env::empty().bind(sym("l"), ints(&[1]));
        assert_eq!(run(&e, &env), Err(EvalError::ArityMismatch));
    }
}
