//! # `lambda2-lang` — the λ² object language
//!
//! The functional object language of the λ² synthesizer (Feser, Chaudhuri,
//! Dillig, PLDI 2015): integers, booleans, homogeneous lists and variadic
//! trees; first-order operators; and the higher-order combinators
//! `map`, `filter`, `foldl`, `foldr`, `recl`, `mapt`, `foldt`.
//!
//! The crate provides everything the synthesizer needs from its substrate:
//!
//! * [`value`] — runtime values (O(1) clone via structural sharing),
//! * [`ast`] — immutable expressions with first-class holes,
//! * [`ty`] / [`infer`] — types, unification, and inference,
//! * [`eval`] — a fuelled evaluator with native combinator semantics,
//! * [`parser`] / [`pretty`] — an s-expression front end whose printer and
//!   parser are mutually inverse,
//! * [`env`] — persistent environments shared between example rows.
//!
//! # Examples
//!
//! Evaluate `(map (lambda (x) (+ x 1)) l)` on `[1 2 3]`:
//!
//! ```
//! use lambda2_lang::env::Env;
//! use lambda2_lang::eval::eval_default;
//! use lambda2_lang::parser::{parse_expr, parse_value};
//! use lambda2_lang::symbol::Symbol;
//!
//! let expr = parse_expr("(map (lambda (x) (+ x 1)) l)")?;
//! let env = Env::empty().bind(Symbol::intern("l"), parse_value("[1 2 3]")?);
//! let out = eval_default(&expr, &env)?;
//! assert_eq!(out, parse_value("[2 3 4]")?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod ast;
pub mod combinators;
pub mod env;
pub mod error;
pub mod eval;
pub mod infer;
pub mod ops;
pub mod parser;
pub mod pretty;
pub mod symbol;
pub mod term;
pub mod ty;
pub mod value;

pub use ast::{Comb, Expr, HoleId, Op};
pub use env::Env;
pub use error::{EvalError, ParseError};
pub use symbol::Symbol;
pub use ty::Type;
pub use value::{Tree, Value};
